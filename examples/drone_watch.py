"""The paper's primary use case (§1.2): tracking the emerging drone
industry from streaming news.

A security analyst wants to "reason about why a non-military
organization such as Windermere may employ drones in their operations"
(Figure 2), and a finance analyst tracks emerging manufacturers.  This
example ingests the stream incrementally and interleaves questions with
construction — the "dynamic" in dynamic knowledge graph.

Run:
    python examples/drone_watch.py
"""

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)


def main() -> None:
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=180, seed=11, crawl_fraction=0.3)
    )
    generate_descriptions(kb, seed=11)
    nous = Nous(kb=kb, config=NousConfig(window_size=250, min_support=3, seed=11))

    # Stream in thirds; after each batch, look at what is trending now.
    third = len(articles) // 3
    for phase, start in enumerate([0, third, 2 * third]):
        batch = articles[start : start + third]
        for article in batch:
            nous.ingest(
                article.text,
                doc_id=article.doc_id,
                date=article.date,
                source=article.source,
            )
        report = nous.trending()
        first, last = batch[0].date, batch[-1].date
        print(f"--- phase {phase + 1}: articles {start}..{start + len(batch)} "
              f"({first} .. {last}), window={report.window_edges} facts")
        for pattern, support in report.closed_frequent[:5]:
            print(f"    support={support:3d}  {pattern.describe()}")
        for pattern in report.newly_frequent[:3]:
            print(f"    NEW: {pattern.describe()}")
        for pattern, survivors in report.newly_infrequent[:3]:
            print(f"    GONE: {pattern.describe()} "
                  f"({len(survivors)} sub-patterns survive)")
        print()

    # The security analyst's question (Figure 2's caption).
    print("Q: why does Windermere use drones?")
    for i, path in enumerate(nous.explain("Windermere", "drones", k=3)):
        print(f"  {i + 1}. coherence={path.coherence:.3f}  {path.describe()}")
    print()

    # The finance analyst: who is funding whom?
    print("Q: tell me about DJI")
    summary = nous.entity_summary("DJI")
    extracted = [f for f in summary.facts if not f[4]]
    print(f"  {len(summary.facts)} facts ({len(extracted)} learned from news)")
    for s, p, o, conf, _curated in extracted[:8]:
        print(f"    ({s}, {p}, {o})  conf={conf:.2f}")
    print()

    # Source trust after the stream: the crawls should have drifted
    # below the WSJ.
    trust = nous.estimator.source_trust.known_sources()
    print("source trust:")
    for source, value in sorted(trust.items(), key=lambda kv: -kv[1]):
        print(f"    {source:24s} {value:.3f}")


if __name__ == "__main__":
    main()
