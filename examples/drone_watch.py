"""The paper's primary use case (§1.2): tracking the emerging drone
industry from streaming news.

A security analyst wants to "reason about why a non-military
organization such as Windermere may employ drones in their operations"
(Figure 2), and a finance analyst tracks emerging manufacturers.  This
example streams articles through the service's ingestion queue and
interleaves questions with construction — the "dynamic" in dynamic
knowledge graph — while a **standing query** turns the trending view
into a change feed: each phase prints the rows that appeared and
disappeared instead of re-diffing reports by hand.

Run:
    python examples/drone_watch.py
"""

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.wire import decode_payload


def main() -> None:
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=180, seed=11, crawl_fraction=0.3)
    )
    generate_descriptions(kb, seed=11)

    with NousService(
        kb=kb, config=NousConfig(window_size=250, min_support=3, seed=11)
    ) as service:
        # The analyst's always-on watch over what is trending.
        watch = service.subscribe("show trending patterns")

        # Stream in thirds through the queue; after each batch drains,
        # the standing query has already been refreshed.
        third = len(articles) // 3
        for phase, start in enumerate([0, third, 2 * third]):
            batch = articles[start : start + third]
            service.submit_many(batch)
            service.flush()
            first, last = batch[0].date, batch[-1].date
            print(f"--- phase {phase + 1}: articles {start}..{start + len(batch)} "
                  f"({first} .. {last})")
            for update in watch.poll():
                for row in update.added[:4]:
                    print(f"    + support={row['support']:3d}  {row['pattern']}")
                for row in update.removed[:4]:
                    print(f"    - {row['pattern']}")
            print()

        # The security analyst's question (Figure 2's caption) — a typed
        # envelope whose payload survives process boundaries.
        print("Q: why does Windermere use drones?")
        response = service.query("why does Windermere use drones")
        paths = decode_payload(response.kind, response.payload)
        for i, path in enumerate(paths):
            print(f"  {i + 1}. coherence={path.coherence:.3f}  {path.describe()}")
        print()

        # The finance analyst: who is funding whom?
        print("Q: tell me about DJI")
        summary = decode_payload("entity", service.query("tell me about DJI").payload)
        extracted = [f for f in summary.facts if not f[4]]
        print(f"  {len(summary.facts)} facts ({len(extracted)} learned from news)")
        for s, p, o, conf, _curated in extracted[:8]:
            print(f"    ({s}, {p}, {o})  conf={conf:.2f}")
        print()

        # Source trust after the stream: the crawls should have drifted
        # below the WSJ.
        trust = service.nous.estimator.source_trust.known_sources()
        print("source trust:")
        for source, value in sorted(trust.items(), key=lambda kv: -kv[1]):
            print(f"    {source:24s} {value:.3f}")


if __name__ == "__main__":
    main()
