"""HTTP gateway end to end: server, client, and streaming push.

One process plays both sides — a ``NousGateway`` serving a live service
on an ephemeral port, and a ``ClientSession`` that talks to it exactly
as a remote client would: ingest over the wire, query over the wire,
and a standing query streamed back as NDJSON deltas while new articles
change what the graph knows.

Run:
    python examples/http_gateway.py
"""

import threading

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.http import ClientSession, GatewayConfig, NousGateway


def main() -> None:
    # 1. A service with a bootstrapped KG (curated KB + a small
    #    synthetic stream), plus its background micro-batch drainer.
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=60, seed=7))
    generate_descriptions(kb, seed=7)
    with NousService(kb=kb, config=NousConfig(window_size=300, seed=7)) as service:
        service.submit_many(articles)
        service.flush()

        # 2. Put the gateway in front of it. port=0 picks a free port.
        with NousGateway(service, GatewayConfig(port=0)) as gateway:
            print(f"gateway listening on {gateway.url}\n")

            with ClientSession(gateway.url) as client:
                # 3. Liveness + queue state.
                health = client.healthz()
                print(
                    f"healthz: {health['status']}, "
                    f"kg_version={health['kg_version']}, "
                    f"{health['documents_ingested']} documents ingested"
                )

                # 4. A standing query over the wire: acquisitions among
                #    companies, streamed as added/removed deltas.
                stream = client.subscribe(
                    "match (?a:Company)-[acquired]->(?b:Company)",
                    heartbeat=0.5,
                )
                frames = []
                reader = threading.Thread(
                    target=lambda: frames.extend(stream), daemon=True
                )
                reader.start()

                # 5. Ingest news through the gateway; the subscriber
                #    sees the graph change without re-polling.
                for doc_id, text in [
                    ("wire-1", "DJI acquired Parrot SA in June 2016."),
                    ("wire-2", "Amazon acquired 3D Robotics in July 2016."),
                ]:
                    envelope = client.ingest(
                        text, doc_id=doc_id, date="2016-06-10", source="wire"
                    )
                    print(f"ingested {doc_id}: {envelope.rendered}")

                # 6. Query over the wire — same envelopes, same payloads
                #    as in-process calls.
                for question in [
                    "tell me about DJI",
                    "match (?a:Company)-[acquired]->(?b:Company)",
                ]:
                    response = client.query(question)
                    print(f"\n=== {question}  [{response.kind}]")
                    print(response.rendered)

                # 7. What did the standing query push while we worked?
                stream.close()
                reader.join(timeout=5.0)
                updates = [f for f in frames if f["event"] == "update"]
                added = sum(len(u["added"]) for u in updates)
                print(
                    f"\nstanding query pushed {len(updates)} update frame(s), "
                    f"{added} added row(s)"
                )
                for update in updates:
                    for row in update["added"]:
                        print(f"  + {row}")


if __name__ == "__main__":
    main()
