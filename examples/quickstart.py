"""Quickstart: build a dynamic knowledge graph and query it.

Five minutes with the public API — the whole NOUS loop through
``NousService``, the versioned service facade:
curated KB + streaming news -> async ingestion queue -> dynamic KG ->
typed query envelopes -> a standing query watching the graph change.

Run:
    python examples/quickstart.py
"""

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)


def main() -> None:
    # 1. Start from a curated knowledge base (the paper uses YAGO2; we
    #    bundle a drone-domain slice mirroring its Figures 2 and 4).
    kb = build_drone_kb()

    # 2. A synthetic WSJ-style news stream stands in for the paper's
    #    Wall Street Journal corpus — with known ground truth.
    articles = generate_corpus(kb, CorpusConfig(n_articles=100, seed=7))
    generate_descriptions(kb, seed=7)  # Wikipedia-page stand-ins for LDA

    # 3. Build the service. The context manager owns the background
    #    drainer that micro-batches queued documents into the amortised
    #    ingest path.
    with NousService(kb=kb, config=NousConfig(window_size=300, seed=7)) as service:
        # A standing query: notified with added/removed rows whenever a
        # drain changes what is trending.
        watch = service.subscribe("show trending patterns")

        # 4. Submit the stream. Each submit returns a ticket instantly;
        #    flush() waits for the queue to drain.
        tickets = service.submit_many(articles)
        service.flush()
        accepted = sum(
            t.result().payload["accepted"] for t in tickets
        )
        print(f"ingested {len(articles)} articles, accepted {accepted} facts")
        print(f"({service.batches_drained} micro-batches)\n")

        # 5. Ask questions — all five query classes return the same
        #    typed envelope (ok / kind / payload / rendered).
        for question in [
            "tell me about DJI",
            "show trending patterns",
            "how is DJI related to Amazon",
            "why does Windermere use drones",
            "match (?a:Company)-[acquired]->(?b:Company)",
        ]:
            response = service.query(question)
            print(f"=== {question}   [{response.kind}, {response.elapsed_ms:.1f} ms]")
            print(response.rendered)
            print()

        # 6. What changed while we streamed? The standing query saw the
        #    patterns arrive.
        updates = watch.poll()
        added = sum(len(u.added) for u in updates)
        print(f"standing query: {len(updates)} update(s), {added} pattern row(s) appeared\n")

        # 7. Quality dashboard (the demo's statistics view) — also an
        #    envelope; payload is wire-format JSON.
        print(service.statistics().rendered)


if __name__ == "__main__":
    main()
