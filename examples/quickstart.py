"""Quickstart: build a dynamic knowledge graph and query it.

Five minutes with the public API — the whole NOUS loop:
curated KB + streaming news -> dynamic KG -> queries.

Run:
    python examples/quickstart.py
"""

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    QueryEngine,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)


def main() -> None:
    # 1. Start from a curated knowledge base (the paper uses YAGO2; we
    #    bundle a drone-domain slice mirroring its Figures 2 and 4).
    kb = build_drone_kb()

    # 2. A synthetic WSJ-style news stream stands in for the paper's
    #    Wall Street Journal corpus — with known ground truth.
    articles = generate_corpus(kb, CorpusConfig(n_articles=100, seed=7))
    generate_descriptions(kb, seed=7)  # Wikipedia-page stand-ins for LDA

    # 3. Build the system and ingest the stream.
    nous = Nous(kb=kb, config=NousConfig(window_size=300, seed=7))
    results = nous.ingest_corpus(articles)
    accepted = sum(r.accepted for r in results)
    print(f"ingested {len(articles)} articles, accepted {accepted} facts\n")

    # 4. Ask questions — all five query classes go through one engine.
    engine = QueryEngine(nous)
    for question in [
        "tell me about DJI",
        "show trending patterns",
        "how is DJI related to Amazon",
        "why does Windermere use drones",
        "match (?a:Company)-[acquired]->(?b:Company)",
    ]:
        result = engine.execute_text(question)
        print(f"=== {question}   [{result.kind}, {result.elapsed_ms:.1f} ms]")
        print(result.rendered)
        print()

    # 5. Quality dashboard (the demo's statistics view).
    print(nous.statistics().render())


if __name__ == "__main__":
    main()
