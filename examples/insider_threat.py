"""Insider-threat detection from enterprise logs (paper §3.1, domain 2).

Log events stream into the dynamic KG as structured triples.  During
normal operation the window's frequent patterns are boring (users log
into their own hosts).  When the planted exfiltration campaign starts,
new patterns — privilege escalation plus sensitive-resource access and
bulk downloads by the same user — cross the support threshold, and the
trending report flags them the way a security analyst would want.

Run:
    python examples/insider_threat.py
"""

from repro import Nous, NousConfig
from repro.data.logs import EnterpriseLogWorld, build_log_ontology
from repro.kb.knowledge_base import KnowledgeBase


def main() -> None:
    kb = KnowledgeBase(ontology=build_log_ontology())
    world = EnterpriseLogWorld(n_users=25, n_days=60, seed=41,
                               campaign_start=0.7, n_insiders=3)
    batches = world.generate_batches(kb)

    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=400, min_support=4, retrain_every=0,
                          lda_iterations=20, seed=41),
    )

    # Stream day by day; snapshot the trending report weekly.
    campaign_day = int(len(batches) * 0.7)
    for day, batch in enumerate(batches):
        nous.ingest_facts(batch.facts, date=batch.date, source=batch.source)
        if day % 10 == 9 or day == campaign_day:
            report = nous.trending()
            marker = "  <== campaign active" if day >= campaign_day else ""
            print(f"day {day + 1:3d} ({batch.date}){marker}")
            for pattern in report.newly_frequent[:4]:
                print(f"    NEW  {pattern.describe()}")
            for pattern, _ in report.newly_infrequent[:2]:
                print(f"    GONE {pattern.describe()}")
    print()

    report = nous.trending()
    print("frequent patterns at end of stream:")
    suspicious = []
    for pattern, support in report.closed_frequent[:10]:
        description = pattern.describe()
        print(f"    support={support:3d}  {description}")
        if "SensitiveResource" in description and pattern.size >= 2:
            suspicious.append((pattern, support))
    print()
    print(f"{len(suspicious)} multi-edge patterns touch sensitive resources —")
    print("candidate exfiltration signatures for the analyst:")
    for pattern, support in suspicious:
        print(f"    support={support:3d}  {pattern.describe()}")

    # Who matches the top suspicious pattern?  Use the pattern matcher.
    if suspicious:
        from repro.query import PatternMatcher
        graph = nous.dynamic.window.graph
        # materialise vertex types for the matcher
        for vid in graph.vertices():
            graph.set_vertex_prop(vid, "type", kb.entity_type(vid) or "Thing")
        matcher = PatternMatcher(graph, ontology=kb.ontology)
        from repro.query.pattern_match import QueryPatternEdge
        query = [
            QueryPatternEdge(src="u", dst="r", predicate="downloaded",
                             src_type="User", dst_type="SensitiveResource"),
            QueryPatternEdge(src="u", dst="h", predicate="escalatedOn",
                             src_type="User", dst_type="Host"),
        ]
        users = {m["u"] for m in matcher.match(query, limit=200)}
        print()
        print(f"users matching (download sensitive + escalate): {sorted(users)}")
        print(f"planted insiders:                               {sorted(world.insiders)}")


if __name__ == "__main__":
    main()
