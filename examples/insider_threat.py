"""Insider-threat detection from enterprise logs (paper §3.1, domain 2).

Log events stream into the dynamic KG as structured triples — through
the service API's ``ingest_facts``, which bypasses NLP but still rides
the sliding window.  A **standing trending query** plays the analyst's
alert feed: during normal operation its deltas are boring (users log
into their own hosts); when the planted exfiltration campaign starts,
new patterns — privilege escalation plus sensitive-resource access and
bulk downloads by the same user — cross the support threshold and
arrive as ``added`` rows, the way a security analyst would want to be
paged.

Run:
    python examples/insider_threat.py
"""

from repro import NousConfig, NousService, ServiceConfig
from repro.api.wire import decode_payload
from repro.data.logs import EnterpriseLogWorld, build_log_ontology
from repro.kb.knowledge_base import KnowledgeBase


def main() -> None:
    kb = KnowledgeBase(ontology=build_log_ontology())
    world = EnterpriseLogWorld(n_users=25, n_days=60, seed=41,
                               campaign_start=0.7, n_insiders=3)
    batches = world.generate_batches(kb)

    service = NousService(
        kb=kb,
        config=NousConfig(window_size=400, min_support=4, retrain_every=0,
                          lda_iterations=20, seed=41),
        service_config=ServiceConfig(auto_start=False),
    )
    alerts = service.subscribe("show trending patterns")

    # Stream day by day; read the alert feed weekly.
    campaign_day = int(len(batches) * 0.7)
    for day, batch in enumerate(batches):
        service.ingest_facts(
            batch.facts, date=str(batch.date), source=batch.source
        ).raise_for_error()
        if day % 10 == 9 or day == campaign_day:
            marker = "  <== campaign active" if day >= campaign_day else ""
            print(f"day {day + 1:3d} ({batch.date}){marker}")
            for update in alerts.poll():
                for row in update.added[:4]:
                    print(f"    NEW  {row['pattern']}")
                for row in update.removed[:2]:
                    print(f"    GONE {row['pattern']}")
    print()

    # End-of-stream report through the same envelope the web UI would
    # consume; decoding restores real Pattern objects.
    report = decode_payload(
        "trending", service.query("show trending patterns").payload
    )
    print("frequent patterns at end of stream:")
    suspicious = []
    for pattern, support in report.closed_frequent[:10]:
        description = pattern.describe()
        print(f"    support={support:3d}  {description}")
        if "SensitiveResource" in description and pattern.size >= 2:
            suspicious.append((pattern, support))
    print()
    print(f"{len(suspicious)} multi-edge patterns touch sensitive resources —")
    print("candidate exfiltration signatures for the analyst:")
    for pattern, support in suspicious:
        print(f"    support={support:3d}  {pattern.describe()}")

    # Who matches the top suspicious pattern?  Use the pattern matcher.
    if suspicious:
        from repro.query import PatternMatcher
        graph = service.nous.dynamic.window.graph
        # materialise vertex types for the matcher
        for vid in graph.vertices():
            graph.set_vertex_prop(vid, "type", kb.entity_type(vid) or "Thing")
        matcher = PatternMatcher(graph, ontology=kb.ontology)
        from repro.query.pattern_match import QueryPatternEdge
        query = [
            QueryPatternEdge(src="u", dst="r", predicate="downloaded",
                             src_type="User", dst_type="SensitiveResource"),
            QueryPatternEdge(src="u", dst="h", predicate="escalatedOn",
                             src_type="User", dst_type="Host"),
        ]
        users = {m["u"] for m in matcher.match(query, limit=200)}
        print()
        print(f"users matching (download sensitive + escalate): {sorted(users)}")
        print(f"planted insiders:                               {sorted(world.insiders)}")


if __name__ == "__main__":
    main()
