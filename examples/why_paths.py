"""Explanatory question answering, dissected (§3.6).

Shows the moving parts behind "why"-questions: the LDA topic space over
entity documents, the coherence-guided beam search, and how its answers
and search cost compare with unguided baselines.

Construction goes through the service API's ingestion queue; the QA
internals below then deliberately reach past the facade (``service.nous``)
— this example exists to dissect what ``service.query("why ...")``
does under the hood.

Run:
    python examples/why_paths.py
"""

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.qa import CoherentPathSearch, bfs_path_ranker, unguided_top_k


def main() -> None:
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=120, seed=19))
    generate_descriptions(kb, seed=19)
    service = NousService(
        kb=kb, config=NousConfig(n_topics=6, lda_iterations=80, seed=19)
    )
    service.submit_many(articles)
    service.flush()
    service.close()
    nous = service.nous

    # Force the topic fit and show what LDA recovered.
    graph = nous._topic_annotated_graph()
    topics = nous.topics
    print("LDA topics over entity documents:")
    for k in range(topics.theta().shape[1]):
        words = ", ".join(topics.top_words(k, 6))
        print(f"   topic {k}: {words}")
    print()

    questions = [
        ("Windermere", "Drone_Industry", None),
        ("Frank Wang", "Accel Partners", None),
        ("GoPro", "Amazon", None),
    ]
    for source, target, constraint in questions:
        source_id = nous.mapper.linker.link(source).entity
        target_id = nous.mapper.linker.link(target).entity
        print(f"Q: why is {source} related to {target}?")

        search = CoherentPathSearch(graph, max_hops=4, beam_width=8)
        guided = search.top_k_paths(source_id, target_id, k=3,
                                    relationship=constraint)
        guided_cost = search.stats.edges_considered
        for i, path in enumerate(guided):
            print(f"   guided   {i + 1}. coherence={path.coherence:.3f} "
                  f"{path.describe()}")

        bfs_paths, bfs_stats = bfs_path_ranker(
            graph, source_id, target_id, k=3, max_hops=4
        )
        if bfs_paths:
            print(f"   bfs      1. coherence={bfs_paths[0].coherence:.3f} "
                  f"{bfs_paths[0].describe()}")

        exhaustive, ex_stats = unguided_top_k(
            graph, source_id, target_id, k=1, max_hops=4
        )
        if exhaustive:
            print(f"   exhaust  1. coherence={exhaustive[0].coherence:.3f} "
                  f"{exhaustive[0].describe()}")
        print(
            f"   search cost (edges considered): guided={guided_cost}, "
            f"bfs={bfs_stats.edges_considered}, "
            f"exhaustive={ex_stats.edges_considered}"
        )
        print()


if __name__ == "__main__":
    main()
