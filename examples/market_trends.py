"""Trend discovery over a non-stationary stream (Figure 7).

The synthetic world model has three regimes: a funding boom, a
deployment/partnership phase, and a consolidation phase (acquisitions +
regulation).  Watching the closed frequent patterns per window shows
patterns being born and dying as the market shifts — exactly the
"patterns discovered from updates to the knowledge graph" of Figure 7.

Run:
    python examples/market_trends.py
"""

from collections import Counter

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
)


def main() -> None:
    kb = build_drone_kb()
    articles = generate_corpus(
        kb,
        CorpusConfig(
            n_articles=240, seed=3, crawl_fraction=0.0, n_extra_companies=16
        ),
    )
    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=120, min_support=4, retrain_every=0, seed=3),
    )

    batch_size = 40
    timeline = []
    for start in range(0, len(articles), batch_size):
        batch = articles[start : start + batch_size]
        mix = Counter(a.event_type for a in batch)
        for article in batch:
            nous.ingest(
                article.text,
                doc_id=article.doc_id,
                date=article.date,
                source=article.source,
            )
        report = nous.trending()
        timeline.append((batch[-1].date, mix, report))

    print("window-by-window trending patterns (Figure 7 reproduction)\n")
    for date, mix, report in timeline:
        top_events = ", ".join(f"{k}:{v}" for k, v in mix.most_common(3))
        print(f"as of {date}  (event mix: {top_events})")
        for pattern, support in report.closed_frequent[:4]:
            print(f"   support={support:3d}  {pattern.describe()}")
        for pattern in report.newly_frequent[:2]:
            print(f"   NEW      {pattern.describe()}")
        for pattern, survivors in report.newly_infrequent[:2]:
            names = "; ".join(s.describe() for s in survivors[:2])
            print(f"   EXPIRED  {pattern.describe()}"
                  + (f"  -> still frequent: {names}" if names else ""))
        print()

    # Show the regime shift quantitatively: which single-edge patterns
    # were frequent in the first vs the last window?
    first_report = timeline[0][2]
    last_report = timeline[-1][2]
    first = {p.describe() for p, _ in first_report.closed_frequent if p.size == 1}
    last = {p.describe() for p, _ in last_report.closed_frequent if p.size == 1}
    print("patterns frequent early but gone late:")
    for name in sorted(first - last):
        print(f"   {name}")
    print("patterns frequent late but not early:")
    for name in sorted(last - first):
        print(f"   {name}")


if __name__ == "__main__":
    main()
