"""Trend discovery over a non-stationary stream (Figure 7).

The synthetic world model has three regimes: a funding boom, a
deployment/partnership phase, and a consolidation phase (acquisitions +
regulation).  A **standing trending query** on the service turns those
regime shifts into a delta feed: after each window of articles drains
from the ingestion queue, the subscription reports which closed
frequent patterns were born and which died — exactly the "patterns
discovered from updates to the knowledge graph" of Figure 7, consumed
as an API instead of by diffing reports by hand.

Run:
    python examples/market_trends.py
"""

from collections import Counter

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    ServiceConfig,
    build_drone_kb,
    generate_corpus,
)


def main() -> None:
    kb = build_drone_kb()
    articles = generate_corpus(
        kb,
        CorpusConfig(
            n_articles=240, seed=3, crawl_fraction=0.0, n_extra_companies=16
        ),
    )
    service = NousService(
        kb=kb,
        config=NousConfig(window_size=120, min_support=4, retrain_every=0, seed=3),
        # Deterministic synchronous drains, one per stream window.
        service_config=ServiceConfig(auto_start=False, max_batch=40),
    )
    subscription = service.subscribe("show trending patterns")

    batch_size = 40
    print("window-by-window trending deltas (Figure 7 reproduction)\n")
    born_total: Counter = Counter()
    died_total: Counter = Counter()
    for start in range(0, len(articles), batch_size):
        batch = articles[start : start + batch_size]
        mix = Counter(a.event_type for a in batch)
        service.submit_many(batch)
        service.flush()
        top_events = ", ".join(f"{k}:{v}" for k, v in mix.most_common(3))
        print(f"as of {batch[-1].date}  (event mix: {top_events})")
        for update in subscription.poll():
            for row in update.added[:4]:
                print(f"   + support={row['support']:3d}  {row['pattern']}")
                born_total[row["pattern"]] += 1
            for row in update.removed[:4]:
                print(f"   - {row['pattern']}")
                died_total[row["pattern"]] += 1
        print()

    # The regime shift, quantitatively: single-edge patterns that died
    # along the way vs the ones still standing at the end.
    final = {row["pattern"] for row in subscription.current_rows}
    print("patterns that trended at some point but are gone now:")
    for name in sorted(set(born_total) - final):
        print(f"   {name}")
    print("patterns still trending at the end:")
    for name in sorted(final):
        print(f"   {name}")


if __name__ == "__main__":
    main()
