"""Citation analytics from bibliography data (paper §3.1, domain 3).

Bibliography databases are *structured*: facts enter the dynamic KG
directly (``NousService.ingest_facts``) without the NLP stage, but flow
through the same sliding window — so the streaming miner spots the
late-breaking "knowledge graphs" citation burst, and path queries
explain author relationships.  Everything below speaks the service
API's typed envelopes.

Run:
    python examples/citation_analytics.py
"""

from repro import NousConfig, NousService, ServiceConfig
from repro.api.wire import decode_payload
from repro.data.citations import CitationWorld, build_citation_ontology
from repro.kb.knowledge_base import KnowledgeBase


def main() -> None:
    kb = KnowledgeBase(ontology=build_citation_ontology())
    world = CitationWorld(n_authors=40, n_papers=150, seed=37,
                          hot_topic="knowledge_graphs")
    batches = world.generate_batches(kb)

    service = NousService(
        kb=kb,
        config=NousConfig(window_size=220, min_support=5, retrain_every=0,
                          lda_iterations=30, seed=37),
        service_config=ServiceConfig(auto_start=False),
    )

    # Stream the bibliography in thirds and watch the trend form.
    third = len(batches) // 3
    for phase, start in enumerate([0, third, 2 * third]):
        for batch in batches[start : start + third]:
            service.ingest_facts(
                batch.facts, date=str(batch.date), source=batch.source
            ).raise_for_error()
        report = decode_payload(
            "trending", service.query("show trending patterns").payload
        )
        print(f"--- phase {phase + 1} (through {batches[min(start + third, len(batches)) - 1].date}), "
              f"window={report.window_edges} facts")
        for pattern, support in report.closed_frequent[:5]:
            print(f"    support={support:3d}  {pattern.describe()}")
        print()

    # Which topics dominate recent citations?  Count topic edges in the
    # current window directly.
    from collections import Counter
    topic_counts = Counter()
    for timed in service.nous.dynamic.window.window_edges():
        if timed.label == "hasTopic":
            topic_counts[timed.dst] += 1
    print("topic mix in the current window:")
    for topic, count in topic_counts.most_common():
        print(f"    {topic:28s} {count}")
    print()

    # Explain a relationship across the co-authorship/citation graph —
    # the "how is X related to Y" envelope, decoded back to RankedPaths.
    author_a, author_b = world.authors[0], world.authors[1]
    print(f"Q: how is {author_a} related to {author_b}?")
    response = service.query(f"how is {author_a} related to {author_b}")
    paths = decode_payload(response.kind, response.payload) if response.ok else []
    for i, path in enumerate(paths[:2]):
        print(f"    {i + 1}. coherence={path.coherence:.3f}  {path.describe()}")
    if not paths:
        print("    (no path within hop budget)")


if __name__ == "__main__":
    main()
