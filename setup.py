"""Setup shim for environments without PEP 517 wheel support."""
from setuptools import find_packages, setup

setup(
    name="nous-repro",
    version="1.0.0",
    description=(
        "Reproduction of NOUS: Construction and Querying of Dynamic "
        "Knowledge Graphs (ICDE 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"], "repro.api": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["nous=repro.query.cli:main"]},
)
