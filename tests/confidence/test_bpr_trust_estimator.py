"""BPR link prediction, source trust and the combined estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import BprLinkPredictor, ConfidenceEstimator, SourceTrust
from repro.errors import ConfigError
from repro.kb import Triple, build_drone_kb
from repro.linking.mapper import MappedTriple
from repro.nlp.pipeline import RawTriple


def make_block_split(n_groups=4, size=6, train_fraction=0.7, seed=42):
    """Bipartite block structure: subjects in group g link to objects in
    group g.  A random subset trains; held-out in-block pairs must rank
    above cross-block corruptions."""
    rng = np.random.default_rng(seed)
    pairs = [
        (g, i, j)
        for g in range(n_groups)
        for i in range(size)
        for j in range(size)
    ]
    mask = rng.random(len(pairs)) < train_fraction
    train = [
        Triple(f"s{g}_{i}", "rel", f"o{g}_{j}")
        for (g, i, j), m in zip(pairs, mask) if m
    ]
    test_pos = [
        Triple(f"s{g}_{i}", "rel", f"o{g}_{j}")
        for (g, i, j), m in zip(pairs, mask) if not m
    ]
    test_neg = [
        Triple(f"s{g}_{i}", "rel", f"o{(g + 2) % n_groups}_{j}")
        for (g, i, j), m in zip(pairs, mask) if not m
    ]
    return train, test_pos, test_neg


def make_block_triples(n_groups=4, size=6):
    """All in-block pairs (for tests that only need training data)."""
    train, test_pos, _ = make_block_split(n_groups, size, train_fraction=1.1)
    return train + test_pos


def make_mapped(subject="DJI", predicate="manufactures", object_="Phantom_3",
                source="wsj", extraction=0.8, link=0.9, mapping=1.0):
    raw = RawTriple(subject=subject, relation=predicate, object=object_)
    return MappedTriple(
        subject=subject, predicate=predicate, object=object_,
        object_is_literal=False, extraction_confidence=extraction,
        link_confidence=link, mapping_confidence=mapping, date=None,
        doc_id="d", source=source, raw=raw,
    )


class TestBprTraining:
    @pytest.fixture(scope="class")
    def split(self):
        return make_block_split()

    @pytest.fixture(scope="class")
    def model(self, split):
        train, _, _ = split
        return BprLinkPredictor(n_factors=8, n_epochs=40, seed=3).fit(train)

    def test_scores_bounded(self, model):
        score = model.score("s0_0", "rel", "o0_1")
        assert 0.0 < score < 1.0

    def test_in_block_beats_cross_block(self, model, split):
        """Held-out in-block pairs should outscore cross-block pairs."""
        _, test_pos, test_neg = split
        in_block = np.mean([model.score(t.subject, "rel", t.object) for t in test_pos])
        cross = np.mean([model.score(t.subject, "rel", t.object) for t in test_neg])
        assert in_block > cross + 0.1

    def test_auc_separates_true_from_corrupted(self, model, split):
        _, test_pos, test_neg = split
        auc = model.auc(test_pos, test_neg)
        assert auc > 0.9

    def test_unseen_predicate_default(self, model):
        assert model.score("a", "nope", "b") == 0.5
        assert not model.can_score("a", "nope", "b")

    def test_unseen_entity_default(self, model):
        assert model.score("brand_new", "rel", "o0_0") == 0.5

    def test_deterministic_given_seed(self):
        triples = make_block_triples(n_groups=2, size=4)
        a = BprLinkPredictor(n_factors=4, n_epochs=10, seed=9).fit(triples)
        b = BprLinkPredictor(n_factors=4, n_epochs=10, seed=9).fit(triples)
        assert a.score("s0_0", "rel", "o0_0") == b.score("s0_0", "rel", "o0_0")

    def test_corrupt_avoids_observed(self):
        triples = make_block_triples(n_groups=2, size=4)
        model = BprLinkPredictor(n_epochs=5, seed=1).fit(triples)
        rng = np.random.default_rng(0)
        observed = {(t.subject, t.object) for t in triples}
        for fake in model.corrupt(triples[:20], rng):
            assert (fake.subject, fake.object) not in observed

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BprLinkPredictor(n_factors=0)
        with pytest.raises(ConfigError):
            BprLinkPredictor(n_epochs=0)

    def test_auc_requires_data(self):
        model = BprLinkPredictor(n_epochs=1).fit(make_block_triples(2, 3))
        with pytest.raises(ConfigError):
            model.auc([], [])

    def test_skips_tiny_predicates(self):
        model = BprLinkPredictor(n_epochs=1).fit(
            [Triple("a", "solo", "b")]  # single object -> unrankable
        )
        assert "solo" not in model.models
        assert model.score("a", "solo", "b") == 0.5

    def test_on_drone_kb(self):
        kb = build_drone_kb()
        model = BprLinkPredictor(n_factors=8, n_epochs=30, seed=2).fit(kb.store)
        # manufactures has enough data to be modelled
        assert "manufactures" in model.models
        score = model.score("DJI", "manufactures", "Phantom_3")
        assert 0.0 < score < 1.0


class TestSourceTrust:
    def test_priors(self):
        trust = SourceTrust()
        assert trust.trust("wsj") > trust.trust("random-blog.example")
        assert trust.trust("yago") > trust.trust("wsj")

    def test_agreement_raises_trust(self):
        trust = SourceTrust()
        before = trust.trust("blog.example")
        for _ in range(5):
            trust.record_agreement("blog.example")
        assert trust.trust("blog.example") > before

    def test_contradiction_lowers_trust(self):
        trust = SourceTrust()
        before = trust.trust("blog.example")
        for _ in range(5):
            trust.record_contradiction("blog.example")
        assert trust.trust("blog.example") < before

    def test_bounded(self):
        trust = SourceTrust()
        for _ in range(100):
            trust.record_agreement("x")
            trust.record_contradiction("y")
        assert 0.0 < trust.trust("x") < 1.0
        assert 0.0 < trust.trust("y") < 1.0

    def test_known_sources(self):
        trust = SourceTrust()
        trust.trust("somesite")
        assert "somesite" in trust.known_sources()

    def test_invalid_prior(self):
        with pytest.raises(ConfigError):
            SourceTrust(default_prior=(0.0, 1.0))

    @given(st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_trust_monotone_in_evidence(self, agreements, contradictions):
        trust = SourceTrust()
        for _ in range(agreements):
            trust.record_agreement("s")
        low = trust.trust("s")
        for _ in range(contradictions):
            trust.record_contradiction("s")
        assert trust.trust("s") <= low


class TestConfidenceEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        kb = build_drone_kb()
        predictor = BprLinkPredictor(n_factors=8, n_epochs=30, seed=2).fit(kb.store)
        return ConfidenceEstimator(link_predictor=predictor)

    def test_breakdown_components(self, estimator):
        breakdown = estimator.breakdown(make_mapped())
        assert 0 < breakdown.prior <= 1
        assert 0 < breakdown.link_prediction < 1
        assert 0 < breakdown.source_trust < 1
        assert 0 < breakdown.final < 1

    def test_trusted_source_scores_higher(self, estimator):
        wsj = estimator.confidence(make_mapped(source="wsj"))
        blog = estimator.confidence(make_mapped(source="sketchy.example"))
        assert wsj > blog

    def test_weak_extraction_drags_final_down(self, estimator):
        strong = estimator.confidence(make_mapped(extraction=0.9))
        weak = estimator.confidence(make_mapped(extraction=0.1))
        assert strong > weak

    def test_accepts_threshold(self):
        estimator = ConfidenceEstimator(accept_threshold=0.99)
        assert not estimator.accepts(make_mapped())

    def test_weight_validation(self):
        with pytest.raises(ConfigError):
            ConfidenceEstimator(prior_weight=0, lp_weight=0, trust_weight=0)
        with pytest.raises(ConfigError):
            ConfidenceEstimator(prior_weight=-1)

    def test_trust_feedback_loop(self, estimator):
        mapped = make_mapped(source="feedback.example")
        before = estimator.source_trust.trust("feedback.example")
        estimator.update_trust_from_kb(mapped, in_kb=True)
        assert estimator.source_trust.trust("feedback.example") > before

    def test_retrain_replaces_models(self):
        estimator = ConfidenceEstimator()
        kb = build_drone_kb()
        estimator.retrain(kb.store)
        assert estimator.link_predictor.models
