"""Query-result cache: version-stamp invalidation and hit behaviour.

The engine caches results keyed on ``(query, DynamicKnowledgeGraph
version)``.  The contract under test:

- repeated queries on an *unchanged* KG are served from the cache and
  are payload-identical to the first execution;
- any KG update (persisted fact, window add/evict) bumps the version
  stamp, so the same query afterwards recomputes and reflects the
  update;
- trending queries are never cached (their payload carries stateful
  transition deltas);
- a cache-disabled engine returns the same results as a cache-enabled
  one on an unchanged KG.
"""

import pytest

from repro import Nous, NousConfig
from repro.nlp.dates import parse_date
from repro.query import QueryEngine


def _fresh_nous() -> Nous:
    nous = Nous(config=NousConfig(
        window_size=100, min_support=2, lda_iterations=10, retrain_every=0
    ))
    nous.ingest(
        "GoPro partnered with DJI in June 2015.",
        doc_id="a", date=parse_date("2015-06-10"), source="wsj",
    )
    nous.ingest(
        "Intel partnered with PrecisionHawk in July 2015.",
        doc_id="b", date=parse_date("2015-07-02"), source="wsj",
    )
    return nous


@pytest.fixture
def nous():
    return _fresh_nous()


class TestCacheHits:
    def test_repeat_query_on_unchanged_kg_hits_cache(self, nous):
        engine = QueryEngine(nous)
        first = engine.execute_text("tell me about DJI")
        second = engine.execute_text("tell me about DJI")
        assert not first.cached
        assert second.cached
        assert engine.cache_hits == 1
        assert engine.cache_misses == 1
        assert second.rendered == first.rendered
        assert second.result_count == first.result_count
        assert second.payload == first.payload  # reused, not recomputed
        assert second.kg_version == first.kg_version

    def test_hit_payload_is_mutation_guarded(self, nous):
        engine = QueryEngine(nous)
        text = "match (?a:Company)-[partnerOf]->(?b:Company)"
        miss = engine.execute_text(text)
        miss.payload.clear()  # caller abuses the miss result...
        hit = engine.execute_text(text)
        assert hit.cached and hit.payload, "cache aliased the miss payload"
        hit.payload.clear()  # ...and the hit result...
        again = engine.execute_text(text)
        assert again.cached
        assert again.result_count == len(again.payload) > 0  # ...cache intact

    def test_hit_dataclass_payload_is_mutation_guarded(self, nous):
        engine = QueryEngine(nous)
        miss = engine.execute_text("tell me about DJI")
        miss.payload.facts.clear()  # EntitySummary.facts is a list field
        hit = engine.execute_text("tell me about DJI")
        assert hit.cached
        assert len(hit.payload.facts) == hit.result_count > 0
        hit.payload.facts.clear()
        again = engine.execute_text("tell me about DJI")
        assert again.cached and len(again.payload.facts) == again.result_count

    def test_all_cacheable_classes_hit(self, nous):
        engine = QueryEngine(nous)
        texts = [
            "tell me about DJI",
            "what's new about DJI",
            "how is GoPro related to DJI",
            "why does Windermere use drones",
            "match (?a:Company)-[partnerOf]->(?b:Company)",
        ]
        firsts = [engine.execute_text(t) for t in texts]
        seconds = [engine.execute_text(t) for t in texts]
        assert all(not r.cached for r in firsts)
        assert all(r.cached for r in seconds)
        assert engine.cache_hits == len(texts)
        for a, b in zip(firsts, seconds):
            assert a.rendered == b.rendered
            assert a.result_count == b.result_count

    def test_textually_equivalent_queries_share_a_cache_slot(self, nous):
        """parse_query normalizes case/whitespace, so surface variants
        of one query are one cache entry (the normalization satellite's
        regression)."""
        engine = QueryEngine(nous)
        first = engine.execute_text("Tell me about DJI")
        second = engine.execute_text("tell  me about dji")
        assert not first.cached
        assert second.cached, "equivalent query text missed the cache"
        assert engine.cache_len == 1
        assert second.rendered == first.rendered
        assert second.result_count == first.result_count

    def test_trending_is_never_cached(self, nous):
        engine = QueryEngine(nous)
        first = engine.execute_text("show trending patterns")
        second = engine.execute_text("show trending patterns")
        assert not first.cached and not second.cached
        assert engine.cache_hits == 0
        # The second report has no transitions since the first consumed
        # them — exactly why trending must bypass the cache.
        assert second.payload.newly_frequent == []

    def test_lru_bound_respected(self, nous):
        engine = QueryEngine(nous, cache_size=2)
        for mention in ["DJI", "GoPro", "Intel"]:
            engine.execute_text(f"tell me about {mention}")
        assert engine.cache_len == 2
        # Oldest entry (DJI) was evicted -> re-executing misses.
        result = engine.execute_text("tell me about DJI")
        assert not result.cached


class TestVersionInvalidation:
    def test_kg_update_invalidates_and_returns_fresh_results(self, nous):
        engine = QueryEngine(nous)
        before = engine.execute_text("tell me about DJI")
        assert engine.execute_text("tell me about DJI").cached

        version_before = nous.dynamic.version
        nous.ingest_facts([("DJI", "acquired", "GoPro")])
        assert nous.dynamic.version > version_before

        after = engine.execute_text("tell me about DJI")
        assert not after.cached, "stale cache entry served after KG update"
        assert after.result_count == before.result_count + 1
        facts = {(s, p, o) for s, p, o, _conf, _cur in after.payload.facts}
        assert ("DJI", "acquired", "GoPro") in facts

    def test_window_only_change_invalidates_entity_trend(self, nous):
        engine = QueryEngine(nous)
        before = engine.execute_text("what's new about DJI")
        assert engine.execute_text("what's new about DJI").cached
        nous.ingest_facts([("DJI", "partnerOf", "Parrot")])
        after = engine.execute_text("what's new about DJI")
        assert not after.cached
        assert after.result_count == before.result_count + 1

    def test_ontology_and_alias_mutations_invalidate(self, nous):
        engine = QueryEngine(nous)
        text = "match (?a:Company)-[partnerOf]->(?b:Company)"
        engine.execute_text(text)
        assert engine.execute_text(text).cached
        nous.kb.ontology.add_type("Conglomerate", parent="Company")
        assert not engine.execute_text(text).cached, (
            "taxonomy change served a stale cached result"
        )
        assert engine.execute_text(text).cached
        nous.kb.aliases.add("Da Jiang", "DJI")
        assert not engine.execute_text(text).cached, (
            "alias change served a stale cached result"
        )

    def test_unknown_mention_query_caches_despite_entity_minting(self, nous):
        """Linking an unknown mention mints an entity mid-dispatch; the
        result must be cached under the post-dispatch version so the
        repeat query still hits."""
        engine = QueryEngine(nous)
        first = engine.execute_text("tell me about Zorblatt Industries")
        assert first.kg_version == nous.dynamic.version
        second = engine.execute_text("tell me about Zorblatt Industries")
        assert second.cached

    def test_pattern_query_sees_update_through_shared_view(self, nous):
        engine = QueryEngine(nous)
        text = "match (?a:Company)-[acquired]->(?b:Company)"
        before = engine.execute_text(text)
        assert engine.execute_text(text).cached
        nous.ingest_facts([("DJI", "acquired", "GoPro")])
        after = engine.execute_text(text)
        assert not after.cached
        assert after.result_count == before.result_count + 1
        assert {"a": "DJI", "b": "GoPro"} in after.payload


class TestCacheDisabledEquivalence:
    def test_disabled_engine_matches_enabled_engine(self, nous):
        cached = QueryEngine(nous, enable_cache=True)
        uncached = QueryEngine(nous, enable_cache=False)
        texts = [
            "tell me about DJI",
            "how is GoPro related to DJI",
            "match (?a:Company)-[partnerOf]->(?b:Company)",
        ]
        for text in texts:
            for _round in range(2):
                a = cached.execute_text(text)
                b = uncached.execute_text(text)
                assert a.rendered == b.rendered
                assert a.result_count == b.result_count
        assert uncached.cache_hits == 0
        assert uncached.cache_len == 0
        assert cached.cache_hits > 0

    def test_clear_cache(self, nous):
        engine = QueryEngine(nous)
        engine.execute_text("tell me about DJI")
        engine.clear_cache()
        assert engine.cache_len == 0
        assert not engine.execute_text("tell me about DJI").cached
