"""Query parsing, pattern matching and engine execution."""

import pytest

from repro import Nous, NousConfig
from repro.errors import QueryParseError
from repro.kb import build_drone_kb
from repro.nlp.dates import parse_date
from repro.query import (
    CentralityQuery,
    ComponentsQuery,
    EntityQuery,
    ExplanatoryQuery,
    PageRankQuery,
    PatternQuery,
    PatternMatcher,
    QueryEngine,
    RelationshipQuery,
    TrendingQuery,
    parse_pattern,
    parse_query,
)


class TestParser:
    @pytest.mark.parametrize("text", [
        "show trending patterns",
        "what is trending",
        "trending",
        "show trending patterns in the last week",
    ])
    def test_trending(self, text):
        assert isinstance(parse_query(text), TrendingQuery)

    @pytest.mark.parametrize("text,entity", [
        # Mentions are normalized (case/whitespace) so equivalent query
        # strings produce equal Query objects.
        ("tell me about DJI", "dji"),
        ("Tell me about DJI?", "dji"),
        ("who is Frank Wang", "frank wang"),
        ("summary of Parrot", "parrot"),
    ])
    def test_entity(self, text, entity):
        query = parse_query(text)
        assert isinstance(query, EntityQuery)
        assert query.entity == entity

    def test_relationship(self):
        query = parse_query("how is DJI related to Amazon?")
        assert isinstance(query, RelationshipQuery)
        assert query.source == "dji"
        assert query.target == "amazon"
        assert query.relationship is None

    def test_relationship_with_predicate(self):
        query = parse_query("find path from DJI to Amazon via acquired")
        assert isinstance(query, RelationshipQuery)
        assert query.relationship == "acquired"

    def test_explanatory_with_verb(self):
        query = parse_query("why does Windermere use drones?")
        assert isinstance(query, ExplanatoryQuery)
        assert query.source == "windermere"
        assert query.target == "drones"
        assert query.relationship == "usesTechnology"

    def test_explanatory_related(self):
        query = parse_query("why is DJI related to Accel Partners")
        assert isinstance(query, ExplanatoryQuery)
        assert query.relationship is None

    def test_pattern(self):
        query = parse_query("match (?a:Company)-[acquired]->(?b:Company)")
        assert isinstance(query, PatternQuery)
        assert query.pattern_text.startswith("(?a")

    @pytest.mark.parametrize("text,top", [
        ("pagerank", 10),
        ("page rank", 10),
        ("show pagerank top 5", 5),
        ("compute pagerank top 25", 25),
    ])
    def test_pagerank(self, text, top):
        query = parse_query(text)
        assert isinstance(query, PageRankQuery)
        assert query.top == top

    @pytest.mark.parametrize("text", [
        "connected components",
        "show connected components",
        "find connected components?",
    ])
    def test_components(self, text):
        assert isinstance(parse_query(text), ComponentsQuery)

    @pytest.mark.parametrize("text,top", [
        ("degree centrality", 10),
        ("show degree centrality top 3", 3),
        ("most connected entities", 10),
        ("most connected entities top 7", 7),
    ])
    def test_centrality(self, text, top):
        query = parse_query(text)
        assert isinstance(query, CentralityQuery)
        assert query.metric == "degree"
        assert query.top == top

    def test_analytics_do_not_parse_as_entity_queries(self):
        # "what is pagerank" would be swallowed by the catch-all entity
        # templates if the analytics templates ran after them.
        assert isinstance(parse_query("What is PageRank?"), PageRankQuery)

    @pytest.mark.parametrize("bad", ["", "   ", "fnord gleep", "42"])
    def test_unparseable(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_entity_does_not_swallow_why(self):
        # "what is trending" must parse as trending, not entity "trending"
        assert isinstance(parse_query("what is trending"), TrendingQuery)

    def test_normalization_produces_equal_queries(self):
        # Case/whitespace variants must collapse to one Query object so
        # they share a single query-result cache slot.
        assert parse_query("Tell me about DJI") == parse_query(
            "tell  me about dji"
        )
        assert parse_query("SHOW TRENDING PATTERNS") == parse_query(
            "show trending patterns"
        )
        assert parse_query("How is DJI  related to Amazon?") == parse_query(
            "how is dji related to amazon?"
        )

    def test_normalization_preserves_predicate_case(self):
        # 'via <predicate>' names camelCase ontology predicates; pattern
        # text likewise keeps its case.
        query = parse_query("Find path from DJI to Amazon via partnerOf")
        assert isinstance(query, RelationshipQuery)
        assert query.relationship == "partnerOf"
        pattern = parse_query("Match (?a:Company)-[acquired]->(?b:Company)")
        assert isinstance(pattern, PatternQuery)
        assert pattern.pattern_text == "(?a:Company)-[acquired]->(?b:Company)"
        assert pattern == parse_query(
            "match  (?a:Company)-[acquired]->(?b:Company)"
        )


class TestParsePattern:
    def test_single_edge(self):
        edges = parse_pattern("(?a:Company)-[acquired]->(?b:Company)")
        assert len(edges) == 1
        assert edges[0].predicate == "acquired"
        assert edges[0].src_type == "Company"

    def test_untyped_variables(self):
        edges = parse_pattern("(?x)-[rel]->(?y)")
        assert edges[0].src_type is None

    def test_multi_edge(self):
        edges = parse_pattern(
            "(?a:Company)-[fundedBy]->(?b:Company), (?a:Company)-[acquired]->(?c:Company)"
        )
        assert len(edges) == 2

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_pattern("this is not a pattern")
        with pytest.raises(QueryParseError):
            parse_pattern("(?a)-[p]->(?b) leftover junk")


class TestPatternMatcher:
    @pytest.fixture(scope="class")
    def graph_and_ontology(self):
        kb = build_drone_kb()
        return kb.to_property_graph(), kb.ontology

    def test_simple_match(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        matches = matcher.match(parse_pattern("(?a:Company)-[acquired]->(?b:Company)"))
        assert {"a": "Amazon", "b": "Kiva_Systems"} in matches

    def test_type_filtering_via_taxonomy(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        # Organization matches Company subtypes through the taxonomy
        matches = matcher.match(
            parse_pattern("(?a:Organization)-[acquired]->(?b:Company)")
        )
        assert matches

    def test_wrong_type_no_match(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        matches = matcher.match(parse_pattern("(?a:City)-[acquired]->(?b:Company)"))
        assert matches == []

    def test_join_across_edges(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        matches = matcher.match(parse_pattern(
            "(?c:Company)-[foundedBy]->(?p:Person), (?c:Company)-[headquarteredIn]->(?l:Location)"
        ))
        assert any(m["c"] == "DJI" and m["p"] == "Frank_Wang" for m in matches)

    def test_injective_bindings(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        matches = matcher.match(parse_pattern(
            "(?a:Company)-[competitorOf]->(?b:Company)"
        ))
        assert all(m["a"] != m["b"] for m in matches)

    def test_limit_respected(self, graph_and_ontology):
        graph, ontology = graph_and_ontology
        matcher = PatternMatcher(graph, ontology)
        matches = matcher.match(
            parse_pattern("(?a)-[productOf]->(?b)"), limit=2
        )
        assert len(matches) == 2


class TestQueryEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        nous = Nous(config=NousConfig(
            window_size=100, min_support=2, lda_iterations=10, retrain_every=0
        ))
        nous.ingest(
            "GoPro partnered with DJI in June 2015.",
            doc_id="a", date=parse_date("2015-06-10"), source="wsj",
        )
        nous.ingest(
            "Intel partnered with PrecisionHawk in July 2015.",
            doc_id="b", date=parse_date("2015-07-02"), source="wsj",
        )
        return QueryEngine(nous)

    def test_entity_query(self, engine):
        result = engine.execute_text("tell me about DJI")
        assert result.kind == "entity"
        assert result.result_count > 0
        assert "DJI" in result.rendered
        assert result.elapsed_ms >= 0

    def test_trending_query(self, engine):
        result = engine.execute_text("show trending patterns")
        assert result.kind == "trending"
        assert "window edges" in result.rendered

    def test_relationship_query(self, engine):
        result = engine.execute_text("how is GoPro related to DJI")
        assert result.kind == "relationship"
        assert result.result_count >= 1
        assert "coherence" in result.rendered

    def test_explanatory_query(self, engine):
        result = engine.execute_text("why does Windermere use drones")
        assert result.kind == "explanatory"
        # Path exists via usesTechnology edges in the curated KB
        assert result.result_count >= 1

    def test_pattern_query(self, engine):
        result = engine.execute_text(
            "match (?a:Company)-[partnerOf]->(?b:Company)"
        )
        assert result.kind == "pattern"
        assert result.result_count >= 1

    def test_pagerank_query(self, engine):
        result = engine.execute_text("pagerank top 5")
        assert result.kind == "pagerank"
        assert 0 < result.result_count <= 5
        ranks = result.payload["ranks"]
        # Descending scores, and the census covers the whole graph.
        assert ranks == sorted(ranks, key=lambda row: (-row[1], row[0]))
        assert result.payload["num_vertices"] >= len(ranks)
        assert "pagerank over" in result.rendered

    def test_components_query(self, engine):
        result = engine.execute_text("connected components")
        assert result.kind == "components"
        census = result.payload["components"]
        assert result.result_count == len(census) > 0
        # Largest component first, members sorted, none shared.
        sizes = [len(members) for members in census]
        assert sizes == sorted(sizes, reverse=True)
        all_members = [m for members in census for m in members]
        assert len(all_members) == len(set(all_members))

    def test_centrality_query(self, engine):
        result = engine.execute_text("degree centrality top 5")
        assert result.kind == "centrality"
        assert result.payload["metric"] == "degree"
        assert 0 < result.result_count <= 5
        assert "degree centrality" in result.rendered

    def test_result_count_consistent_for_all_classes(self, engine):
        """result_count must be populated from the payload for every
        query class, never left at the dataclass default of 0."""
        by_kind = {}
        for text in [
            "show trending patterns",
            "tell me about DJI",
            "what's new about DJI",
            "how is GoPro related to DJI",
            "why does Windermere use drones",
            "match (?a:Company)-[partnerOf]->(?b:Company)",
        ]:
            result = engine.execute_text(text)
            by_kind[result.kind] = result
        assert by_kind["trending"].result_count == len(
            by_kind["trending"].payload.closed_frequent
        )
        assert by_kind["entity"].result_count == len(
            by_kind["entity"].payload.facts
        )
        for kind in ("entity-trend", "relationship", "explanatory", "pattern"):
            assert by_kind[kind].result_count == len(by_kind[kind].payload)
        # Non-degenerate: this fixture has data behind every class.
        for kind in ("trending", "entity", "relationship", "explanatory", "pattern"):
            assert by_kind[kind].result_count > 0, f"{kind} result_count is 0"

    def test_all_five_classes_covered(self, engine):
        kinds = set()
        for text in [
            "show trending patterns",
            "tell me about DJI",
            "how is GoPro related to DJI",
            "why does Windermere use drones",
            "match (?a:Company)-[partnerOf]->(?b:Company)",
        ]:
            kinds.add(engine.execute_text(text).kind)
        assert kinds == {
            "trending", "entity", "relationship", "explanatory", "pattern"
        }
