"""Entity-trend query ("what's new about X") and central-entity stats."""

import pytest

from repro import Nous, NousConfig, QueryEngine
from repro.nlp.dates import parse_date
from repro.query import parse_query
from repro.query.model import EntityTrendQuery


@pytest.fixture(scope="module")
def system():
    nous = Nous(config=NousConfig(retrain_every=0, lda_iterations=5))
    nous.ingest("GoPro partnered with DJI in June 2015.",
                doc_id="a", date=parse_date("2015-06-10"), source="wsj")
    nous.ingest("DJI raised $75 million from Accel Partners in July 2015.",
                doc_id="b", date=parse_date("2015-07-06"), source="wsj")
    return nous


class TestParsing:
    @pytest.mark.parametrize("text,entity", [
        # parse_query normalizes mention case/whitespace so equivalent
        # queries produce equal Query objects (shared cache slots).
        ("what's new about DJI", "dji"),
        ("what is new about DJI?", "dji"),
        ("recent news about Parrot", "parrot"),
    ])
    def test_parses(self, text, entity):
        query = parse_query(text)
        assert isinstance(query, EntityTrendQuery)
        assert query.entity == entity

    def test_does_not_shadow_trending(self):
        from repro.query.model import TrendingQuery
        assert isinstance(parse_query("what is trending"), TrendingQuery)


class TestExecution:
    def test_returns_recent_facts_newest_first(self, system):
        rows = system.entity_trend("DJI")
        assert rows
        timestamps = [r[0] for r in rows]
        assert timestamps == sorted(timestamps, reverse=True)
        triples = {(s, p, o) for _, s, p, o, _ in rows}
        assert any(p == "fundedBy" for _, p, _ in triples)

    def test_unknown_entity_empty(self, system):
        assert system.entity_trend("Quux Nonexistent Corp") == []

    def test_engine_renders(self, system):
        engine = QueryEngine(system)
        result = engine.execute_text("what's new about DJI")
        assert result.kind == "entity-trend"
        assert result.result_count >= 1
        assert "fundedBy" in result.rendered or "partnerOf" in result.rendered

    def test_limit(self, system):
        assert len(system.entity_trend("DJI", limit=1)) == 1


class TestCentralEntities:
    def test_pagerank_in_statistics(self, system):
        stats = system.statistics()
        assert stats.central_entities
        names = [e for e, _ in stats.central_entities]
        assert "Drone_Industry" in names or "DJI" in names
        rendered = stats.render()
        assert "most central entities" in rendered

    def test_skippable(self, system):
        from repro.core.statistics import compute_statistics
        stats = compute_statistics(system.kb, top_central=0)
        assert stats.central_entities == []
