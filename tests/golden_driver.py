"""Golden-pipeline driver: ingest a fixed seeded corpus, print metrics.

Run as a subprocess by ``tests/test_golden_pipeline.py`` with
``PYTHONHASHSEED=0`` so that set/dict hash iteration order — which can
break ties in linking and beam search — is identical on every run.  Not
a test module itself (pytest ignores the filename).

Since ISSUE 2 the driver goes through :class:`repro.api.NousService`
(the supported entry point) instead of raw ``Nous``: documents travel
the ingestion queue (one deterministic synchronous drain covering the
whole corpus), per-document metrics come from the *wire-format* ticket
payloads, and query answers are read back through
``decode_payload`` — so the golden values also pin the envelope codecs.

Since ISSUE 4 the same corpus is additionally ingested through a
three-shard :class:`repro.api.ShardedNousService` and the *merged*
scatter-gather answers are pinned under the ``sharded`` key — document
routing, per-query-class merge assembly and the composite version stamp
are all locked by golden values.

Since ISSUE 6 the driver also exercises the durability layer: half the
corpus, a snapshot, a cold start from disk, then the rest — the
``cold_start_consistent`` key pins that a restarted service is
indistinguishable from one that never stopped.

Prints one JSON object on stdout.

Two environment knobs parameterize the run (both used by
``tests/nlp/test_parallel_extraction.py`` to pin that the process-pool
extraction path is byte-identical to the serial one):

- ``NOUS_GOLDEN_EXTRACT_WORKERS`` — ``extract_workers`` for every
  service the driver builds (default 1, the serial path).
- ``NOUS_GOLDEN_SCOPE=mono`` — emit only the monolithic-service
  metrics, skipping the sharded and cold-start sections (a cheaper run
  for A/B comparisons that only vary extraction parallelism).
"""

from __future__ import annotations

import json
import os
import sys

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.wire import decode_payload
from repro.query import QueryEngine

GOLDEN_SEED = 11
N_ARTICLES = 40
N_SHARDS = 3

QUERY_TEXTS = [
    "tell me about DJI",
    "how is GoPro related to DJI",
    "why does Windermere use drones",
    "match (?a:Company)-[acquired]->(?b:Company)",
    "what's new about DJI",
]


def golden_kb_and_articles() -> tuple:
    """The seeded world: drone KB + descriptions, extended in place by
    the corpus generator's synthetic entities.  Deterministic for a
    fixed seed, so calling it once per shard yields identical curated
    bases (shards must not share one mutable KB instance)."""
    kb = build_drone_kb()
    generate_descriptions(kb, seed=GOLDEN_SEED)
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=GOLDEN_SEED)
    )
    return kb, articles


def golden_kb():
    kb, _articles = golden_kb_and_articles()
    return kb


def golden_config() -> NousConfig:
    return NousConfig(
        window_size=120,
        min_support=2,
        lda_iterations=20,
        retrain_every=60,
        seed=GOLDEN_SEED,
        extract_workers=int(
            os.environ.get("NOUS_GOLDEN_EXTRACT_WORKERS", "1")
        ),
    )


def build_service() -> tuple:
    kb, articles = golden_kb_and_articles()
    service = NousService(
        kb=kb,
        config=golden_config(),
        # Deterministic single-threaded drains; one batch spans the
        # whole corpus, so the run pins ``ingest_batch`` semantics.
        service_config=ServiceConfig(auto_start=False, max_batch=N_ARTICLES),
    )
    tickets = service.submit_many(articles)
    service.flush()
    return service, [t.result(timeout=0) for t in tickets]


def build_sharded_service() -> tuple:
    _kb, articles = golden_kb_and_articles()
    service = ShardedNousService(
        kb_factory=golden_kb,
        num_shards=N_SHARDS,
        config=golden_config(),
        service_config=ServiceConfig(auto_start=False, max_batch=N_ARTICLES),
    )
    tickets = service.submit_many(articles)
    service.flush()
    return service, [t.result(timeout=0) for t in tickets]


def cold_start_consistent() -> bool:
    """Ingest half, snapshot, restart from disk, ingest the rest.

    The cold-started service (ISSUE 6 durability layer) must match an
    uninterrupted reference byte for byte — same fact/entity counts,
    same composite stamp, same rendered answer for every golden query.
    The reference uses the *same micro-batch boundaries* as the durable
    run: source trust evolves at batch granularity, so confidences are
    only comparable under identical chunking.
    """
    import shutil
    import tempfile

    half = N_ARTICLES // 2
    data_dir = tempfile.mkdtemp(prefix="nous-golden-cold-start-")
    service_config = ServiceConfig(auto_start=False, max_batch=N_ARTICLES)
    try:
        kb, articles = golden_kb_and_articles()
        reference = NousService(
            kb=kb, config=golden_config(), service_config=service_config
        )
        reference.submit_many(articles[:half])
        reference.flush()
        reference.submit_many(articles[half:])
        reference.flush()

        first = NousService(
            kb=golden_kb(),
            config=golden_config(),
            service_config=service_config,
            data_dir=data_dir,
        )
        first.submit_many(articles[:half])
        first.flush()
        first.snapshot()
        first.close()

        # Fresh process-equivalent: recovery runs in the constructor.
        cold = NousService(
            kb=golden_kb(),
            config=golden_config(),
            service_config=service_config,
            data_dir=data_dir,
        )
        cold.submit_many(articles[half:])
        cold.flush()

        consistent = (
            cold.nous.kb.num_facts == reference.nous.kb.num_facts
            and len(cold.nous.kb.entities())
            == len(reference.nous.kb.entities())
            and cold.kg_version == reference.kg_version
        )
        # Queries mutate the engine (linking mints unknown mentions),
        # so both sides answer in lockstep.
        for text in QUERY_TEXTS:
            a = reference.query(text)
            b = cold.query(text)
            consistent = consistent and (
                a.ok == b.ok
                and a.rendered == b.rendered
                and a.payload == b.payload
            )
        reference.close()
        cold.close()
        return consistent
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def sharded_metrics() -> dict:
    """Pin the merged (scatter-gather) pipeline at N_SHARDS shards."""
    service, envelopes = build_sharded_service()
    assert all(env.ok for env in envelopes)

    trending_envelope = service.query("show trending patterns")
    trending = decode_payload("trending", trending_envelope.payload)
    top_patterns = sorted(
        f"{pattern.describe()}|{support}"
        for pattern, support in trending.closed_frequent
    )[:5]

    paths_envelope = service.query("why does Windermere use drones")
    paths = decode_payload(paths_envelope.kind, paths_envelope.payload)

    # Merged-result cache consistency: every query answered twice must
    # render identically (second answers come from the composite-version
    # cache) and report ok.
    cache_consistent = True
    first_rendered = {}
    for text in QUERY_TEXTS * 2:
        response = service.query(text)
        if not response.ok:
            cache_consistent = False
            continue
        if text not in first_rendered:
            first_rendered[text] = response.rendered
        elif first_rendered[text] != response.rendered:
            cache_consistent = False

    stats_payload = service.statistics().payload
    cluster = stats_payload["cluster"]
    metrics = {
        "accepted_total": sum(
            env.payload["accepted"] for env in envelopes
        ),
        "documents_routed": cluster["documents_routed"],
        "num_facts": stats_payload["num_facts"],
        "num_entities": stats_payload["num_entities"],
        "window_edges": trending.window_edges,
        "closed_frequent_count": len(trending.closed_frequent),
        "top_patterns": top_patterns,
        "top_path_nodes": [str(n) for n in paths[0].nodes] if paths else [],
        "top_path_coherence": round(paths[0].coherence, 6) if paths else None,
        "cut_edges": cluster["partition"]["cut_edges"],
        "cache_consistent": cache_consistent,
        "cache_hits": service.cache_hits,
    }
    service.close()
    return metrics


def main() -> None:
    service, ingest_envelopes = build_service()
    assert all(env.ok for env in ingest_envelopes)
    ingest_payloads = [env.payload for env in ingest_envelopes]

    trending_envelope = service.query("show trending patterns")
    trending = decode_payload("trending", trending_envelope.payload)
    top_patterns = sorted(
        f"{pattern.describe()}|{support}"
        for pattern, support in trending.closed_frequent
    )[:5]

    paths_envelope = service.query("why does Windermere use drones")
    paths = decode_payload(paths_envelope.kind, paths_envelope.payload)

    # Cache consistency: the same queries through the (cache-enabled)
    # service and a cache-disabled engine, twice each, must render
    # identically.
    plain_engine = QueryEngine(service.nous, enable_cache=False)
    cache_consistent = True
    for text in QUERY_TEXTS * 2:
        a = service.query(text)
        b = plain_engine.execute_text(text)
        if a.rendered != b.rendered or not a.ok:
            cache_consistent = False

    metrics = {
        "accepted_total": sum(p["accepted"] for p in ingest_payloads),
        "rejected_confidence_total": sum(
            p["rejected_confidence"] for p in ingest_payloads
        ),
        "raw_triples_total": sum(p["raw_triples"] for p in ingest_payloads),
        "num_facts": service.nous.kb.num_facts,
        "num_entities": len(service.nous.kb.entities()),
        "window_edges": trending.window_edges,
        "closed_frequent_count": len(trending.closed_frequent),
        "top_patterns": top_patterns,
        "top_path_nodes": [str(n) for n in paths[0].nodes] if paths else [],
        "top_path_coherence": round(paths[0].coherence, 6) if paths else None,
        "cache_consistent": cache_consistent,
        "cache_hits": service.engine.cache_hits,
        "batches_drained": service.batches_drained,
    }
    if os.environ.get("NOUS_GOLDEN_SCOPE", "full") != "mono":
        metrics["sharded"] = sharded_metrics()
        metrics["cold_start_consistent"] = cold_start_consistent()
    service.close()
    json.dump(metrics, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
