"""Golden-pipeline driver: ingest a fixed seeded corpus, print metrics.

Run as a subprocess by ``tests/test_golden_pipeline.py`` with
``PYTHONHASHSEED=0`` so that set/dict hash iteration order — which can
break ties in linking and beam search — is identical on every run.  Not
a test module itself (pytest ignores the filename).

Prints one JSON object on stdout.
"""

from __future__ import annotations

import json
import sys

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.query import QueryEngine

GOLDEN_SEED = 11
N_ARTICLES = 40

QUERY_TEXTS = [
    "tell me about DJI",
    "how is GoPro related to DJI",
    "why does Windermere use drones",
    "match (?a:Company)-[acquired]->(?b:Company)",
    "what's new about DJI",
]


def build_system() -> Nous:
    kb = build_drone_kb()
    generate_descriptions(kb, seed=GOLDEN_SEED)
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=GOLDEN_SEED)
    )
    nous = Nous(
        kb=kb,
        config=NousConfig(
            window_size=120,
            min_support=2,
            lda_iterations=20,
            retrain_every=60,
            seed=GOLDEN_SEED,
        ),
    )
    nous._ingest_results = nous.ingest_corpus(articles)  # type: ignore[attr-defined]
    return nous


def main() -> None:
    nous = build_system()
    results = nous._ingest_results  # type: ignore[attr-defined]

    trending = nous.trending()
    top_patterns = sorted(
        f"{pattern.describe()}|{support}"
        for pattern, support in trending.closed_frequent
    )[:5]

    paths = nous.explain("Windermere", "drones", k=3)

    # Cache consistency: the same queries through a cache-enabled and a
    # cache-disabled engine, twice each, must render identically.
    cached_engine = QueryEngine(nous, enable_cache=True)
    plain_engine = QueryEngine(nous, enable_cache=False)
    cache_consistent = True
    for text in QUERY_TEXTS * 2:
        a = cached_engine.execute_text(text)
        b = plain_engine.execute_text(text)
        if a.rendered != b.rendered or a.result_count != b.result_count:
            cache_consistent = False

    metrics = {
        "accepted_total": sum(r.accepted for r in results),
        "rejected_confidence_total": sum(r.rejected_confidence for r in results),
        "raw_triples_total": sum(r.raw_triples for r in results),
        "num_facts": nous.kb.num_facts,
        "num_entities": len(nous.kb.entities()),
        "window_edges": trending.window_edges,
        "closed_frequent_count": len(trending.closed_frequent),
        "top_patterns": top_patterns,
        "top_path_nodes": [str(n) for n in paths[0].nodes] if paths else [],
        "top_path_coherence": round(paths[0].coherence, 6) if paths else None,
        "cache_consistent": cache_consistent,
        "cache_hits": cached_engine.cache_hits,
    }
    json.dump(metrics, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
