"""Visualisation exports and the command-line interface."""

import json

import pytest

from repro.api import API_VERSION, ApiResponse
from repro.core.viz import ego_subgraph, subgraph_to_dot, subgraph_to_text
from repro.graph import PropertyGraph
from repro.query import cli


@pytest.fixture
def small_kg_graph():
    g = PropertyGraph()
    g.add_vertex("DJI", type="Company", name="DJI")
    g.add_vertex("Phantom_3", type="Product", name="Phantom 3")
    g.add_vertex("Shenzhen", type="City", name="Shenzhen")
    g.add_vertex("Far_Away", type="Company", name="Far Away")
    g.add_edge("DJI", "Phantom_3", "manufactures", curated=True, confidence=1.0)
    g.add_edge("DJI", "Shenzhen", "headquarteredIn", curated=False, confidence=0.6)
    g.add_edge("Shenzhen", "Far_Away", "near", curated=True, confidence=1.0)
    return g


class TestEgoSubgraph:
    def test_radius_one(self, small_kg_graph):
        ego = ego_subgraph(small_kg_graph, "DJI", hops=1)
        assert ego.has_vertex("Phantom_3")
        assert not ego.has_vertex("Far_Away")

    def test_radius_two_reaches_everything(self, small_kg_graph):
        ego = ego_subgraph(small_kg_graph, "DJI", hops=2)
        assert ego.num_vertices == 4


class TestDotExport:
    def test_structure(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph, center="DJI", hops=1)
        assert dot.startswith("digraph KG {")
        assert dot.rstrip().endswith("}")
        assert '"DJI" -> "Phantom_3"' in dot

    def test_provenance_colors(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph, center="DJI", hops=1)
        assert 'color="red"' in dot    # curated
        assert 'color="blue"' in dot   # extracted

    def test_extracted_edge_shows_confidence(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph, center="DJI", hops=1)
        assert "(0.60)" in dot

    def test_type_colors(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph, center="DJI", hops=1)
        assert 'fillcolor="lightblue"' in dot   # Company
        assert 'fillcolor="lightgreen"' in dot  # Product

    def test_edge_truncation(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph, center="DJI", hops=2, max_edges=1)
        assert "truncated" in dot

    def test_whole_graph_without_center(self, small_kg_graph):
        dot = subgraph_to_dot(small_kg_graph)
        assert '"Far_Away"' in dot


class TestTextExport:
    def test_indented_levels(self, small_kg_graph):
        text = subgraph_to_text(small_kg_graph, "DJI", hops=2)
        lines = text.splitlines()
        assert lines[0].startswith("DJI")
        assert any(line.startswith("  ") for line in lines)
        assert "-[manufactures]->" in text


class TestCli:
    def test_demo_command(self, capsys):
        status = cli.main(["demo", "--articles", "12", "--seed", "3"])
        assert status == 0
        out = capsys.readouterr().out
        assert "Knowledge Graph statistics" in out

    def test_query_command(self, capsys):
        status = cli.main([
            "query", "tell me about DJI", "--articles", "12", "--seed", "3",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "DJI" in out
        assert "[entity" in out

    def test_demo_with_inline_query(self, capsys):
        status = cli.main([
            "demo", "--articles", "12", "--seed", "3",
            "--query", "show trending patterns",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "window edges" in out

    def test_bad_query_reports_error(self, capsys):
        status = cli.main([
            "query", "gibberish blargh", "--articles", "12", "--seed", "3",
        ])
        assert status == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "query.parse" in err  # structured taxonomy code surfaces

    def test_query_json_emits_wire_envelope(self, capsys):
        status = cli.main([
            "query", "--json", "tell me about DJI",
            "--articles", "12", "--seed", "3",
        ])
        assert status == 0
        out = capsys.readouterr().out
        envelope = json.loads(out.strip().splitlines()[-1])
        assert envelope["ok"] is True
        assert envelope["kind"] == "entity"
        assert envelope["api_version"] == API_VERSION
        assert envelope["payload"]["entity"] == "DJI"
        # The envelope is a faithful ApiResponse wire form.
        response = ApiResponse.from_dict(envelope)
        assert response.ok and response.kind == "entity"

    def test_query_json_error_envelope_and_exit_code(self, capsys):
        status = cli.main([
            "query", "--json", "gibberish blargh",
            "--articles", "12", "--seed", "3",
        ])
        assert status == 1
        out = capsys.readouterr().out
        envelope = json.loads(out.strip().splitlines()[-1])
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "query.parse"
        assert envelope["payload"] is None

    def test_demo_json(self, capsys):
        status = cli.main([
            "demo", "--json", "--articles", "12", "--seed", "3",
        ])
        assert status == 0
        out = capsys.readouterr().out
        envelope = json.loads(out.strip().splitlines()[-1])
        assert envelope["kind"] == "statistics"
        assert envelope["payload"]["num_facts"] > 0

    def test_build_demo_service_reusable(self):
        service = cli.build_demo_service(n_articles=10, seed=5)
        assert service.nous.documents_ingested == 10
        assert service.pending_count == 0
        assert service.query("tell me about DJI").ok
