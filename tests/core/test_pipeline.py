"""Nous facade: ingestion, dynamic KG coupling, queries, statistics."""

import pytest

from repro import Nous, NousConfig, build_drone_kb, compute_statistics
from repro.core.dynamic_kg import DynamicKnowledgeGraph
from repro.errors import ConfigError
from repro.graph.temporal import CountWindow
from repro.linking.mapper import MappedTriple
from repro.nlp.dates import parse_date
from repro.nlp.pipeline import RawTriple


def make_mapped(s, p, o, source="wsj", date=None):
    return MappedTriple(
        subject=s, predicate=p, object=o, object_is_literal=False,
        extraction_confidence=0.8, link_confidence=0.9,
        mapping_confidence=1.0, date=date, doc_id="d", source=source,
        raw=RawTriple(subject=s, relation=p, object=o),
    )


@pytest.fixture(scope="module")
def fast_config():
    return NousConfig(
        window_size=100, min_support=2, lda_iterations=15, retrain_every=0
    )


@pytest.fixture(scope="module")
def built_nous(fast_config):
    """One Nous instance with a few documents ingested (module-scoped —
    read-only tests share it)."""
    nous = Nous(config=fast_config)
    docs = [
        ("Amazon acquired Kiva Systems for $775 million in 2012.", "2012-03-19"),
        ("DJI raised $75 million from Accel Partners in May 2015.", "2015-05-06"),
        ("Windermere uses drones to capture aerial photos.", "2015-06-01"),
        ("GoPro partnered with DJI in June 2015.", "2015-06-10"),
        ("Intel partnered with PrecisionHawk in July 2015.", "2015-07-02"),
    ]
    for i, (text, date) in enumerate(docs):
        nous.ingest(text, doc_id=f"wsj-{i}", date=parse_date(date), source="wsj")
    return nous


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            NousConfig(window_size=0).validate()
        with pytest.raises(ConfigError):
            NousConfig(accept_threshold=2.0).validate()


class TestIngestion:
    def test_accepts_facts(self, built_nous):
        assert built_nous.documents_ingested == 5
        # (Amazon, acquired, Kiva_Systems) is already curated: the store
        # keeps the higher-confidence curated version.
        curated = built_nous.kb.store.get("Amazon", "acquired", "Kiva_Systems")
        assert curated is not None and curated.curated
        # A genuinely novel fact enters as extracted.
        novel = built_nous.kb.store.get("GoPro", "partnerOf", "DJI")
        assert novel is not None
        assert not novel.curated
        assert novel.source == "wsj"

    def test_fact_date_recorded(self, built_nous):
        fact = built_nous.kb.store.get("GoPro", "partnerOf", "DJI")
        assert str(fact.date) == "2015-06"  # sentence date wins

    def test_ingest_returns_breakdown(self, fast_config):
        nous = Nous(config=fast_config)
        result = nous.ingest(
            "DJI raised $75 million from Accel Partners in May 2015.",
            doc_id="x", date=parse_date("2015-05-06"), source="wsj",
        )
        assert result.raw_triples > 0
        assert result.accepted > 0
        assert result.accepted_triples
        subjects = {t[0] for t in result.accepted_triples}
        assert "DJI" in subjects

    def test_empty_document(self, fast_config):
        nous = Nous(config=fast_config)
        result = nous.ingest("", doc_id="empty")
        assert result.raw_triples == 0
        assert result.accepted == 0

    def test_window_tracks_accepted_facts(self, built_nous):
        assert built_nous.dynamic.window.window_size > 0
        assert built_nous.dynamic.miner.window_size == (
            built_nous.dynamic.window.window_size
        )

    def test_timestamps_monotone_even_with_old_dates(self, fast_config):
        nous = Nous(config=fast_config)
        nous.ingest("DJI launched the Phantom 3 in 2015.",
                    date=parse_date("2015-04-08"))
        # an article about an *older* event must not move time backwards
        nous.ingest("Amazon acquired Kiva Systems in 2012.",
                    date=parse_date("2012-03-19"))
        assert nous.dynamic.window.window_size >= 0  # no ConfigError raised


class TestQueries:
    def test_entity_summary(self, built_nous):
        summary = built_nous.entity_summary("DJI")
        assert summary.entity == "DJI"
        assert summary.entity_type == "Company"
        assert any(p == "fundedBy" for _, p, _, _, _ in summary.facts)
        rendered = summary.render()
        assert "DJI" in rendered and "conf=" in rendered

    def test_trending_patterns(self, built_nous):
        report = built_nous.trending()
        assert report.window_edges > 0
        # two partnerships with distinct endpoint pairs -> MNI support 2
        supports = {p.describe(): s for p, s in report.closed_frequent}
        assert any("partnerOf" in desc for desc in supports)

    def test_explain_paths(self, built_nous):
        paths = built_nous.explain("GoPro", "Accel Partners", k=2)
        assert paths
        assert paths[0].nodes[0] == "GoPro"
        assert paths[0].nodes[-1] == "Accel_Partners"

    def test_explain_unknown_entity_creates_then_fails_gracefully(self, built_nous):
        from repro.errors import QAError
        with pytest.raises(QAError):
            built_nous.explain("Completely Unknown Thing 42", "DJI")

    def test_statistics(self, built_nous):
        stats = built_nous.statistics()
        assert stats.extracted_facts > 0
        assert stats.curated_facts > 0
        assert sum(stats.confidence_histogram) == stats.num_facts
        assert "wsj" in stats.facts_per_source
        rendered = stats.render()
        assert "confidence histogram" in rendered

    def test_topics_cached_until_growth(self, built_nous):
        g1 = built_nous._topic_annotated_graph()
        g2 = built_nous._topic_annotated_graph()
        assert g1 is g2
        built_nous.kb.add_fact("DJI", "partnerOf", "GoPro", curated=False,
                               confidence=0.5, source="test")
        g3 = built_nous._topic_annotated_graph()
        assert g3 is not g1


class TestDynamicKnowledgeGraph:
    def test_accept_fact_updates_both_views(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, window=CountWindow(size=10), min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, timestamp=1.0)
        assert kb.store.get("DJI", "partnerOf", "GoPro") is not None
        assert dkg.window.window_size == 1
        assert dkg.miner.window_size == 1

    def test_window_eviction_updates_miner(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, window=CountWindow(size=2), min_support=1)
        for i, t in enumerate(["GoPro", "Parrot_SA", "Intel"]):
            dkg.accept_fact(make_mapped("DJI", "partnerOf", t), 0.7, float(i))
        assert dkg.window.window_size == 2
        assert dkg.miner.window_size == 2
        # KB keeps everything (facts are persistent)
        assert len(kb.store.match(subject="DJI", predicate="partnerOf")) == 3

    def test_miner_sees_types(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, 1.0)
        patterns = list(dkg.miner.supports())
        assert any("Company" in p.describe() for p in patterns)

    def test_trending_report(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, 1.0)
        report = dkg.trending_report(timestamp=1.0)
        assert report.window_edges == 1
        assert report.closed_frequent


class TestStatisticsHelpers:
    def test_empty_kb(self):
        from repro.kb import KnowledgeBase
        stats = compute_statistics(KnowledgeBase())
        assert stats.num_facts == 0
        assert stats.mean_extracted_confidence == 0.0
        assert stats.render()  # must not crash on empty histogram
