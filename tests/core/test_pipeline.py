"""Nous facade: ingestion, dynamic KG coupling, queries, statistics."""

import pytest

from repro import Nous, NousConfig, build_drone_kb, compute_statistics
from repro.core.dynamic_kg import DynamicKnowledgeGraph
from repro.errors import ConfigError
from repro.graph.temporal import CountWindow, TimeWindow
from repro.linking.mapper import MappedTriple
from repro.nlp.dates import parse_date
from repro.nlp.pipeline import RawTriple


def make_mapped(s, p, o, source="wsj", date=None):
    return MappedTriple(
        subject=s, predicate=p, object=o, object_is_literal=False,
        extraction_confidence=0.8, link_confidence=0.9,
        mapping_confidence=1.0, date=date, doc_id="d", source=source,
        raw=RawTriple(subject=s, relation=p, object=o),
    )


@pytest.fixture(scope="module")
def fast_config():
    return NousConfig(
        window_size=100, min_support=2, lda_iterations=15, retrain_every=0
    )


@pytest.fixture(scope="module")
def built_nous(fast_config):
    """One Nous instance with a few documents ingested (module-scoped —
    read-only tests share it)."""
    nous = Nous(config=fast_config)
    docs = [
        ("Amazon acquired Kiva Systems for $775 million in 2012.", "2012-03-19"),
        ("DJI raised $75 million from Accel Partners in May 2015.", "2015-05-06"),
        ("Windermere uses drones to capture aerial photos.", "2015-06-01"),
        ("GoPro partnered with DJI in June 2015.", "2015-06-10"),
        ("Intel partnered with PrecisionHawk in July 2015.", "2015-07-02"),
    ]
    for i, (text, date) in enumerate(docs):
        nous.ingest(text, doc_id=f"wsj-{i}", date=parse_date(date), source="wsj")
    return nous


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            NousConfig(window_size=0).validate()
        with pytest.raises(ConfigError):
            NousConfig(accept_threshold=2.0).validate()


class TestIngestion:
    def test_accepts_facts(self, built_nous):
        assert built_nous.documents_ingested == 5
        # (Amazon, acquired, Kiva_Systems) is already curated: the store
        # keeps the higher-confidence curated version.
        curated = built_nous.kb.store.get("Amazon", "acquired", "Kiva_Systems")
        assert curated is not None and curated.curated
        # A genuinely novel fact enters as extracted.
        novel = built_nous.kb.store.get("GoPro", "partnerOf", "DJI")
        assert novel is not None
        assert not novel.curated
        assert novel.source == "wsj"

    def test_fact_date_recorded(self, built_nous):
        fact = built_nous.kb.store.get("GoPro", "partnerOf", "DJI")
        assert str(fact.date) == "2015-06"  # sentence date wins

    def test_ingest_returns_breakdown(self, fast_config):
        nous = Nous(config=fast_config)
        result = nous.ingest(
            "DJI raised $75 million from Accel Partners in May 2015.",
            doc_id="x", date=parse_date("2015-05-06"), source="wsj",
        )
        assert result.raw_triples > 0
        assert result.accepted > 0
        assert result.accepted_triples
        subjects = {t[0] for t in result.accepted_triples}
        assert "DJI" in subjects

    def test_empty_document(self, fast_config):
        nous = Nous(config=fast_config)
        result = nous.ingest("", doc_id="empty")
        assert result.raw_triples == 0
        assert result.accepted == 0

    def test_window_tracks_accepted_facts(self, built_nous):
        assert built_nous.dynamic.window.window_size > 0
        assert built_nous.dynamic.miner.window_size == (
            built_nous.dynamic.window.window_size
        )

    def test_timestamps_monotone_even_with_old_dates(self, fast_config):
        nous = Nous(config=fast_config)
        nous.ingest("DJI launched the Phantom 3 in 2015.",
                    date=parse_date("2015-04-08"))
        # an article about an *older* event must not move time backwards
        nous.ingest("Amazon acquired Kiva Systems in 2012.",
                    date=parse_date("2012-03-19"))
        assert nous.dynamic.window.window_size >= 0  # no ConfigError raised


class TestQueries:
    def test_entity_summary(self, built_nous):
        summary = built_nous.entity_summary("DJI")
        assert summary.entity == "DJI"
        assert summary.entity_type == "Company"
        assert any(p == "fundedBy" for _, p, _, _, _ in summary.facts)
        rendered = summary.render()
        assert "DJI" in rendered and "conf=" in rendered

    def test_trending_patterns(self, built_nous):
        report = built_nous.trending()
        assert report.window_edges > 0
        # two partnerships with distinct endpoint pairs -> MNI support 2
        supports = {p.describe(): s for p, s in report.closed_frequent}
        assert any("partnerOf" in desc for desc in supports)

    def test_explain_paths(self, built_nous):
        paths = built_nous.explain("GoPro", "Accel Partners", k=2)
        assert paths
        assert paths[0].nodes[0] == "GoPro"
        assert paths[0].nodes[-1] == "Accel_Partners"

    def test_explain_unknown_entity_creates_then_fails_gracefully(self, built_nous):
        from repro.errors import QAError
        with pytest.raises(QAError):
            built_nous.explain("Completely Unknown Thing 42", "DJI")

    def test_statistics(self, built_nous):
        stats = built_nous.statistics()
        assert stats.extracted_facts > 0
        assert stats.curated_facts > 0
        assert sum(stats.confidence_histogram) == stats.num_facts
        assert "wsj" in stats.facts_per_source
        rendered = stats.render()
        assert "confidence histogram" in rendered

    def test_topics_cached_until_growth(self, built_nous):
        g1 = built_nous._topic_annotated_graph()
        g2 = built_nous._topic_annotated_graph()
        assert g1 is g2
        built_nous.kb.add_fact("DJI", "partnerOf", "GoPro", curated=False,
                               confidence=0.5, source="test")
        g3 = built_nous._topic_annotated_graph()
        assert g3 is not g1


class TestDynamicKnowledgeGraph:
    def test_accept_fact_updates_both_views(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, window=CountWindow(size=10), min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, timestamp=1.0)
        assert kb.store.get("DJI", "partnerOf", "GoPro") is not None
        assert dkg.window.window_size == 1
        assert dkg.miner.window_size == 1

    def test_window_eviction_updates_miner(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, window=CountWindow(size=2), min_support=1)
        for i, t in enumerate(["GoPro", "Parrot_SA", "Intel"]):
            dkg.accept_fact(make_mapped("DJI", "partnerOf", t), 0.7, float(i))
        assert dkg.window.window_size == 2
        assert dkg.miner.window_size == 2
        # KB keeps everything (facts are persistent)
        assert len(kb.store.match(subject="DJI", predicate="partnerOf")) == 3

    def test_miner_sees_types(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, 1.0)
        patterns = list(dkg.miner.supports())
        assert any("Company" in p.describe() for p in patterns)

    def test_trending_report(self):
        kb = build_drone_kb()
        dkg = DynamicKnowledgeGraph(kb, min_support=1)
        dkg.accept_fact(make_mapped("DJI", "partnerOf", "GoPro"), 0.7, 1.0)
        report = dkg.trending_report(timestamp=1.0)
        assert report.window_edges == 1
        assert report.closed_frequent

    @pytest.mark.parametrize("window_factory", [
        lambda: CountWindow(size=3),
        lambda: TimeWindow(span=2.5),
    ])
    def test_accept_batch_matches_sequential(self, window_factory):
        """Doomed-fact skipping must leave window content, miner supports
        and trending identical to the sequential path — for both window
        policies, including facts expiring mid-batch."""
        targets = ["GoPro", "Parrot_SA", "Intel", "Amazon", "Qualcomm", "Google"]
        facts = [
            (make_mapped("DJI", "partnerOf", t), 0.7, float(i))
            for i, t in enumerate(targets)
        ]
        seq = DynamicKnowledgeGraph(
            build_drone_kb(), window=window_factory(), min_support=1
        )
        for mapped, conf, ts in facts:
            seq.accept_fact(mapped, conf, ts)
        bat = DynamicKnowledgeGraph(
            build_drone_kb(), window=window_factory(), min_support=1
        )
        streamed = bat.accept_batch(facts)
        assert streamed < len(facts), "batch should skip doomed facts"

        assert bat.kb.num_facts == seq.kb.num_facts
        assert sorted(
            (t.timestamp, t.src, t.label, t.dst)
            for t in bat.window.window_edges()
        ) == sorted(
            (t.timestamp, t.src, t.label, t.dst)
            for t in seq.window.window_edges()
        )
        assert {
            p.describe(): s for p, s in bat.miner.supports().items()
        } == {p.describe(): s for p, s in seq.miner.supports().items()}
        bat_report = bat.trending_report(timestamp=5.0)
        seq_report = seq.trending_report(timestamp=5.0)
        assert bat_report.window_edges == seq_report.window_edges
        assert [
            (p.describe(), s) for p, s in bat_report.closed_frequent
        ] == [(p.describe(), s) for p, s in seq_report.closed_frequent]


class TestStatisticsHelpers:
    def test_empty_kb(self):
        from repro.kb import KnowledgeBase
        stats = compute_statistics(KnowledgeBase())
        assert stats.num_facts == 0
        assert stats.mean_extracted_confidence == 0.0
        assert stats.render()  # must not crash on empty histogram


class TestBatchIngestion:
    """ingest_batch must match the sequential path's observable state."""

    def _articles(self):
        from types import SimpleNamespace

        return [
            SimpleNamespace(
                text="GoPro partnered with DJI in June 2015.",
                doc_id="a", date=parse_date("2015-06-10"), source="wsj",
            ),
            SimpleNamespace(  # no extractable triples
                text="And furthermore, the weather was pleasant.",
                doc_id="b", date=None, source="wsj",
            ),
            SimpleNamespace(
                text="Intel partnered with PrecisionHawk in July 2015.",
                doc_id="c", date=parse_date("2015-07-02"), source="wsj",
            ),
        ]

    def _config(self):
        return NousConfig(
            window_size=50, min_support=2, lda_iterations=5, retrain_every=0
        )

    def test_batch_matches_sequential_including_empty_docs(self):
        seq = Nous(config=self._config())
        for a in self._articles():
            seq.ingest(a.text, doc_id=a.doc_id, date=a.date, source=a.source)
        bat = Nous(config=self._config())
        results = bat.ingest_batch(self._articles())

        assert [r.doc_id for r in results] == ["a", "b", "c"]
        assert bat.documents_ingested == seq.documents_ingested == 3
        assert bat.kb.num_facts == seq.kb.num_facts
        # Triple-less documents must not consume a stream timestamp:
        # windowed facts carry identical timestamps on both paths.
        seq_rows = sorted(
            (t.timestamp, t.src, t.label, t.dst)
            for t in seq.dynamic.window.window_edges()
        )
        bat_rows = sorted(
            (t.timestamp, t.src, t.label, t.dst)
            for t in bat.dynamic.window.window_edges()
        )
        assert bat_rows == seq_rows

    def test_empty_batch_is_a_noop(self):
        nous = Nous(config=self._config())
        assert nous.ingest_batch([]) == []
        assert nous.documents_ingested == 0

    def test_batch_repeated_fact_counts_as_known(self):
        """A fact accepted earlier in the same batch feeds the agreement
        (not contradiction) trust signal, as in the sequential path."""
        from types import SimpleNamespace

        doubled = [
            SimpleNamespace(
                text="GoPro partnered with DJI in June 2015.",
                doc_id=f"d{i}", date=parse_date("2015-06-10"), source="wsj",
            )
            for i in range(2)
        ]
        seq = Nous(config=self._config())
        for a in doubled:
            seq.ingest(a.text, doc_id=a.doc_id, date=a.date, source=a.source)
        bat = Nous(config=self._config())
        bat.ingest_batch(doubled)
        assert bat.estimator.source_trust.trust("wsj") == pytest.approx(
            seq.estimator.source_trust.trust("wsj")
        )
