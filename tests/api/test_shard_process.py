"""Subprocess-shard lifecycle: supervision, crash surfacing, cleanup.

The process-shard cluster owns real child processes, so its failure
modes are a superset of the in-process cluster's.  Pinned here:

- **Crash mid-flight** — killing a worker turns subsequent operations
  against it into a *structured* ``ClusterError`` (``cluster`` taxonomy
  code on the envelope) naming the shard and its exit, while the router
  keeps answering what it can: path queries merge the surviving shards,
  ``cluster_info``/``dead_shards`` report the casualty, and advisory
  reads (composite stamp) degrade to the last healthy value instead of
  exploding health endpoints.
- **Startup paths** — a worker that cannot bind its port (collision) or
  never announces fails ``start()`` with a structured error carrying
  the worker's stderr, and the half-started siblings are reaped.
- **No orphans** — after ``close()``/``stop()`` (and the startup
  failure paths) every spawned ``nous serve`` process is dead and
  reaped; nothing outlives the test session.
- **Keep-alive policy** — the gateway refuses configurations whose
  heartbeat cannot beat the idle deadline (a quiet stream must never be
  torn down by its own keepalive schedule), and the shard stream's
  heartbeat respects the default deadline.
"""

from __future__ import annotations

import socket

import pytest

from repro import IngestRequest, NousConfig, ServiceConfig, ShardedNousService
from repro.api.cluster import ShardProcessManager
from repro.api.cluster.remote import SHARD_STREAM_HEARTBEAT
from repro.api.envelopes import (
    ApiError,
    error_from_exception,
    exception_from_error,
)
from repro.api.http import GatewayConfig, status_for_error
from repro.errors import ClusterError, ConfigError, QAError, ReproError

CONFIG = NousConfig(window_size=100, min_support=2, lda_iterations=5, seed=3)


def _worker_pids(cluster):
    return [worker.pid for worker in cluster._manager.workers]


def _assert_all_reaped(pids_or_manager):
    workers = (
        pids_or_manager.workers
        if isinstance(pids_or_manager, ShardProcessManager)
        else None
    )
    assert workers is not None
    for worker in workers:
        assert worker.returncode is not None, (
            f"worker pid {worker.pid} leaked past shutdown"
        )


class TestCrashDetection:
    @pytest.fixture()
    def cluster(self):
        cluster = ShardedNousService(
            num_shards=2,
            config=CONFIG,
            service_config=ServiceConfig(auto_start=False),
            shard_mode="process",
            kb_spec="empty",
        )
        yield cluster
        cluster.close()

    def _kill_shard(self, cluster, index):
        worker = cluster._manager.workers[index]
        worker.process.kill()
        worker.process.wait(timeout=10)
        assert not cluster.shards[index].alive

    def test_crash_mid_ingest_surfaces_structured_error(self, cluster):
        assert cluster.ingest_facts(
            [("HubA", "linksTo", "SpokeA")], date="2015-06-01"
        ).ok
        self._kill_shard(cluster, 0)
        # find a fact routed to the dead shard
        subject = next(
            f"Entity{i}"
            for i in range(64)
            if cluster.router.shard_for_entity(f"Entity{i}") == 0
        )
        response = cluster.ingest_facts([(subject, "linksTo", "X")])
        assert not response.ok
        assert response.error.code == "cluster"
        assert "shard 0" in response.error.message
        assert "exited" in response.error.message
        assert status_for_error(response.error.code) == 502

    def test_crash_surfaces_on_query_and_router_reports_dead_shard(
        self, cluster
    ):
        # home two connected facts on shard 1 so path answers survive
        subject = next(
            f"Hub{i}"
            for i in range(64)
            if cluster.router.shard_for_entity(f"Hub{i}") == 1
        )
        assert cluster.ingest_facts(
            [(subject, "linksTo", "Leaf"), ("Leaf", "linksTo", "Deep")],
            date="2015-06-01",
        ).ok
        self._kill_shard(cluster, 0)

        # non-path query classes need every shard: structured failure
        response = cluster.query(f"tell me about {subject}")
        assert not response.ok
        assert response.error.code == "cluster"

        # path queries exclude the dead shard and merge the survivors
        path = cluster.query(f"how is {subject} related to Deep")
        assert path.ok, path.error
        assert path.payload["paths"]

        # the router reports the casualty
        assert cluster.dead_shards() == [0]
        info = cluster.cluster_info()
        assert info["dead_shards"] == [0]
        # the dead shard's counters freeze at the last healthy reading
        assert info["documents_ingested"][0] is not None
        assert info["workers"][0]["alive"] is False
        # surviving shards' placement is still accounted
        assert sum(info["partition"]["edge_counts"]) >= 2

    def test_advisory_reads_degrade_instead_of_raising(self, cluster):
        assert cluster.ingest_facts(
            [("HubA", "linksTo", "SpokeA")], date="2015-06-01"
        ).ok
        before = cluster.kg_version
        assert before > 0
        self._kill_shard(cluster, 0)
        # composite stamp freezes the dead component (monotonicity for
        # heartbeats/health) rather than raising
        assert cluster.kg_version == before
        assert cluster.shard_versions == tuple(
            shard.kg_version for shard in cluster.shards
        )

    def test_ingest_to_dead_shard_raises_structured_error(self, cluster):
        self._kill_shard(cluster, 1)
        doc_id = next(
            f"doc-{i}"
            for i in range(64)
            if cluster.router.shard_for_document("no known mention", f"doc-{i}")[0]
            == 1
        )
        with pytest.raises(ClusterError, match="shard 1"):
            cluster.submit_many(
                [IngestRequest(text="no known mention", doc_id=doc_id)]
            )


class TestStartupPaths:
    def test_port_collision_fails_start_with_stderr_detail(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            manager = ShardProcessManager(
                1, "empty", config=CONFIG, ports=[port], startup_timeout=30.0
            )
            with pytest.raises(ClusterError) as excinfo:
                manager.start()
            message = str(excinfo.value)
            assert "shard 0" in message
            assert "Address already in use" in message
            _assert_all_reaped(manager)
        finally:
            blocker.close()

    def test_startup_timeout_kills_worker(self):
        manager = ShardProcessManager(
            1, "empty", config=CONFIG, startup_timeout=0.01
        )
        with pytest.raises(ClusterError, match="did not announce"):
            manager.start()
        _assert_all_reaped(manager)

    def test_bad_kb_spec_fails_fast(self):
        with pytest.raises(ConfigError, match="unknown kb spec"):
            ShardProcessManager(1, "no-such-spec")
        with pytest.raises(ConfigError):
            ShardedNousService(shard_mode="process", kb_spec=None)
        with pytest.raises(ConfigError):
            ShardedNousService(
                shard_mode="process", kb_spec="empty", kb_factory=dict
            )

    def test_no_orphans_after_close(self):
        cluster = ShardedNousService(
            num_shards=2,
            config=CONFIG,
            service_config=ServiceConfig(auto_start=False),
            shard_mode="process",
            kb_spec="empty",
        )
        manager = cluster._manager
        pids = _worker_pids(cluster)
        assert len(pids) == 2
        assert all(worker.alive for worker in manager.workers)
        cluster.close()
        _assert_all_reaped(manager)
        # close() is idempotent, stop() too
        cluster.close()
        manager.stop()


class TestErrorRoundTrip:
    """``exception_from_error`` must invert ``error_from_exception`` —
    what makes remote-shard error envelopes byte-identical to local
    ones."""

    @pytest.mark.parametrize(
        "exc",
        [
            QAError("no topic path found"),
            ClusterError("shard 1 (pid 42) exited with code -9"),
            ReproError("plain failure"),
        ],
    )
    def test_round_trip_preserves_code_message_exception(self, exc):
        error = error_from_exception(exc)
        rebuilt = exception_from_error(error)
        assert type(rebuilt) is type(exc)
        assert error_from_exception(rebuilt) == error

    def test_unknown_exception_name_falls_back_to_taxonomy(self):
        error = ApiError(code="qa", message="gone", exception="NotAClass")
        rebuilt = exception_from_error(error)
        assert isinstance(rebuilt, QAError)
        assert str(rebuilt) == "gone"

    def test_unknown_code_falls_back_to_repro_error(self):
        error = ApiError(code="http.not_found", message="nope", exception="")
        rebuilt = exception_from_error(error)
        assert type(rebuilt) is ReproError


class TestShardRouteValidation:
    """Malformed ``/v1/shard/*`` bodies must answer structured 400s,
    never crash the handler thread (which would drop the connection
    with no response at all)."""

    @pytest.fixture()
    def gateway_client(self):
        from repro import NousService
        from repro.api.http import ClientSession, GatewayConfig, NousGateway
        from repro.kb.knowledge_base import KnowledgeBase

        service = NousService(
            kb=KnowledgeBase(),
            config=CONFIG,
            service_config=ServiceConfig(auto_start=False),
        )
        gateway = NousGateway(service, GatewayConfig(port=0)).start()
        with ClientSession(gateway.url) as client:
            yield client
        gateway.close()
        service.close()

    @pytest.mark.parametrize(
        "body",
        [
            {"facts": [["only", "two"]]},
            {"facts": [None]},
            {"facts": "not-a-list"},
            {"facts": [["s", "p", "o"]], "confidence": "high"},
            {},
        ],
    )
    def test_malformed_ingest_facts_is_400(self, gateway_client, body):
        status, data = gateway_client.request(
            "POST", "/v1/shard/ingest_facts", body
        )
        assert status == 400
        assert data["error"]["code"] == "http.bad_request"

    def test_well_formed_ingest_facts_succeeds(self, gateway_client):
        status, data = gateway_client.request(
            "POST",
            "/v1/shard/ingest_facts",
            {"facts": [["HubA", "linksTo", "SpokeA"]], "date": "2015-06-01"},
        )
        assert status == 200
        assert data["ok"] and data["payload"]["accepted"] == 1

    def test_malformed_submit_is_400(self, gateway_client):
        status, data = gateway_client.request(
            "POST", "/v1/shard/submit", {"documents": "nope"}
        )
        assert status == 400
        assert data["error"]["code"] == "http.bad_request"

    def test_oversized_submit_batch_is_413(self, gateway_client):
        documents = [
            {"text": "tiny", "doc_id": f"d{i}"} for i in range(1025)
        ]
        status, data = gateway_client.request(
            "POST", "/v1/shard/submit", {"documents": documents}
        )
        assert status == 413
        assert data["error"]["code"] == "http.payload_too_large"


class TestKeepAlivePolicy:
    """Long-lived shard connections: the heartbeat must beat the idle
    deadline, or the stream's own keepalive schedule kills it."""

    def test_heartbeat_must_beat_idle_timeout(self):
        with pytest.raises(ConfigError, match="heartbeat_interval"):
            GatewayConfig(heartbeat_interval=5.0, idle_timeout=4.0).validate()
        with pytest.raises(ConfigError, match="heartbeat_interval"):
            GatewayConfig(
                heartbeat_interval=10.0, idle_timeout=10.0
            ).validate()
        GatewayConfig(heartbeat_interval=5.0, idle_timeout=120.0).validate()

    def test_default_config_is_self_consistent(self):
        config = GatewayConfig()
        config.validate()
        assert config.heartbeat_interval < config.idle_timeout

    def test_shard_stream_heartbeat_beats_default_idle_deadline(self):
        assert SHARD_STREAM_HEARTBEAT < GatewayConfig().idle_timeout
