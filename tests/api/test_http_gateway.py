"""The HTTP gateway: envelope fidelity, error paths, streaming push and
concurrency (the contract documented in docs/API.md)."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import (
    CorpusConfig,
    IngestRequest,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.http import (
    ClientSession,
    GatewayConfig,
    HTTP_STATUS_BY_CODE,
    NousGateway,
    status_for_error,
)
from repro.api.wire import decode_payload, delta_rows, row_key
from repro.errors import ReproError

SEED = 3
N_ARTICLES = 12


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def service():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=SEED)
    )
    generate_descriptions(kb, seed=SEED)
    with NousService(kb=kb, config=NousConfig(window_size=400, seed=SEED)) as svc:
        svc.submit_many(articles)
        svc.flush()
        yield svc


@pytest.fixture(scope="module")
def gateway(service):
    config = GatewayConfig(max_body_bytes=64 * 1024, heartbeat_interval=0.2)
    with NousGateway(service, config) as gw:
        yield gw


@pytest.fixture()
def client(gateway):
    with ClientSession(gateway.url, timeout=30.0) as session:
        yield session


def _raw_request(gateway, method, path, body=None, headers=None):
    """A request bypassing ClientSession, for malformed-input tests."""
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestStatusTable:
    def test_every_taxonomy_code_is_mapped(self):
        from repro.api.envelopes import _ERROR_TAXONOMY

        for _exc_type, code in _ERROR_TAXONOMY:
            assert code in HTTP_STATUS_BY_CODE

    def test_prefix_fallback(self):
        assert status_for_error("query.parse") == 400
        assert status_for_error("query.plan") == 422  # inherits "query"
        assert status_for_error("made.up.code") == 500


class TestHealthAndStats:
    def test_healthz_exposes_queue_state(self, client, service):
        health = client.healthz()
        assert health["ok"] is True
        assert health["status"] == "serving"
        assert health["kg_version"] == service.nous.dynamic.version
        assert health["documents_ingested"] >= N_ARTICLES
        assert "pending" in health and "batches_drained" in health

    def test_stats_envelope_round_trips(self, client, service):
        envelope = client.statistics()
        assert envelope.ok and envelope.kind == "statistics"
        remote = decode_payload("statistics", envelope.payload)
        local = service.statistics()
        assert remote == decode_payload("statistics", local.payload)


class TestQueryRoundTrip:
    """The acceptance property: remote results compare equal to
    in-process results for every query payload type."""

    @pytest.mark.parametrize(
        "text",
        [
            "tell me about DJI",                               # entity
            "what's new with DJI",                             # entity-trend
            "how is DJI related to Amazon",                    # relationship
            "why is DJI related to Amazon",                    # explanatory
            "match (?a:Company)-[acquired]->(?b:Company)",     # pattern
        ],
    )
    def test_pure_kinds_equal_in_process(self, client, service, text):
        kind, remote_payload = client.query_decoded(text)
        local = service.query(text).raise_for_error()
        assert local.kind == kind
        assert remote_payload == decode_payload(kind, local.payload)

    def test_trending_equals_in_process(self, client, service):
        # Trending is stateful (transition deltas are consumed on read):
        # burn the pending transitions, then compare two steady-state
        # reads with no ingest in between.
        service.query("show trending patterns").raise_for_error()
        kind, remote_payload = client.query_decoded("show trending patterns")
        local = service.query("show trending patterns").raise_for_error()
        assert kind == "trending"
        assert remote_payload == decode_payload(kind, local.payload)

    def test_envelope_metadata_faithful(self, client, service):
        envelope = client.query("tell me about DJI")
        assert envelope.ok
        assert envelope.kg_version == service.nous.dynamic.version
        assert envelope.api_version == "1"


class TestIngest:
    def test_wait_ingest_returns_ingest_envelope(self, client, service):
        before = service.nous.documents_ingested
        envelope = client.ingest(
            "DJI acquired SkyPixel in March 2015.",
            doc_id="http-1",
            date="2015-03-02",
            source="test",
        )
        assert envelope.ok and envelope.kind == "ingest"
        assert envelope.payload["doc_id"] == "http-1"
        assert envelope.payload["raw_triples"] >= 1
        assert service.nous.documents_ingested == before + 1
        # The full IngestResult survives the wire.
        result = decode_payload("ingest", envelope.payload)
        assert result.doc_id == "http-1"

    def test_ticket_flow(self, client):
        ticket = client.submit(
            "Amazon uses drones for package delivery.", doc_id="http-2"
        )
        assert ticket.kind == "ticket"
        assert ticket.payload["done"] is False
        ticket_id = ticket.payload["ticket_id"]
        assert ticket.payload["href"] == f"/v1/ingest/{ticket_id}"

        def drained():
            return client.ticket(ticket_id).kind == "ingest"

        assert _wait_until(drained, timeout=30.0)
        final = client.ticket(ticket_id)
        assert final.ok and final.payload["doc_id"] == "http-2"

    def test_bad_date_maps_to_400(self, client):
        envelope = client.ingest(
            "Some drone news.", doc_id="http-3", date="not a date"
        )
        assert not envelope.ok
        assert envelope.error.code == "config"
        assert status_for_error(envelope.error.code) == 400


class TestErrorPaths:
    def test_malformed_json_body(self, gateway):
        status, body = _raw_request(
            gateway, "POST", "/v1/query", body=b"{not json",
            headers={"Content-Length": "9"},
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_json"

    def test_non_object_json_body(self, gateway):
        status, body = _raw_request(
            gateway, "POST", "/v1/query", body=b"[1, 2]",
            headers={"Content-Length": "6"},
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_json"

    def test_missing_content_length(self, gateway):
        conn = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=30.0
        )
        try:
            conn.putrequest("POST", "/v1/query")
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["code"] == "http.bad_request"

    def test_unknown_route(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "http.not_found"

    def test_wrong_method(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/query")
        assert status == 405
        assert body["error"]["code"] == "http.method_not_allowed"

    def test_oversized_payload_rejected_unread(self, gateway):
        huge = json.dumps({"text": "x" * (2 * 64 * 1024)}).encode()
        status, body = _raw_request(
            gateway, "POST", "/v1/query", body=huge,
            headers={"Content-Length": str(len(huge))},
        )
        assert status == 413
        assert body["error"]["code"] == "http.payload_too_large"

    def test_query_missing_text_field(self, gateway):
        raw = json.dumps({"nope": 1}).encode()
        status, body = _raw_request(
            gateway, "POST", "/v1/query", body=raw,
            headers={"Content-Length": str(len(raw))},
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_request"

    def test_query_parse_error_envelope(self, client):
        envelope = client.query("gibberish blargh")
        assert not envelope.ok
        assert envelope.error.code == "query.parse"
        assert status_for_error(envelope.error.code) == 400

    def test_unread_body_does_not_desync_keep_alive(self, gateway):
        # A POST whose body is never read (unknown route) must not
        # leave those bytes in the socket to be parsed as the next
        # keep-alive request — the server closes the connection.
        body = json.dumps({"text": "tell me about DJI"}).encode()
        conn = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=30.0
        )
        try:
            conn.request(
                "POST", "/v1/nope", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 404
            assert payload["error"]["code"] == "http.not_found"
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()
        # A session-level client transparently reconnects and stays
        # coherent after hitting such an error.
        with ClientSession(gateway.url, timeout=30.0) as session:
            status, data = session.request("POST", "/v1/nope", {"x": 1})
            assert status == 404
            assert session.query("tell me about DJI").ok

    def test_negative_content_length(self, gateway):
        # A negative length must not become rfile.read(-1) (read to
        # EOF), which would hang the handler thread forever.
        status, body = _raw_request(
            gateway, "POST", "/v1/query", body=b"{}",
            headers={"Content-Length": "-1"},
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_request"

    def test_unknown_ticket(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/ingest/999999")
        assert status == 404
        assert body["error"]["code"] == "http.not_found"

    def test_subscribe_without_query(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/subscribe")
        assert status == 400
        assert body["error"]["code"] == "http.bad_request"

    def test_subscribe_bad_query_rejected_before_streaming(self, client):
        with pytest.raises(ReproError, match="query.parse"):
            client.subscribe("gibberish blargh")

    @pytest.mark.parametrize("param", ["heartbeat=inf", "heartbeat=nan",
                                       "max_seconds=inf", "heartbeat=abc"])
    def test_subscribe_rejects_non_finite_params(self, gateway, param):
        # inf/nan would disable heartbeats — and with them dead-client
        # detection — so they are refused like non-numeric values.
        status, body = _raw_request(
            gateway, "GET", f"/v1/subscribe?q=show+trending+patterns&{param}"
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_request"


class TestSubscribeStream:
    PATTERN = "match (?a:Company)-[acquired]->(?b:Company)"

    def test_deltas_replay_to_current_rows(self, client, service):
        frames = []
        stop = threading.Event()
        stream = client.subscribe(self.PATTERN, heartbeat=0.1, timeout=30.0)

        def reader():
            for frame in stream:
                frames.append(frame)
                if stop.is_set():
                    break

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        assert _wait_until(lambda: len(frames) >= 1)
        assert frames[0]["event"] == "subscribed"
        assert frames[0]["query_text"] == self.PATTERN

        # Feed an acquisition between two KB companies so the standing
        # pattern query gains a row.
        client.ingest(
            "DJI acquired Parrot SA in June 2016.",
            doc_id="sub-1", date="2016-06-10", source="test",
        )
        assert _wait_until(
            lambda: any(f["event"] == "update" for f in frames), timeout=30.0
        )
        stop.set()
        stream.close()
        thread.join(timeout=5.0)

        # Replay added/removed deltas: the final set must equal a fresh
        # evaluation (zero dropped frames).
        rows = {}
        baseline = None
        for frame in frames:
            if frame["event"] == "subscribed":
                baseline = frame["baseline_rows"]
            if frame["event"] != "update":
                continue
            for row in frame["removed"]:
                rows.pop(row_key(row), None)
            for row in frame["added"]:
                rows[row_key(row)] = row
        assert baseline == 0 or baseline is not None
        local = service.query(self.PATTERN).raise_for_error()
        expected = delta_rows("pattern", decode_payload("pattern", local.payload))
        replayed = {row_key(r) for r in rows.values()}
        # The baseline rows (present at subscribe time) never appear as
        # deltas; replayed rows must be exactly the post-subscribe adds.
        assert replayed <= set(expected.keys())
        assert any("DJI" in key and "Parrot" in key for key in replayed)

    def test_heartbeats_flow_while_idle(self, client):
        with client.subscribe(
            "show trending patterns",
            heartbeat=0.05,
            include_heartbeats=True,
            timeout=30.0,
        ) as stream:
            frames = [next(stream) for _ in range(3)]
        assert frames[0]["event"] == "subscribed"
        assert all(f["event"] == "heartbeat" for f in frames[1:])
        assert all("kg_version" in f for f in frames[1:])

    def test_max_seconds_ends_stream_cleanly(self, client):
        with client.subscribe(
            "show trending patterns", max_seconds=0.3, timeout=30.0
        ) as stream:
            frames = list(stream)
        assert frames[0]["event"] == "subscribed"
        assert frames[-1]["event"] == "bye"
        assert frames[-1]["reason"] == "max_seconds"

    def test_disconnect_detaches_subscription(self, client, service):
        before = service.subscription_count
        stream = client.subscribe(
            "show trending patterns", heartbeat=0.05, timeout=30.0
        )
        assert next(stream)["event"] == "subscribed"
        assert service.subscription_count == before + 1
        # Abrupt client-side disconnect: the server must notice at a
        # heartbeat write and detach — a dead client never stalls the
        # drainer.
        stream.close()
        assert _wait_until(
            lambda: service.subscription_count == before, timeout=10.0
        )
        # Ingestion still flows after the detach.
        assert client.ingest("Amazon tests drone delivery.", doc_id="post").ok


class TestLifecycle:
    def test_close_without_start_returns(self, service):
        # close() on a never-started gateway must not deadlock waiting
        # for a serve loop that never ran (and must release the socket).
        gw = NousGateway(service)
        port = gw.port
        gw.close()
        gw2 = NousGateway(service, GatewayConfig(port=port))
        gw2.close()

    def test_requests_refused_with_503_while_closing(self, service):
        with NousGateway(service) as gw:
            with ClientSession(gw.url, timeout=10.0) as session:
                assert session.healthz()["ok"]
                gw.closing.set()
                status, body = _raw_request(gw, "GET", "/v1/healthz")
                assert status == 503
                assert body["error"]["code"] == "http.unavailable"


class TestConcurrency:
    def test_hammer_ingest_and_query(self, gateway, service):
        """N threads of mixed ingest+query traffic must serialise
        through the service without deadlock or failures."""
        n_threads, rounds = 8, 4
        errors = []
        oks = []

        def worker(worker_id):
            try:
                with ClientSession(gateway.url, timeout=60.0) as session:
                    for round_no in range(rounds):
                        envelope = session.ingest(
                            f"DJI announced product {worker_id}-{round_no}.",
                            doc_id=f"hammer-{worker_id}-{round_no}",
                            source="hammer",
                        )
                        oks.append(envelope.ok)
                        answer = session.query("tell me about DJI")
                        oks.append(answer.ok)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(thread.is_alive() for thread in threads), "deadlock"
        assert not errors
        assert all(oks) and len(oks) == n_threads * rounds * 2
        # The queue fully drained and the service is still healthy.
        service.flush(timeout=60.0)
        assert service.pending_count == 0
        assert service.query("tell me about DJI").ok
