"""Sharded-vs-monolith equivalence: the scatter-gather contract.

Three layers, weakest assumptions last:

- **Single shard is the monolith** — ``ShardedNousService(N=1)`` must
  answer *byte-for-byte* like a ``NousService`` on the same corpus, for
  every query class, statistics included.  This pins the merge
  assembly itself (renderers, top-k direction, support summation,
  curated-once statistics) with zero partitioning noise.
- **Structured star corpora** (hypothesis) — random star-shaped fact
  sets whose pattern embeddings are co-located by construction: every
  query class must be *set-equal* between N ∈ {1..4} shards and the
  monolith, trending supports exactly.
- **Text corpora** (hypothesis) — random simple-sentence documents over
  curated entities, ingested through the full NLP pipeline one
  micro-batch per document; entity / entity-trend / pattern answers
  must be set-equal up to ranking scores (confidences drift with
  source-trust order, which is partition-dependent by design).

Every layer runs in **both shard modes**: ``local`` (in-process
``NousService`` shards) and ``process`` (``nous serve`` worker
subprocesses behind ``RemoteShardClient``) — the wire transport must
not change a single merged answer.  Process-mode hypothesis runs draw
fewer examples (each example spawns real subprocesses); the merge
logic itself is pinned at full depth by the local runs, so the process
runs only need to cover the transport.

Run under ``PYTHONHASHSEED=0`` (the CI ``shards`` /
``process-shards`` jobs do) for reproducible counterexamples.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    NousConfig,
    NousService,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
)
from repro.api.wire import decode_payload
from repro.kb.knowledge_base import KnowledgeBase

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Each process-mode example spawns num_shards worker subprocesses;
# fewer examples keep the suite's wall clock sane while still smoking
# the wire transport end to end.
_PROCESS_SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SHARD_MODES = ("local", "process")

#: Worker subprocesses hash deterministically (PYTHONHASHSEED pinned by
#: ShardProcessManager), but the *monolith* they are compared against
#: runs in this interpreter.  Comparisons that are sensitive to
#: cross-interpreter iteration order (byte-identical envelopes, path
#: ranking) therefore need this process pinned too — exactly why the
#: golden driver runs under PYTHONHASHSEED=0.  Set-equality checks are
#: order-robust and run regardless.
_HASH_PINNED = os.environ.get("PYTHONHASHSEED", "random") != "random"


def _require_pinned_hashseed(shard_mode):
    if shard_mode == "process" and not _HASH_PINNED:
        pytest.skip(
            "cross-interpreter identity comparisons need PYTHONHASHSEED "
            "set (the CI shards/process-shards jobs pin 0)"
        )


def _make_cluster(shard_mode, kb_spec, num_shards, config, service_config):
    """A cluster over the named curated base, in either shard mode
    (``kb_spec`` resolves identically on workers and in-process)."""
    return ShardedNousService(
        num_shards=num_shards,
        config=config,
        service_config=service_config,
        shard_mode=shard_mode,
        kb_spec=kb_spec,
    )


def _structured_config() -> NousConfig:
    # Window far larger than any generated corpus: shard windows and the
    # monolith window then hold identical content (count-window eviction
    # is the one partition-dependent effect we exclude on purpose; the
    # stress/golden suites cover evicting windows).
    return NousConfig(window_size=10_000, min_support=2, seed=3)


def _service_config() -> ServiceConfig:
    return ServiceConfig(auto_start=False)


def _trending_set(envelope):
    report = decode_payload("trending", envelope.payload)
    return {(p.describe(), s) for p, s in report.closed_frequent}


def _entity_fact_keys(envelope):
    summary = decode_payload("entity", envelope.payload)
    return {(s, p, o, curated) for s, p, o, _conf, curated in summary.facts}


def _trend_keys(envelope):
    rows = decode_payload("entity-trend", envelope.payload)
    return {(ts, s, p, o) for ts, s, p, o, _conf in rows}


def _match_set(envelope):
    matches = decode_payload("pattern", envelope.payload)
    return {tuple(sorted(m.items())) for m in matches}


# ---------------------------------------------------------------------------
# structured star corpora
# ---------------------------------------------------------------------------

star_corpus = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6),   # spokes per hub
        st.integers(min_value=1, max_value=3),   # distinct predicates
    ),
    min_size=1,
    max_size=5,
)


def _star_facts(shape):
    """Star-shaped facts: hub ``h`` emits ``spokes`` facts over its own
    predicate alphabet.  Facts sharing a node always share their hub
    subject, so routing by subject co-locates every pattern embedding
    (and every node binding) on one shard — the regime where summed MNI
    supports are exact."""
    facts = []
    for h, (spokes, preds) in enumerate(shape):
        for j in range(spokes):
            facts.append((f"Hub{h}", f"rel{h}x{j % preds}", f"Spoke{h}x{j}"))
    return facts


class TestStructuredEquivalence:
    @_SETTINGS
    @given(shape=star_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_every_query_class_set_equal(self, shape, num_shards):
        self._check(shape, num_shards, "local")

    @_PROCESS_SETTINGS
    @given(shape=star_corpus, num_shards=st.integers(min_value=1, max_value=3))
    def test_every_query_class_set_equal_process_shards(
        self, shape, num_shards
    ):
        self._check(shape, num_shards, "process")

    def _check(self, shape, num_shards, shard_mode):
        facts = _star_facts(shape)
        mono = NousService(
            kb=KnowledgeBase(),
            config=_structured_config(),
            service_config=_service_config(),
        )
        cluster = _make_cluster(
            shard_mode,
            "empty",
            num_shards,
            _structured_config(),
            _service_config(),
        )
        try:
            assert mono.ingest_facts(facts, date="2015-06-01").ok
            assert cluster.ingest_facts(facts, date="2015-06-01").ok

            # statistics first: entity queries below *mint* the queried
            # mention on shards that never saw it (the monolith's
            # documented unknown-mention behaviour, once per shard),
            # which would legitimately skew entity counts afterwards.
            mono_stats = mono.statistics().payload
            cluster_stats = cluster.statistics().payload
            for key in (
                "num_facts",
                "num_entities",
                "curated_facts",
                "extracted_facts",
                "confidence_histogram",
                "facts_per_predicate",
                "facts_per_source",
                "entities_per_type",
            ):
                assert cluster_stats[key] == mono_stats[key], key

            # trending: closed frequent patterns with exact supports
            assert _trending_set(
                cluster.query("show trending patterns")
            ) == _trending_set(mono.query("show trending patterns"))

            hubs = sorted({s for s, _p, _o in facts})
            predicates = sorted({p for _s, p, _o in facts})
            for hub in hubs:
                # entity: union + dedupe fact sets
                assert _entity_fact_keys(
                    cluster.query(f"tell me about {hub}")
                ) == _entity_fact_keys(mono.query(f"tell me about {hub}"))
                # entity-trend: window rows about the hub
                assert _trend_keys(
                    cluster.query(f"what's new about {hub}")
                ) == _trend_keys(mono.query(f"what's new about {hub}"))
            for predicate in predicates:
                # pattern: binding rows (embeddings are shard-local for
                # stars, so the union is the monolith's match set)
                assert _match_set(
                    cluster.query(f"match (?a)-[{predicate}]->(?b)")
                ) == _match_set(mono.query(f"match (?a)-[{predicate}]->(?b)"))
        finally:
            mono.close()
            cluster.close()


# ---------------------------------------------------------------------------
# text corpora through the full NLP pipeline
# ---------------------------------------------------------------------------

_COMPANIES = [
    "DJI", "GoPro", "Intel", "Amazon", "Google", "Boeing",
    "AeroVironment", "CyPhy_Works",
]
_VERBS = ["acquired", "partnered with"]

text_corpus = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_COMPANIES) - 1),  # subject
        st.integers(min_value=0, max_value=len(_COMPANIES) - 1),  # object
        st.integers(min_value=0, max_value=len(_VERBS) - 1),      # verb
    ),
    min_size=2,
    max_size=10,
)


def _render_docs(pairs):
    """One simple SVO document per drawn pair (self-loops skipped).

    Mentions are exact curated names, so linking is unambiguous and no
    entities are minted — document answers then depend only on the
    document, not on which other documents share its shard.
    """
    docs = []
    for i, (s, o, v) in enumerate(pairs):
        if s == o:
            continue
        subject = _COMPANIES[s].replace("_", " ")
        object_ = _COMPANIES[o].replace("_", " ")
        docs.append(
            {
                "text": f"{subject} {_VERBS[v]} {object_}.",
                "doc_id": f"doc-{i}",
                "date": f"2015-06-{(i % 27) + 1:02d}",
                "source": "equivalence",
            }
        )
    return docs


def _text_config() -> NousConfig:
    # accept_threshold=0: source trust evolves in partition-dependent
    # order, so near-threshold confidences could gate differently per
    # sharding; with the gate open, the accepted fact *set* is exactly
    # the mapped set on any partitioning.
    return NousConfig(window_size=10_000, min_support=2,
                      accept_threshold=0.0, retrain_every=0, seed=3)


def _ingest_docs(service, docs):
    from repro.api.envelopes import IngestRequest

    tickets = service.submit_many(
        [IngestRequest.from_dict(doc) for doc in docs]
    )
    service.flush()
    for ticket in tickets:
        assert ticket.result(timeout=0).ok


class TestTextEquivalence:
    @_SETTINGS
    @given(pairs=text_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_entity_answers_partition_invariant(self, pairs, num_shards):
        self._check(pairs, num_shards, "local")

    @_PROCESS_SETTINGS
    @given(pairs=text_corpus, num_shards=st.integers(min_value=1, max_value=3))
    def test_entity_answers_partition_invariant_process_shards(
        self, pairs, num_shards
    ):
        self._check(pairs, num_shards, "process")

    def _check(self, pairs, num_shards, shard_mode):
        docs = _render_docs(pairs)
        if not docs:
            return
        # max_batch=1: collective entity linking runs per document on
        # both sides, so linking cannot depend on batch co-location.
        service_config = ServiceConfig(auto_start=False, max_batch=1)
        mono = NousService(
            kb=build_drone_kb(),
            config=_text_config(),
            service_config=service_config,
        )
        cluster = _make_cluster(
            shard_mode, "drone", num_shards, _text_config(), service_config
        )
        try:
            _ingest_docs(mono, docs)
            _ingest_docs(cluster, docs)
            mentioned = sorted(
                {_COMPANIES[s] for s, o, _v in pairs if s != o}
                | {_COMPANIES[o] for s, o, _v in pairs if s != o}
            )
            for company in mentioned:
                mention = company.replace("_", " ")
                assert _entity_fact_keys(
                    cluster.query(f"tell me about {mention}")
                ) == _entity_fact_keys(mono.query(f"tell me about {mention}"))
                assert _trend_keys(
                    cluster.query(f"what's new about {mention}")
                ) == _trend_keys(mono.query(f"what's new about {mention}"))
            for predicate in ("acquired", "partnerOf"):
                assert _match_set(
                    cluster.query(f"match (?a)-[{predicate}]->(?b)")
                ) == _match_set(mono.query(f"match (?a)-[{predicate}]->(?b)"))
            # fact totals are partition-invariant
            assert (
                cluster.statistics().payload["num_facts"]
                == mono.statistics().payload["num_facts"]
            )
        finally:
            mono.close()
            cluster.close()


class TestPathEquivalence:
    """Path answers on a corpus co-located by dominant entity.

    Every document leads with the same hub entity (mentioned twice, so
    the dominant-entity router sends all documents to one shard); the
    loaded shard is then state-identical to the monolith, and the
    merged top-k must contain the monolith's best answer with an
    equal-or-better top coherence (other shards can only contribute
    curated-graph routes).
    """

    @_SETTINGS
    @given(
        objects=st.lists(
            st.integers(min_value=1, max_value=len(_COMPANIES) - 1),
            min_size=2,
            max_size=5,
            unique=True,
        ),
        num_shards=st.integers(min_value=2, max_value=4),
    )
    def test_monolith_best_path_survives_merge(self, objects, num_shards):
        self._check(objects, num_shards, "local")

    @pytest.mark.skipif(
        not _HASH_PINNED,
        reason="cross-interpreter path ranking needs PYTHONHASHSEED set "
        "(the CI shards/process-shards jobs pin 0)",
    )
    @_PROCESS_SETTINGS
    @given(
        objects=st.lists(
            st.integers(min_value=1, max_value=len(_COMPANIES) - 1),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        num_shards=st.integers(min_value=2, max_value=3),
    )
    def test_monolith_best_path_survives_merge_process_shards(
        self, objects, num_shards
    ):
        self._check(objects, num_shards, "process")

    def _check(self, objects, num_shards, shard_mode):
        hub = _COMPANIES[0]  # DJI
        docs = [
            {
                "text": (
                    f"{hub} acquired {_COMPANIES[o].replace('_', ' ')}. "
                    f"{hub} announced record sales."
                ),
                "doc_id": f"doc-{i}",
                "date": f"2015-06-{i + 1:02d}",
                "source": "paths",
            }
            for i, o in enumerate(objects)
        ]
        service_config = ServiceConfig(auto_start=False, max_batch=1)
        mono = NousService(
            kb=build_drone_kb(),
            config=_text_config(),
            service_config=service_config,
        )
        cluster = _make_cluster(
            shard_mode, "drone", num_shards, _text_config(), service_config
        )
        try:
            _ingest_docs(mono, docs)
            _ingest_docs(cluster, docs)
            # the hub's shard received every document
            assert [c for c in cluster.documents_routed if c] == [len(docs)]
            target = _COMPANIES[objects[0]].replace("_", " ")
            query = f"how is {hub} related to {target}"
            mono_paths = decode_payload(
                "relationship", mono.query(query).payload
            )
            merged_envelope = cluster.query(query)
            merged_paths = decode_payload(
                "relationship", merged_envelope.payload
            )
            assert mono_paths and merged_paths
            merged_routes = [tuple(map(str, p.nodes)) for p in merged_paths]
            assert tuple(map(str, mono_paths[0].nodes)) in merged_routes
            assert (
                merged_paths[0].coherence
                <= mono_paths[0].coherence + 1e-9
            )
        finally:
            mono.close()
            cluster.close()


# ---------------------------------------------------------------------------
# the base case: one shard IS the monolith
# ---------------------------------------------------------------------------

class TestSingleShardIsMonolith:
    QUERIES = [
        "tell me about DJI",
        "show trending patterns",
        "what's new about DJI",
        "match (?a:Company)-[acquired]->(?b:Company)",
        "how is GoPro related to DJI",
        "why does Windermere use drones",
        "tell me about NoSuchEntity",
        "how is DJI related to Atlantis99",  # qa error on both sides
    ]

    @pytest.fixture(scope="class", params=SHARD_MODES)
    def pair(self, request):
        _require_pinned_hashseed(request.param)
        from repro import CorpusConfig, generate_corpus, generate_descriptions

        def factory():
            kb = build_drone_kb()
            articles = generate_corpus(kb, CorpusConfig(n_articles=24, seed=7))
            generate_descriptions(kb, seed=7)
            return kb, articles

        config = NousConfig(
            window_size=200, min_support=2, lda_iterations=10, seed=7
        )
        service_config = ServiceConfig(auto_start=False, max_batch=24)
        kb, articles = factory()
        mono = NousService(
            kb=kb, config=config, service_config=service_config
        )
        mono.submit_many(articles)
        mono.flush()
        # "world:24:7" names exactly what factory() builds — the single
        # shard starts from the same curated base in both modes.
        one = _make_cluster(
            request.param, "world:24:7", 1, config, service_config
        )
        one.submit_many(articles)
        one.flush()
        yield mono, one
        mono.close()
        one.close()

    @pytest.mark.parametrize("query", QUERIES)
    def test_envelopes_identical(self, pair, query):
        mono, one = pair
        a = mono.query(query)
        b = one.query(query)
        assert a.ok == b.ok
        assert a.kind == b.kind
        assert a.rendered == b.rendered
        assert a.payload == b.payload
        if not a.ok:
            assert a.error.code == b.error.code

    def test_statistics_identical(self, pair):
        mono, one = pair
        a = mono.statistics()
        b = one.statistics()
        payload = dict(b.payload)
        cluster_block = payload.pop("cluster")
        assert payload == a.payload
        assert a.rendered == b.rendered
        assert cluster_block["shards"] == 1

    def test_composite_stamp_is_singleton(self, pair):
        mono, one = pair
        assert one.shard_versions == (one.shards[0].kg_version,)
        assert one.kg_version == one.shards[0].kg_version
        assert mono.kg_version > 0


# ---------------------------------------------------------------------------
# restart mid-stream: durability must not change a single merged answer
# ---------------------------------------------------------------------------

class TestRestartMidStream:
    """Snapshot, SIGKILL and recover a shard *between micro-batches*.

    The restarted cluster ingests half the corpus, snapshots, loses a
    worker to ``kill -9``, recovers it from snapshot + WAL through the
    supervisor, then ingests the rest.  At ``N=1`` its answers must be
    byte-identical to a monolith that never restarted; at ``N=3`` they
    must be byte-identical to an *identically partitioned* cluster that
    never restarted (the strongest restart-transparency statement:
    same partitioning, same batching, one crash — zero drift).
    """

    QUERIES = [
        "tell me about DJI",
        "show trending patterns",
        "what's new about DJI",
        "match (?a:Company)-[acquired]->(?b:Company)",
        "how is GoPro related to DJI",
    ]

    N_ARTICLES = 12

    def _world(self):
        from repro import CorpusConfig, generate_corpus, generate_descriptions

        kb = build_drone_kb()
        articles = generate_corpus(
            kb, CorpusConfig(n_articles=self.N_ARTICLES, seed=7)
        )
        generate_descriptions(kb, seed=7)
        return kb, articles

    def _config(self):
        return NousConfig(
            window_size=200, min_support=2, lda_iterations=10, seed=7
        )

    def _cluster(self, num_shards, tmp_path=None):
        return ShardedNousService(
            num_shards=num_shards,
            config=self._config(),
            service_config=ServiceConfig(
                auto_start=False, max_batch=self.N_ARTICLES
            ),
            shard_mode="process",
            kb_spec=f"world:{self.N_ARTICLES}:7",
            data_dir=None if tmp_path is None else str(tmp_path / "data"),
            restart_backoff=0.05,
        )

    def _ingest_with_restart(self, cluster, articles, victim):
        half = len(articles) // 2
        cluster.submit_many(articles[:half])
        cluster.flush()
        cluster.snapshot()
        worker = cluster._manager.workers[victim]
        worker.process.kill()
        worker.process.wait(timeout=10)
        assert victim in cluster.dead_shards()
        # No explicit recovery: submit_many's entry gate respawns and
        # replays before routing the second half.
        cluster.submit_many(articles[half:])
        cluster.flush()
        assert cluster.dead_shards() == []
        assert cluster.cluster_info()["shard_restarts"][victim] == 1

    def test_single_shard_restart_equals_monolith(self, tmp_path):
        _require_pinned_hashseed("process")
        kb, articles = self._world()
        mono = NousService(
            kb=kb,
            config=self._config(),
            service_config=ServiceConfig(
                auto_start=False, max_batch=self.N_ARTICLES
            ),
        )
        restarted = self._cluster(1, tmp_path)
        try:
            # Same micro-batch boundaries as the restarted side: trust
            # evolves at batch granularity, so confidence values are
            # only comparable under identical chunking.
            half = len(articles) // 2
            mono.submit_many(articles[:half])
            mono.flush()
            mono.submit_many(articles[half:])
            mono.flush()
            self._ingest_with_restart(restarted, articles, victim=0)
            for query in self.QUERIES:
                a = mono.query(query)
                b = restarted.query(query)
                assert a.ok == b.ok, query
                assert a.payload == b.payload, query
                assert a.rendered == b.rendered, query
            stats = dict(restarted.statistics().payload)
            stats.pop("cluster")
            assert stats == mono.statistics().payload
        finally:
            mono.close()
            restarted.close()

    def test_three_shard_restart_is_transparent(self, tmp_path):
        _require_pinned_hashseed("process")
        _kb, articles = self._world()
        reference = self._cluster(3)
        restarted = self._cluster(3, tmp_path)
        try:
            half = len(articles) // 2
            reference.submit_many(articles[:half])
            reference.flush()
            reference.submit_many(articles[half:])
            reference.flush()
            self._ingest_with_restart(restarted, articles, victim=1)
            assert restarted.documents_routed == reference.documents_routed
            assert restarted.shard_versions == reference.shard_versions
            for query in self.QUERIES:
                a = reference.query(query)
                b = restarted.query(query)
                assert a.ok == b.ok, query
                assert a.payload == b.payload, query
                assert a.rendered == b.rendered, query
            a_stats = dict(reference.statistics().payload)
            b_stats = dict(restarted.statistics().payload)
            a_stats.pop("cluster")
            b_stats.pop("cluster")
            assert a_stats == b_stats
        finally:
            reference.close()
            restarted.close()


# ---------------------------------------------------------------------------
# boundary-straddling embeddings: the regression summation could not see
# ---------------------------------------------------------------------------

class TestBoundaryStraddlingTrending:
    """Red-first regression for cross-shard pattern embeddings (ISSUE 9).

    Two funding stars whose hub chains split across shards at ``N=2``
    (``alpha``/``beta``/``delta`` route to shard 1; ``omega``/``gamma``/
    ``pi`` to shard 0): the ``funds+advises`` pattern through ``omega``
    and the ``funds+funds`` pair through ``pi`` have embeddings whose
    edges live on *different* shards, invisible to every per-shard
    miner.  The retired merge — summing per-shard MNI support tables —
    both missed those embeddings and summed per-shard minima instead of
    taking the minimum over unioned node images, so it disagreed with
    the monolith in each direction.  The first test keeps the red pin
    alive as a strict inequality (if it ever passes, the corpus stopped
    straddling and the suite lost its teeth); the second pins the
    distributed enumeration to the exact monolith value.
    """

    _FACTS = [
        ("alpha", "funds", "omega"),
        ("beta", "funds", "omega"),
        ("omega", "advises", "zed"),
        ("gamma", "funds", "pi"),
        ("delta", "funds", "pi"),
        ("pi", "advises", "ku"),
    ]

    def _monolith(self):
        mono = NousService(
            kb=KnowledgeBase(),
            config=_structured_config(),
            service_config=_service_config(),
        )
        assert mono.ingest_facts(self._FACTS, date="2015-06-01").ok
        return mono

    def _cluster(self, shard_mode):
        cluster = _make_cluster(
            shard_mode, "empty", 2, _structured_config(), _service_config()
        )
        assert cluster.ingest_facts(self._FACTS, date="2015-06-01").ok
        return cluster

    @staticmethod
    def _summed_supports(cluster):
        """The retired merge, reproduced: per-shard MNI supports (each
        shard's minimum over its *own* variable images) summed across
        shards — exactly what ``merge_window_reports`` consumed before
        the distributed enumeration replaced it."""
        from repro.compute.protocol import (
            MINE_PHASE_LOCAL,
            OP_MINE_EMBEDDINGS,
            support_entry_from_payload,
        )

        coord = cluster.compute_coordinator()
        coord.begin_job()
        local = coord._round(
            OP_MINE_EMBEDDINGS,
            {
                i: {"phase": MINE_PHASE_LOCAL, "boundary": []}
                for i in range(coord.num_shards)
            },
        )
        summed = {}
        for index in range(coord.num_shards):
            for entry in local[index]["patterns"]:
                pattern, _count, images = support_entry_from_payload(entry)
                support = min(
                    len(images[var]) for var in pattern.variables()
                )
                summed[pattern] = summed.get(pattern, 0) + support
        return summed

    @staticmethod
    def _exact_supports(mono):
        return {
            pattern: min(len(images[var]) for var in pattern.variables())
            for pattern, _count, images
            in mono.nous.dynamic.miner.support_state()
        }

    def test_summed_merge_disagrees_on_this_corpus(self):
        mono = self._monolith()
        cluster = self._cluster("local")
        try:
            homes = {
                cluster.router.shard_for_entity(s)
                for s, _p, _o in self._FACTS
            }
            assert len(homes) == 2, "fixture no longer spans shards"
            exact = self._exact_supports(mono)
            summed = self._summed_supports(cluster)
            assert summed != exact
            # At least one multi-edge pattern is undercounted: its
            # straddling embeddings were invisible to both shards.
            assert any(
                summed.get(pattern, 0) < support
                for pattern, support in exact.items()
                if len(pattern.edges) > 1
            )
        finally:
            mono.close()
            cluster.close()

    @pytest.mark.parametrize("shard_mode", SHARD_MODES)
    def test_trending_equals_monolith_exactly(self, shard_mode):
        _require_pinned_hashseed(shard_mode)
        mono = self._monolith()
        cluster = self._cluster(shard_mode)
        try:
            expected = mono.query("show trending patterns")
            actual = cluster.query("show trending patterns")
            assert actual.ok and expected.ok
            assert _trending_set(actual) == _trending_set(expected)
            assert actual.payload == expected.payload
            assert actual.rendered == expected.rendered
        finally:
            mono.close()
            cluster.close()
