"""NousService: the async ingestion queue and envelope discipline.

The queue contract: ``submit`` returns a ticket immediately; a drainer
micro-batches pending documents into ``Nous.ingest_batch`` bounded by
``max_batch`` (backpressure: full batches drain at once) and
``max_delay`` (latency bound for partial batches); ``flush`` leaves the
queue empty; results are identical to calling ``ingest_batch`` directly.
"""

import threading

import pytest

from repro.api import IngestRequest, NousService, ServiceConfig
from repro.core.pipeline import Nous, NousConfig
from repro.data.corpus import CorpusConfig, generate_corpus
from repro.errors import ConfigError, ReproError
from repro.kb.drone_kb import build_drone_kb

PIPELINE_CONFIG = dict(
    window_size=100, min_support=2, lda_iterations=5, retrain_every=0
)


def _corpus(n=12, seed=3):
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=n, seed=seed))
    return kb, articles


class TestSyncQueue:
    """auto_start=False: deterministic, single-threaded drains."""

    def test_submit_then_flush_fulfills_tickets_in_order(self):
        kb, articles = _corpus()
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            service_config=ServiceConfig(auto_start=False, max_batch=5),
        )
        tickets = service.submit_many(articles)
        assert service.pending_count == len(articles)
        assert not any(t.done() for t in tickets)
        service.flush()
        assert service.pending_count == 0
        assert all(t.done() for t in tickets)
        for article, ticket in zip(articles, tickets):
            response = ticket.result(timeout=0)
            assert response.ok and response.kind == "ingest"
            assert response.payload["doc_id"] == article.doc_id
        # 12 documents in batches of <= 5 -> 3 drains.
        assert service.batches_drained == 3
        assert service.documents_drained == len(articles)

    def test_queue_results_match_direct_ingest_batch(self):
        kb_a, articles_a = _corpus()
        direct = Nous(kb=kb_a, config=NousConfig(**PIPELINE_CONFIG))
        direct_results = direct.ingest_batch(articles_a)

        kb_b, articles_b = _corpus()
        service = NousService(
            kb=kb_b, config=NousConfig(**PIPELINE_CONFIG),
            # One drain covers the whole corpus -> bit-identical path.
            service_config=ServiceConfig(
                auto_start=False, max_batch=len(articles_b)
            ),
        )
        tickets = service.submit_many(articles_b)
        service.flush()
        assert service.nous.kb.num_facts == direct.kb.num_facts
        assert (
            service.nous.dynamic.window.window_size
            == direct.dynamic.window.window_size
        )
        for ticket, direct_result in zip(tickets, direct_results):
            payload = ticket.result(timeout=0).payload
            assert payload["accepted"] == direct_result.accepted
            assert payload["raw_triples"] == direct_result.raw_triples

    def test_retrain_amortised_across_micro_batches(self):
        # A busy period of several micro-batches must retrain once, when
        # the queue goes idle — not once per drain (that fixed cost is
        # what the 1.3x queue-overhead gate polices).
        kb, articles = _corpus(n=12)
        config = dict(PIPELINE_CONFIG)
        config["retrain_every"] = 1  # due after every accepted fact
        service = NousService(
            kb=kb, config=NousConfig(**config),
            service_config=ServiceConfig(auto_start=False, max_batch=3),
        )
        retrains = []
        original = service.nous.estimator.retrain

        def recording(store):
            retrains.append(service.nous.documents_ingested)
            return original(store)

        service.nous.estimator.retrain = recording
        service.submit_many(articles)
        service.flush()
        assert service.batches_drained == 4
        # One retrain, at end-of-period (all 12 documents ingested).
        assert retrains == [len(articles)]

    def test_ingest_is_submit_plus_flush(self):
        kb, articles = _corpus(n=3)
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            service_config=ServiceConfig(auto_start=False),
        )
        response = service.ingest(articles[0])
        assert response.ok and response.kind == "ingest"
        assert response.payload["doc_id"] == articles[0].doc_id
        assert service.nous.documents_ingested == 1

    def test_string_dates_parse_through_the_envelope(self):
        kb, _ = _corpus(n=1)
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            service_config=ServiceConfig(auto_start=False),
        )
        response = service.ingest(IngestRequest(
            text="DJI partnered with GoPro in June 2015.",
            doc_id="wire-1", date="2015-06-10", source="wsj",
        ))
        assert response.ok
        assert response.payload["accepted"] >= 1
        # Stream time derives from the parsed envelope date; had the
        # string been dropped, the timestamp would be the +1 fallback.
        from repro.nlp.dates import SimpleDate
        assert service.nous._last_timestamp == float(
            SimpleDate(2015, 6, 10).ordinal()
        )


class TestAsyncQueue:
    """auto_start=True: background drainer micro-batches under load."""

    def _service(self, **overrides):
        kb, articles = _corpus()
        defaults = dict(max_batch=4, max_delay=0.02)
        defaults.update(overrides)
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            service_config=ServiceConfig(**defaults),
        )
        return service, articles

    def test_single_document_drains_after_max_delay(self):
        service, articles = self._service()
        try:
            ticket = service.submit(articles[0])
            response = ticket.result(timeout=10.0)
            assert response.ok
            assert service.batches_drained == 1
        finally:
            service.close()

    def test_full_batch_drains_without_waiting_for_delay(self):
        # A long max_delay must NOT delay a full batch (backpressure).
        service, articles = self._service(max_batch=4, max_delay=30.0)
        try:
            tickets = service.submit_many(articles[:4])
            for ticket in tickets:
                assert ticket.result(timeout=10.0).ok
            assert service.batches_drained >= 1
        finally:
            service.close()

    def test_concurrent_submitters_share_batches(self):
        service, articles = self._service(max_batch=6, max_delay=0.1)
        sizes = []
        original = service.nous.ingest_batch

        def recording(batch, **kwargs):
            sizes.append(len(batch))
            return original(batch, **kwargs)

        service.nous.ingest_batch = recording
        try:
            barrier = threading.Barrier(4)
            tickets = []
            lock = threading.Lock()

            def submitter(chunk):
                barrier.wait()
                for article in chunk:
                    ticket = service.submit(article)
                    with lock:
                        tickets.append(ticket)

            threads = [
                threading.Thread(target=submitter, args=(articles[i::4],))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            service.flush(timeout=30.0)
            assert len(tickets) == len(articles)
            assert all(t.done() for t in tickets)
            # Micro-batching really happened: fewer drains than docs,
            # and no drain exceeded max_batch.
            assert len(sizes) < len(articles)
            assert all(1 <= s <= 6 for s in sizes)
            assert sum(sizes) == len(articles)
        finally:
            service.close()

    def test_queries_are_consistent_during_ingestion(self):
        service, articles = self._service(max_batch=3, max_delay=0.01)
        try:
            service.submit_many(articles)
            # Interleaved queries must never error or see torn state.
            for _ in range(5):
                response = service.query("tell me about DJI")
                assert response.ok
            service.flush(timeout=30.0)
            final = service.query("tell me about DJI")
            assert final.ok and final.kg_version == service.nous.dynamic.version
        finally:
            service.close()

    def test_close_drains_outstanding_work(self):
        service, articles = self._service(max_batch=4, max_delay=5.0)
        tickets = service.submit_many(articles[:2])
        service.close()
        assert all(t.done() for t in tickets)
        with pytest.raises(ReproError):
            service.submit(articles[2])


class TestEnvelopeDiscipline:
    @pytest.fixture(scope="class")
    def service(self):
        kb, articles = _corpus()
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            service_config=ServiceConfig(auto_start=False),
        )
        service.submit_many(articles)
        service.flush()
        return service

    def test_query_success_envelope(self, service):
        response = service.query("tell me about DJI")
        assert response.ok and response.error is None
        assert response.kind == "entity"
        assert response.payload["entity"] == "DJI"
        assert response.kg_version == service.nous.dynamic.version
        assert "DJI" in response.rendered

    def test_query_cache_flag_propagates(self, service):
        service.engine.clear_cache()
        assert not service.query("tell me about GoPro").cached
        assert service.query("tell me about GoPro").cached

    def test_parse_error_envelope(self, service):
        response = service.query("gibberish blargh")
        assert not response.ok and response.payload is None
        assert response.error.code == "query.parse"
        assert response.error.exception == "QueryParseError"

    def test_qa_error_envelope(self, service):
        # Path search between unknown mentions raises QAError inside the
        # engine; the service must envelope it, not raise.
        response = service.query(
            "how is Zorblatt Prime related to Xylophone Corp"
        )
        assert not response.ok
        assert response.error.code == "qa"
        assert response.error.exception == "QAError"

    def test_dispatch_time_parse_error_envelope(self, service):
        # Malformed pattern text parses as a PatternQuery but fails
        # inside dispatch — still an envelope, never an exception.
        response = service.query("match (?a")
        assert not response.ok
        assert response.error.code == "query.parse"

    def test_statistics_envelope(self, service):
        response = service.statistics()
        assert response.ok and response.kind == "statistics"
        assert response.payload["num_facts"] == service.nous.kb.num_facts
        assert "Knowledge Graph statistics" in response.rendered

    def test_structured_facts_envelope(self, service):
        before = service.nous.kb.num_facts
        response = service.ingest_facts(
            [("DJI", "partnerOf", "Parrot")], date="2016-01-02", source="feed"
        )
        assert response.ok and response.kind == "ingest"
        assert response.payload["accepted"] == 1
        assert service.nous.kb.num_facts == before + 1

    def test_bad_service_config_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(max_batch=0).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(max_delay=-1.0).validate()

    def test_unparseable_date_rejected_at_submission(self, service):
        # A date string that fails to parse must fail the request loudly
        # instead of silently ingesting a dateless (mis-ordered) fact.
        with pytest.raises(ConfigError, match="unparseable date"):
            service.submit(IngestRequest(text="x", date="Juen 2015"))
        with pytest.raises(ConfigError, match="unparseable date"):
            service.submit_many(
                [IngestRequest(text="x", date="2015-13-40")]
            )
        bad_facts = service.ingest_facts(
            [("DJI", "partnerOf", "GoPro")], date="1888"
        )
        assert not bad_facts.ok
        assert bad_facts.error.code == "config"

    def test_flush_timeout_restores_batching_delay(self):
        kb, articles = _corpus(n=2)
        service = NousService(
            kb=kb, config=NousConfig(**PIPELINE_CONFIG),
            # Long fill delay: the submitted document is still pending
            # when the zero-timeout flush gives up.
            service_config=ServiceConfig(max_batch=4, max_delay=30.0),
        )
        try:
            service.submit(articles[0])
            with pytest.raises(ReproError, match="flush timed out"):
                service.flush(timeout=0.0)
            # The failed flush must not leave drain-immediately mode on.
            assert service._flush_requested is False
            service.flush(timeout=30.0)
        finally:
            service.close()
