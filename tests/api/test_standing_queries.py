"""Standing (continuous) queries: delta feeds over the dynamic KG.

The satellite's regression: a subscription over a trending / windowed
query must report rows that disappear *solely* because their supporting
window edges were evicted — the facts stay persisted in the KB, only
the sliding-window view moved on.
"""

import pytest

from repro.api import NousService, ServiceConfig
from repro.core.pipeline import NousConfig
from repro.data.corpus import CorpusConfig, generate_corpus
from repro.errors import ReproError
from repro.kb.drone_kb import build_drone_kb


def _service(window_size=6, min_support=2, max_batch=32):
    return NousService(
        kb=build_drone_kb(),
        config=NousConfig(
            window_size=window_size, min_support=min_support,
            lda_iterations=5, retrain_every=0,
        ),
        service_config=ServiceConfig(auto_start=False, max_batch=max_batch),
    )


# Both endpoint pairs are Company-typed, so the two facts support the
# same (?0:Company)-[acquired]->(?1:Company) pattern.
ACQUISITIONS = [
    ("DJI", "acquired", "GoPro"),
    ("Amazon", "acquired", "Parrot_SA"),
]
# Six distinct partner pairs: enough to flood a size-6 window without
# ever re-supporting the acquired pattern.
FILLER = [
    ("Intel", "partnerOf", "PrecisionHawk"),
    ("GoPro", "partnerOf", "Parrot_SA"),
    ("Amazon", "partnerOf", "Intel"),
    ("DJI", "partnerOf", "PrecisionHawk"),
    ("Parrot_SA", "partnerOf", "Intel"),
    ("GoPro", "partnerOf", "Amazon"),
]


class TestSubscriptionLifecycle:
    def test_subscribe_establishes_baseline_without_notifying(self):
        service = _service()
        service.ingest_facts(ACQUISITIONS, source="feed")
        subscription = service.subscribe("show trending patterns")
        assert subscription.active
        assert subscription.poll() == []  # baseline, not a delta
        rows = subscription.current_rows
        assert any("acquired" in r["pattern"] for r in rows)

    def test_unparseable_standing_query_rejected(self):
        service = _service()
        with pytest.raises(ReproError):
            service.subscribe("gibberish blargh")

    def test_unchanged_kg_produces_no_updates(self):
        service = _service()
        service.ingest_facts(ACQUISITIONS, source="feed")
        subscription = service.subscribe("show trending patterns")
        assert service.refresh_subscriptions() == []
        assert subscription.poll() == []

    def test_unsubscribe_stops_updates(self):
        service = _service()
        subscription = service.subscribe("show trending patterns")
        service.unsubscribe(subscription)
        assert not subscription.active
        service.ingest_facts(ACQUISITIONS, source="feed")
        assert subscription.poll() == []


class TestAddedDeltas:
    def test_pattern_subscription_reports_new_bindings(self):
        service = _service(window_size=50)
        subscription = service.subscribe(
            "match (?a:Company)-[acquired]->(?b:Company)"
        )
        service.ingest_facts([("DJI", "acquired", "GoPro")], source="feed")
        updates = subscription.poll()
        assert len(updates) == 1
        added = updates[0].added
        assert {"a": "DJI", "b": "GoPro"} in [dict(r) for r in added]
        assert updates[0].removed == ()
        assert updates[0].kg_version == service.nous.dynamic.version

    def test_trending_subscription_reports_newly_frequent(self):
        service = _service(window_size=50)
        subscription = service.subscribe("show trending patterns")
        assert subscription.current_rows == []
        service.ingest_facts(ACQUISITIONS, source="feed")
        updates = subscription.poll()
        assert updates, "newly frequent pattern not reported"
        assert any(
            "acquired" in row["pattern"]
            for update in updates for row in update.added
        )

    def test_broken_callback_is_isolated(self):
        # A throwing subscriber must not poison the ingestion path: the
        # error is recorded, other subscribers still get their updates.
        service = _service(window_size=50)

        def explode(update):
            raise RuntimeError("subscriber bug")

        broken = service.subscribe("show trending patterns", callback=explode)
        healthy_seen = []
        service.subscribe(
            "match (?a:Company)-[acquired]->(?b:Company)",
            callback=healthy_seen.append,
        )
        response = service.ingest_facts(ACQUISITIONS, source="feed")
        assert response.ok, "subscriber failure leaked into ingest result"
        assert service.subscription_errors == 1
        assert isinstance(broken.last_error, RuntimeError)
        assert healthy_seen, "healthy subscriber starved by broken one"
        # The broken subscription still accumulated its update.
        assert broken.poll()

    def test_broken_callback_does_not_kill_the_drainer(self):
        service = NousService(
            kb=build_drone_kb(),
            config=NousConfig(
                window_size=50, min_support=2, lda_iterations=5,
                retrain_every=0,
            ),
            service_config=ServiceConfig(max_batch=4, max_delay=0.01),
        )
        try:
            def explode(update):
                raise RuntimeError("subscriber bug")

            service.subscribe("show trending patterns", callback=explode)
            kb = service.nous.kb
            articles = generate_corpus(kb, CorpusConfig(n_articles=8, seed=3))
            service.submit_many(articles[:4])
            service.flush(timeout=30.0)
            # The drainer survived the first failing refresh and keeps
            # draining subsequent submissions.
            tickets = service.submit_many(articles[4:])
            service.flush(timeout=30.0)
            assert all(t.done() for t in tickets)
            assert service.documents_drained == 8
        finally:
            service.close()

    def test_callback_receives_updates(self):
        service = _service(window_size=50)
        seen = []
        service.subscribe(
            "match (?a:Company)-[acquired]->(?b:Company)", callback=seen.append
        )
        service.ingest_facts([("DJI", "acquired", "GoPro")], source="feed")
        assert len(seen) == 1
        assert seen[0].added

    def test_queue_drain_triggers_notifications(self):
        # Deltas must flow from the *document* path too, not only from
        # structured facts: drains refresh subscriptions.
        service = _service(window_size=50)
        kb = service.nous.kb
        articles = generate_corpus(kb, CorpusConfig(n_articles=10, seed=3))
        subscription = service.subscribe("show trending patterns")
        service.submit_many(articles)
        service.flush()
        updates = subscription.poll()
        assert updates, "drain did not refresh the standing query"
        assert all(u.kg_version > 0 for u in updates)


class TestEvictionDeltas:
    """Rows disappearing solely because window edges were evicted."""

    def test_trending_rows_removed_on_window_eviction(self):
        service = _service(window_size=6, min_support=2)
        service.ingest_facts(ACQUISITIONS, source="feed")
        subscription = service.subscribe("show trending patterns")
        assert any(
            "acquired" in r["pattern"] for r in subscription.current_rows
        )
        facts_before = service.nous.kb.num_facts

        # Six unrelated facts flood the size-6 window: the two acquired
        # edges are evicted; nothing is removed from the KB itself.
        service.ingest_facts(FILLER, source="feed")

        assert service.nous.kb.num_facts == facts_before + len(FILLER)
        store = service.nous.kb.store
        assert all(store.get(*fact) is not None for fact in ACQUISITIONS), (
            "eviction must not remove persisted facts"
        )
        updates = subscription.poll()
        removed = [
            dict(row) for update in updates for row in update.removed
        ]
        assert any("acquired" in row["pattern"] for row in removed), (
            "evicted support did not surface as a removed standing-query row"
        )
        assert not any(
            "acquired" in r["pattern"] for r in subscription.current_rows
        )

    def test_entity_trend_rows_removed_on_window_eviction(self):
        service = _service(window_size=6)
        service.ingest_facts(
            [("DJI", "acquired", "GoPro")], date="2016-01-02", source="feed"
        )
        subscription = service.subscribe("what's new about DJI")
        baseline = subscription.current_rows
        assert any(r["predicate"] == "acquired" for r in baseline)

        service.ingest_facts(FILLER[:3], source="feed")
        service.ingest_facts(
            [("Intel", "partnerOf", "GoPro"),
             ("Amazon", "partnerOf", "PrecisionHawk"),
             ("Parrot_SA", "partnerOf", "Amazon")],
            source="feed",
        )

        updates = subscription.poll()
        removed = [
            dict(row) for update in updates for row in update.removed
        ]
        assert any(r["predicate"] == "acquired" for r in removed)
        # The fact survives in the KB; only the window view moved on.
        assert service.nous.kb.store.get("DJI", "acquired", "GoPro") is not None

    def test_trending_support_change_is_an_upsert(self):
        service = _service(window_size=50, min_support=2)
        service.ingest_facts(ACQUISITIONS, source="feed")
        subscription = service.subscribe("show trending patterns")
        # A third acquisition raises support 2 -> 3 on the same pattern:
        # the row re-appears in `added` with the new support, and is not
        # reported as removed (its identity is the pattern).
        service.ingest_facts(
            [("Intel", "acquired", "PrecisionHawk")], source="feed"
        )
        updates = subscription.poll()
        assert updates
        added = [dict(r) for u in updates for r in u.added]
        removed = [dict(r) for u in updates for r in u.removed]
        upserts = [r for r in added if "acquired" in r["pattern"]]
        assert upserts and all(r["support"] == 3 for r in upserts)
        assert not any("acquired" in r.get("pattern", "") for r in removed)

    def test_standing_trending_does_not_steal_report_transitions(self):
        # The interactive trending report's newly_frequent deltas are
        # consumed on read; a standing query must evaluate from the pure
        # closed-frequent view and leave them alone.
        service = _service(window_size=50, min_support=2)
        service.subscribe("show trending patterns")
        service.ingest_facts(ACQUISITIONS, source="feed")
        report = service.nous.trending()
        assert report.newly_frequent, (
            "standing-query refresh consumed the report's transition state"
        )
