"""Typed envelopes: error taxonomy, immutability, dict round-trips."""

import dataclasses

import pytest

from repro.api import (
    API_VERSION,
    ApiError,
    ApiResponse,
    IngestRequest,
    QueryRequest,
    error_from_exception,
    normalize_error_message,
)
from repro.data.articles import Article
from repro.errors import (
    ConfigError,
    DuplicateVertexError,
    EdgeNotFoundError,
    GraphError,
    KBError,
    LinkingError,
    MiningError,
    NLPError,
    PatternError,
    QAError,
    QueryError,
    QueryParseError,
    ReproError,
    UnknownPredicateError,
    UnknownTypeError,
    VertexNotFoundError,
)
from repro.nlp.dates import SimpleDate


class TestErrorTaxonomy:
    @pytest.mark.parametrize("exc,code", [
        (QueryParseError("x", "nope"), "query.parse"),
        (QueryError("bad"), "query"),
        (PatternError("bad"), "mining.pattern"),
        (MiningError("bad"), "mining"),
        (QAError("bad"), "qa"),
        (ConfigError("bad"), "config"),
        (GraphError("bad"), "graph"),
        (VertexNotFoundError("v"), "graph"),
        (EdgeNotFoundError(3), "graph"),
        (DuplicateVertexError("v"), "graph"),
        (KBError("bad"), "kb"),
        (UnknownPredicateError("p"), "kb"),
        (UnknownTypeError("T"), "kb"),
        (NLPError("bad"), "nlp"),
        (LinkingError("bad"), "linking"),
        (ReproError("bad"), "internal"),
        (ValueError("bad"), "internal"),
    ])
    def test_every_repro_error_maps_to_a_stable_code(self, exc, code):
        error = error_from_exception(exc)
        assert error.code == code
        assert error.exception == type(exc).__name__
        assert str(exc) in error.message

    def test_subclass_precedes_base(self):
        # QueryParseError is a QueryError; the taxonomy must pick the
        # most specific code, not the base's.
        assert error_from_exception(QueryParseError("q", "r")).code == "query.parse"

    def test_error_round_trip(self):
        error = error_from_exception(QAError("no path"))
        assert ApiError.from_dict(error.to_dict()) == error


class TestMessageNormalization:
    """ApiError payloads carry stable code/message fields — never raw
    Python reprs — before they go over the wire."""

    def test_key_error_message_is_not_the_key_repr(self):
        # str(KeyError('text')) is "'text'" — the repr of the key.
        error = error_from_exception(KeyError("text"))
        assert error.code == "internal"
        assert error.message == "missing key: text"
        assert "'" not in error.message

    def test_empty_exception_gets_class_name(self):
        error = error_from_exception(RuntimeError())
        assert error.message == "RuntimeError"

    def test_memory_addresses_are_scrubbed(self):
        class Opaque:
            pass

        exc = ValueError(f"cannot serialise {Opaque()!r}")
        error = error_from_exception(exc)
        assert "0x" not in error.message or "0x…" in error.message
        assert " at 0x7" not in error.message
        # Two occurrences normalise identically (stable message).
        assert error.message == error_from_exception(
            ValueError(f"cannot serialise {Opaque()!r}")
        ).message

    def test_repro_error_messages_pass_through(self):
        assert normalize_error_message(QAError("no path")) == "no path"
        assert normalize_error_message(
            QueryParseError("zz", "no template")
        ) == "cannot parse query 'zz': no template"

    def test_whitespace_trimmed(self):
        assert normalize_error_message(ValueError("  padded  ")) == "padded"


class TestRequests:
    def test_ingest_request_round_trip(self):
        request = IngestRequest(
            text="DJI acquired GoPro.", doc_id="d1",
            date="2015-06-10", source="wsj",
        )
        assert IngestRequest.from_dict(request.to_dict()) == request

    def test_ingest_request_from_article_stringifies_date(self):
        article = Article(
            doc_id="a", date=SimpleDate(2015, 6, 10), source="wsj",
            title="t", text="body",
        )
        request = IngestRequest.from_article(article)
        assert request.date == "2015-06-10"
        assert request.doc_id == "a"
        assert IngestRequest.from_dict(request.to_dict()) == request

    def test_partial_date_survives_the_envelope(self):
        # str(SimpleDate(2015, 6)) == "2015-06" must parse back.
        from repro.nlp.dates import parse_date
        assert parse_date(str(SimpleDate(2015, 6))) == SimpleDate(2015, 6)
        assert parse_date(str(SimpleDate(2015))) == SimpleDate(2015)

    def test_query_request_round_trip(self):
        request = QueryRequest(text="tell me about DJI")
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_requests_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            QueryRequest(text="x").text = "y"
        with pytest.raises(dataclasses.FrozenInstanceError):
            IngestRequest(text="x").source = "y"


class TestApiResponse:
    def test_success_round_trip(self):
        response = ApiResponse(
            ok=True, kind="entity", payload={"entity": "DJI"},
            rendered="DJI (Company)", elapsed_ms=1.5, kg_version=42,
            cached=True,
        )
        assert ApiResponse.from_dict(response.to_dict()) == response
        assert response.api_version == API_VERSION

    def test_failure_round_trip(self):
        response = ApiResponse.failure(QueryParseError("zz", "no template"))
        assert not response.ok
        assert response.error is not None
        assert response.error.code == "query.parse"
        assert ApiResponse.from_dict(response.to_dict()) == response

    def test_raise_for_error(self):
        ok = ApiResponse(ok=True, kind="entity", payload={})
        assert ok.raise_for_error() is ok
        with pytest.raises(ReproError, match=r"\[qa\]"):
            ApiResponse.failure(QAError("no path")).raise_for_error()

    def test_response_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ApiResponse(ok=True, kind="x").ok = False
