"""Multi-tenant namespaces: spec/registry units, the tenant route tree,
header-vs-path precedence, quotas, throttled streams, ETag isolation and
the admin surface (the contract documented in docs/TENANCY.md)."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.api.base import ServiceLike, TenantRegistryLike
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.service import NousService, ServiceConfig
from repro.api.tenancy import (
    DEFAULT_TENANT,
    TenantRegistry,
    TenantSpec,
    validate_tenant_name,
)
from repro.core.pipeline import NousConfig
from repro.errors import (
    ConfigError,
    ReproError,
    TenancyError,
    TenantExistsError,
    TenantQuotaError,
    UnknownTenantError,
)
from repro.kb.drone_kb import build_drone_kb

from test_http_gateway import _raw_request, _wait_until  # noqa: E402

PATTERN = "match (?a:Company)-[acquired]->(?b:Company)"
ACQUISITION = "DJI acquired Parrot SA in June 2016."


def _drone_service() -> NousService:
    return NousService(
        kb=build_drone_kb(),
        config=NousConfig(window_size=400, seed=7),
        service_config=ServiceConfig(auto_start=True),
    )


@pytest.fixture(scope="module")
def registry():
    with TenantRegistry(
        default_service=_drone_service(),
        specs=(
            TenantSpec(name="alpha"),
            TenantSpec(name="beta"),
            TenantSpec(name="q1", max_subscriptions=1),
        ),
    ) as reg:
        yield reg
        # The borrowed default is the module's to close.
        reg.default.close()


@pytest.fixture(scope="module")
def gateway(registry):
    with NousGateway(
        registry, GatewayConfig(heartbeat_interval=0.2)
    ) as gw:
        yield gw


# ---------------------------------------------------------------------------
# TenantSpec / names
# ---------------------------------------------------------------------------
class TestTenantSpec:
    def test_wire_round_trip(self):
        spec = TenantSpec(name="acme", max_subscriptions=3, seed=11)
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        # A typo'd quota key must never silently mean "unlimited".
        with pytest.raises(TenancyError, match="max_subs"):
            TenantSpec.from_dict({"name": "acme", "max_subs": 3})

    def test_name_required(self):
        with pytest.raises(TenancyError, match="name"):
            TenantSpec.from_dict({})

    @pytest.mark.parametrize(
        "bad", ["", "UPPER", "-leading", "a/b", "a b", "x" * 65]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(TenancyError, match="invalid tenant name"):
            TenantSpec(name=bad).validate()

    @pytest.mark.parametrize("good", ["a", "acme", "a-b_c.d", "t42"])
    def test_good_names_accepted(self, good):
        assert validate_tenant_name(good) == good

    def test_bad_shards_and_quota_rejected(self):
        with pytest.raises(TenancyError, match="shards"):
            TenantSpec(name="a", shards=0).validate()
        with pytest.raises(TenancyError, match="max_subscriptions"):
            TenantSpec(name="a", max_subscriptions=-1).validate()
        with pytest.raises(TenancyError, match="shard_mode"):
            TenantSpec(name="a", shard_mode="quantum").validate()

    def test_malformed_values_are_tenancy_errors(self):
        with pytest.raises(TenancyError, match="malformed"):
            TenantSpec.from_dict({"name": "a", "shards": "many"})


# ---------------------------------------------------------------------------
# TenantRegistry (unit, no HTTP)
# ---------------------------------------------------------------------------
class TestTenantRegistry:
    def test_requires_a_default(self):
        with pytest.raises(ConfigError, match="default"):
            TenantRegistry(specs=(TenantSpec(name="only"),))

    def test_default_spec_satisfies_requirement(self, tmp_path):
        with TenantRegistry(
            specs=(TenantSpec(name=DEFAULT_TENANT, kb="empty"),),
            data_dir=str(tmp_path),
        ) as reg:
            assert reg.default.kg_version >= 0

    def test_lazy_build_and_describe(self):
        with TenantRegistry(
            default_service=_drone_service(),
            specs=(TenantSpec(name="lazy", kb="empty"),),
        ) as reg:
            infos = {info["name"]: info for info in reg.describe()}
            assert infos["lazy"]["live"] is False
            assert infos[DEFAULT_TENANT]["live"] is True
            reg.get("lazy")
            infos = {info["name"]: info for info in reg.describe()}
            assert infos["lazy"]["live"] is True
            assert "kg_version" in infos["lazy"]
            reg.default.close()

    def test_unknown_tenant(self):
        with TenantRegistry(default_service=_drone_service()) as reg:
            with pytest.raises(UnknownTenantError, match="nope"):
                reg.get("nope")
            with pytest.raises(UnknownTenantError):
                reg.spec("nope")
            reg.default.close()

    def test_create_delete_lifecycle(self):
        with TenantRegistry(default_service=_drone_service()) as reg:
            info = reg.create(TenantSpec(name="new", kb="empty"))
            assert info["live"] is False
            with pytest.raises(TenantExistsError, match="new"):
                reg.create(TenantSpec(name="new"))
            service = reg.get("new")
            assert service.kg_version >= 0
            result = reg.delete("new")
            assert result["deleted"] and result["drained"]
            with pytest.raises(UnknownTenantError):
                reg.get("new")
            with pytest.raises(TenancyError, match="default"):
                reg.delete(DEFAULT_TENANT)
            with pytest.raises(UnknownTenantError):
                reg.delete("never-was")
            reg.default.close()

    def test_close_spares_the_borrowed_default(self):
        default = _drone_service()
        reg = TenantRegistry(
            default_service=default, specs=(TenantSpec(name="own", kb="empty"),)
        )
        owned = reg.get("own")
        reg.close()
        # Registry-built services are closed (a closed service refuses
        # ingestion), the injected one is not.
        assert default.query("tell me about DJI").ok
        from repro.api.envelopes import IngestRequest

        with pytest.raises(ReproError, match="closed"):
            owned.submit(IngestRequest(text="DJI acquired GoPro."))
        default.close()
        # close() is idempotent.
        reg.close()

    def test_closed_registry_refuses_resolution(self):
        reg = TenantRegistry(default_service=_drone_service())
        default = reg.default
        reg.close()
        with pytest.raises(TenancyError, match="closed"):
            reg.get(DEFAULT_TENANT)
        default.close()

    def test_per_tenant_data_dir_subtree(self, tmp_path):
        with TenantRegistry(
            default_service=_drone_service(),
            specs=(TenantSpec(name="durable", kb="empty"),),
            data_dir=str(tmp_path),
        ) as reg:
            reg.get("durable")
            assert os.path.isdir(tmp_path / "tenant-durable")
            reg.default.close()

    def test_quota_enforcement(self):
        with TenantRegistry(
            default_service=_drone_service(),
            specs=(TenantSpec(name="tight", kb="empty", max_subscriptions=1),),
        ) as reg:
            reg.ensure_subscription_capacity("tight")  # 0/1: fine
            sub = reg.get("tight").subscribe("show trending patterns")
            with pytest.raises(TenantQuotaError, match="1/1"):
                reg.ensure_subscription_capacity("tight")
            reg.get("tight").unsubscribe(sub)
            reg.ensure_subscription_capacity("tight")
            # The default tenant has no quota: always admissible.
            reg.ensure_subscription_capacity(DEFAULT_TENANT)
            reg.default.close()

    def test_satisfies_the_registry_protocol(self, registry):
        reg: TenantRegistryLike = registry
        service: ServiceLike = reg.get(DEFAULT_TENANT)
        assert service.kg_version >= 0


# ---------------------------------------------------------------------------
# the tenant route tree
# ---------------------------------------------------------------------------
class TestTenantRoutes:
    def test_legacy_routes_answer_the_default_tenant(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/healthz")
        assert status == 200
        assert body["tenant"] == DEFAULT_TENANT

    def test_path_scoped_routes(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/t/alpha/healthz")
        assert status == 200
        assert body["tenant"] == "alpha"

    def test_header_alias(self, gateway):
        status, body = _raw_request(
            gateway, "GET", "/v1/healthz",
            headers={"X-Nous-Tenant": "beta"},
        )
        assert status == 200
        assert body["tenant"] == "beta"

    def test_path_beats_header(self, gateway):
        status, body = _raw_request(
            gateway, "GET", "/v1/t/alpha/healthz",
            headers={"X-Nous-Tenant": "beta"},
        )
        assert status == 200
        assert body["tenant"] == "alpha"

    def test_unknown_tenant_is_a_structured_404(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/t/ghost/healthz")
        assert status == 404
        assert body["error"]["code"] == "tenancy.unknown"
        status, body = _raw_request(
            gateway, "GET", "/v1/stats", headers={"X-Nous-Tenant": "ghost"}
        )
        assert status == 404
        assert body["error"]["code"] == "tenancy.unknown"

    def test_unknown_route_is_still_a_404(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/t/alpha/nope")
        assert status == 404
        assert body["error"]["code"] == "http.not_found"

    def test_wrong_method_is_405_with_allow(self, gateway):
        status, body = _raw_request(gateway, "GET", "/v1/query")
        assert status == 405
        assert body["error"]["code"] == "http.method_not_allowed"
        # The Allow header names the verbs the path does serve.
        import http.client

        conn = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=30.0
        )
        try:
            conn.request("GET", "/v1/t/alpha/query")
            response = conn.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "POST"
            response.read()
            conn.request("DELETE", "/v1/stats")
            response = conn.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "GET"
            response.read()
        finally:
            conn.close()

    def test_tenant_client_session_round_trip(self, gateway, registry):
        with ClientSession(gateway.url, tenant="alpha") as session:
            before = registry.get("alpha").documents_ingested
            default_before = registry.default.documents_ingested
            envelope = session.ingest(
                ACQUISITION, doc_id="alpha-1", date="2016-06-10", source="t"
            )
            assert envelope.ok and envelope.kind == "ingest"
            assert registry.get("alpha").documents_ingested == before + 1
            # Zero bleed into the default namespace.
            assert registry.default.documents_ingested == default_before
            result = session.query(PATTERN).raise_for_error()
            assert result.kg_version == registry.get("alpha").kg_version

    def test_tickets_are_tenant_scoped(self, gateway):
        with ClientSession(gateway.url, tenant="beta") as session:
            ticket = session.submit(ACQUISITION, doc_id="beta-t1")
            assert ticket.kind == "ticket"
            ticket_id = ticket.payload["ticket_id"]
            # The href routes back through the tenant's own tree.
            assert ticket.payload["href"] == f"/v1/t/beta/ingest/{ticket_id}"
            assert _wait_until(
                lambda: session.ticket(ticket_id).kind == "ingest",
                timeout=30.0,
            )
        # A foreign tenant polling the same id sees nothing: ticket ids
        # never leak ingest state across namespaces.
        status, body = _raw_request(
            gateway, "GET", f"/v1/t/alpha/ingest/{ticket_id}"
        )
        assert status == 404
        status, body = _raw_request(gateway, "GET", f"/v1/ingest/{ticket_id}")
        assert status == 404
        assert body["error"]["code"] == "http.not_found"


class TestEtagIsolation:
    def test_etag_embeds_the_tenant(self, gateway, registry):
        status, body = _raw_request(gateway, "GET", "/v1/t/q1/healthz")
        assert status == 200
        version = body["kg_version"]
        import http.client

        conn = http.client.HTTPConnection(
            gateway.host, gateway.port, timeout=30.0
        )
        try:
            conn.request("GET", "/v1/t/q1/stats")
            response = conn.getresponse()
            response.read()
            assert response.getheader("ETag") == f'"kg-q1-{version}"'
        finally:
            conn.close()

    def test_same_stamp_different_tenant_never_validates(
        self, gateway, registry
    ):
        # Regression: the pre-tenancy validator was `"kg-<version>"`,
        # so two tenants at the same composite stamp would 304-validate
        # each other's cached statistics through a shared proxy.  Build
        # a fresh pair of never-touched tenants so the stamps coincide.
        registry.create(TenantSpec(name="twin-a", kb="empty"))
        registry.create(TenantSpec(name="twin-b", kb="empty"))
        try:
            assert (
                registry.get("twin-a").kg_version
                == registry.get("twin-b").kg_version
            )
            import http.client

            conn = http.client.HTTPConnection(
                gateway.host, gateway.port, timeout=30.0
            )
            try:
                conn.request("GET", "/v1/t/twin-a/stats")
                response = conn.getresponse()
                response.read()
                etag_a = response.getheader("ETag")
                assert etag_a is not None
                # twin-a's validator against twin-b's stats: same stamp,
                # different tenant — must answer a full 200, never 304.
                conn.request(
                    "GET", "/v1/t/twin-b/stats",
                    headers={"If-None-Match": etag_a},
                )
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert json.loads(body)["ok"] is True
                assert response.getheader("ETag") != etag_a
            finally:
                conn.close()
        finally:
            registry.delete("twin-a")
            registry.delete("twin-b")


# ---------------------------------------------------------------------------
# per-tenant fairness: quotas and throttled streams
# ---------------------------------------------------------------------------
class TestQuota:
    def test_subscribe_past_quota_is_a_structured_429(self, gateway):
        with ClientSession(gateway.url, tenant="q1") as session:
            stream = session.subscribe(
                "show trending patterns", heartbeat=0.1, timeout=30.0
            )
            try:
                assert next(stream)["event"] == "subscribed"
                with pytest.raises(ReproError, match="quota"):
                    session.subscribe(
                        "show trending patterns", timeout=30.0
                    )
                # The wire status is 429 with the structured code.
                status, body = _raw_request(
                    gateway, "GET", "/v1/t/q1/subscribe?q=show+trending+patterns"
                )
                assert status == 429
                assert body["error"]["code"] == "tenancy.quota"
            finally:
                stream.close()
        # Capacity frees once the stream detaches.
        assert _wait_until(
            lambda: _raw_request(gateway, "GET", "/v1/t/q1/healthz")[1][
                "subscriptions"
            ]
            == 0,
            timeout=10.0,
        )


class TestThrottledStream:
    def test_min_interval_coalesces_to_one_net_diff(self, gateway, registry):
        """With a throttle window wider than the stream's lifetime,
        every intermediate delta coalesces into the single net diff the
        final flush emits before ``bye``."""
        with ClientSession(gateway.url, tenant="alpha") as session:
            frames = []
            stream = session.subscribe(
                PATTERN,
                heartbeat=5.0,
                max_seconds=6.0,
                min_interval=60.0,
                timeout=30.0,
            )

            def reader():
                for frame in stream:
                    frames.append(frame)

            thread = threading.Thread(target=reader, daemon=True)
            thread.start()
            assert _wait_until(lambda: len(frames) >= 1)
            assert frames[0]["event"] == "subscribed"
            # Two separate drains → two raw deltas server-side.
            session.ingest(
                "GoPro acquired Parrot SA in August 2017.", doc_id="th-1"
            )
            session.ingest(
                "DJI acquired GoPro in March 2018.", doc_id="th-2"
            )
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        updates = [f for f in frames if f["event"] == "update"]
        assert frames[-1]["event"] == "bye"
        # The two drains coalesced into exactly one net update frame.
        assert len(updates) == 1
        added_text = json.dumps(updates[0]["added"])
        assert "GoPro" in added_text

    def test_max_rate_param_is_accepted(self, gateway):
        with ClientSession(gateway.url) as session:
            with session.subscribe(
                "show trending patterns",
                max_rate=100,
                max_seconds=0.2,
                timeout=30.0,
            ) as stream:
                frames = list(stream)
        assert frames[0]["event"] == "subscribed"
        assert frames[-1]["event"] == "bye"

    def test_non_finite_throttle_rejected(self, gateway):
        status, body = _raw_request(
            gateway, "GET", "/v1/subscribe?q=show+trending+patterns&min_interval=inf"
        )
        assert status == 400
        assert body["error"]["code"] == "http.bad_request"


# ---------------------------------------------------------------------------
# the admin surface
# ---------------------------------------------------------------------------
class TestAdminSurface:
    def test_list_create_delete_round_trip(self, gateway):
        with ClientSession(gateway.url) as session:
            listing = session.tenants()
            assert listing["default"] == DEFAULT_TENANT
            names = {info["name"] for info in listing["tenants"]}
            assert {"default", "alpha", "beta", "q1"} <= names

            created = session.create_tenant(
                {"name": "adhoc", "kb": "empty", "max_subscriptions": 2}
            )
            assert created["ok"] is True
            assert created["tenant"]["live"] is False

            # The new namespace serves immediately (built on first use).
            status, body = _raw_request(
                gateway, "GET", "/v1/t/adhoc/healthz"
            )
            assert status == 200 and body["tenant"] == "adhoc"

            with pytest.raises(ReproError, match="already"):
                session.create_tenant({"name": "adhoc"})

            gone = session.delete_tenant("adhoc")
            assert gone["deleted"] is True
            status, body = _raw_request(gateway, "GET", "/v1/t/adhoc/healthz")
            assert status == 404
            assert body["error"]["code"] == "tenancy.unknown"

    def test_create_malformed_spec_is_a_400(self, gateway):
        status, body = _raw_request(
            gateway, "POST", "/v1/tenants",
            body=json.dumps({"name": "BAD NAME"}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert body["error"]["code"] == "tenancy"

    def test_create_duplicate_is_a_409(self, gateway):
        status, body = _raw_request(
            gateway, "POST", "/v1/tenants",
            body=json.dumps({"name": "alpha"}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 409
        assert body["error"]["code"] == "tenancy.exists"

    def test_delete_default_is_refused(self, gateway):
        status, body = _raw_request(gateway, "DELETE", "/v1/tenants/default")
        assert status == 400
        assert body["error"]["code"] == "tenancy"

    def test_delete_unknown_is_a_404(self, gateway):
        status, body = _raw_request(gateway, "DELETE", "/v1/tenants/ghost")
        assert status == 404
        assert body["error"]["code"] == "tenancy.unknown"


# ---------------------------------------------------------------------------
# gateway ownership and legacy construction
# ---------------------------------------------------------------------------
class TestGatewayOwnership:
    def test_bare_service_still_works_and_stays_open(self):
        service = _drone_service()
        with NousGateway(service) as gw:
            status, body = _raw_request(gw, "GET", "/v1/healthz")
            assert status == 200 and body["tenant"] == DEFAULT_TENANT
            # Admin-created tenants work on a bare-service gateway too.
            status, _ = _raw_request(
                gw, "POST", "/v1/tenants",
                body=json.dumps({"name": "pop-up", "kb": "empty"}),
                headers={"Content-Type": "application/json"},
            )
            assert status == 201
            status, body = _raw_request(gw, "GET", "/v1/t/pop-up/healthz")
            assert status == 200
        # Gateway close closed its internal registry (and the pop-up
        # tenant with it) but never the caller's service.
        assert service.query("tell me about DJI").ok
        service.close()

    def test_gateway_service_property_is_the_default_tenant(
        self, gateway, registry
    ):
        assert gateway.service is registry.default
