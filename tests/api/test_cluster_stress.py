"""Concurrency stress: a sharded gateway under simultaneous ingest,
query and NDJSON-subscriber load.

The invariants pinned here are the distributed-correctness claims of the
sharded service:

- **No dropped or duplicated subscription deltas** — replaying every
  added/removed row (keyed exactly as ``delta_rows`` keys them, via
  ``key_of_row``) on top of the subscribe-time baseline reproduces a
  fresh end-state evaluation; every ``added`` row changes the replay
  state and every ``removed`` row was present.
- **Monotonic composite version stamp** — ``kg_version`` never goes
  backwards, neither within one subscriber stream (update and heartbeat
  frames) nor across one client's successive query responses.
- **The gateway survives** — every concurrent ingest and query returns
  a well-formed, successful envelope while two subscribers stream.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    IngestRequest,
    NousConfig,
    ServiceConfig,
    ShardedNousService,
)
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.wire import key_of_row

N_SHARDS = 3
N_INGEST_WORKERS = 3
DOCS_PER_WORKER = 6
N_QUERY_WORKERS = 2
QUERIES_PER_WORKER = 6

_COMPANIES = [
    "DJI", "GoPro", "Intel", "Amazon", "Google", "Boeing",
    "AeroVironment", "Parrot",
]

SUBSCRIBER_QUERIES = ["what's new about DJI", "show trending patterns"]
WORKER_QUERIES = [
    "tell me about DJI",
    "show trending patterns",
    "what's new about GoPro",
    "match (?a:Company)-[acquired]->(?b:Company)",
]


def _doc(worker: int, index: int) -> IngestRequest:
    subject = _COMPANIES[(worker * DOCS_PER_WORKER + index) % len(_COMPANIES)]
    object_ = _COMPANIES[(worker + index + 1) % len(_COMPANIES)]
    if object_ == subject:
        object_ = _COMPANIES[(worker + index + 2) % len(_COMPANIES)]
    name = subject.replace("_", " ")
    return IngestRequest(
        text=(
            f"{name} acquired {object_.replace('_', ' ')}. "
            f"{name} announced a new drone."
        ),
        doc_id=f"stress-{worker}-{index}",
        date=f"2015-07-{(index % 27) + 1:02d}",
        source="stress",
    )


class _Subscriber(threading.Thread):
    """Collects every frame of one NDJSON subscribe stream."""

    def __init__(self, url: str, query: str) -> None:
        super().__init__(daemon=True)
        self.query = query
        self.frames = []
        self.error = None
        self._session = ClientSession(url)
        # The stream is opened (and the server-side standing query is
        # registered) before the thread starts: no subscribe race with
        # the ingest workers' first documents.
        self._stream = self._session.subscribe(
            query, heartbeat=0.2, include_heartbeats=True
        )

    def run(self) -> None:
        try:
            for frame in self._stream:
                self.frames.append(frame)
        except Exception as exc:  # noqa: BLE001 - surfaced in the test
            self.error = exc

    def close(self) -> None:
        self._stream.close()
        self._session.close()

    def updates(self):
        return [f for f in self.frames if f.get("event") == "update"]

    def last_version(self) -> int:
        versions = [
            f["kg_version"] for f in self.frames if "kg_version" in f
        ]
        return versions[-1] if versions else -1


@pytest.fixture(scope="module", params=["local", "process"])
def stressed(request):
    """Run the whole stress scenario once per shard mode; tests assert
    over its log.  The process run pins the same distributed-correctness
    claims across real process boundaries: deltas hop worker NDJSON
    stream -> cluster merge -> gateway NDJSON stream and must still
    replay exactly."""
    cluster = ShardedNousService(
        num_shards=N_SHARDS,
        config=NousConfig(
            window_size=60, min_support=2, lda_iterations=8, seed=5
        ),
        service_config=ServiceConfig(max_batch=8, max_delay=0.02),
        shard_mode=request.param,
        kb_spec="drone",
    )
    gateway = NousGateway(cluster, GatewayConfig(port=0))
    gateway.start()
    url = gateway.url
    try:
        with ClientSession(url) as warmup:
            # a few facts so both standing queries have a baseline
            assert warmup.ingest(_doc(0, 0), wait=True).ok
        cluster.flush()
        baselines = {
            q: {
                key_of_row(sub.kind, row): row
                for row in sub.current_rows
            }
            for q in SUBSCRIBER_QUERIES
            for sub in [cluster.subscribe(q)]
        }
        subscribers = [_Subscriber(url, q) for q in SUBSCRIBER_QUERIES]
        for subscriber in subscribers:
            subscriber.start()

        ingest_failures = []
        query_log = {i: [] for i in range(N_QUERY_WORKERS)}

        def ingest_worker(worker: int) -> None:
            with ClientSession(url) as session:
                for i in range(DOCS_PER_WORKER):
                    response = session.ingest(
                        _doc(worker, i), wait=(i % 2 == 0)
                    )
                    if not response.ok:
                        ingest_failures.append(response)

        def query_worker(worker: int) -> None:
            with ClientSession(url) as session:
                for i in range(QUERIES_PER_WORKER):
                    response = session.query(
                        WORKER_QUERIES[(worker + i) % len(WORKER_QUERIES)]
                    )
                    query_log[worker].append(response)

        threads = [
            threading.Thread(target=ingest_worker, args=(w,))
            for w in range(N_INGEST_WORKERS)
        ] + [
            threading.Thread(target=query_worker, args=(w,))
            for w in range(N_QUERY_WORKERS)
        ]
        during_health = None
        for thread in threads:
            thread.start()
        with ClientSession(url) as session:
            during_health = session.healthz()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        cluster.flush()
        # let the final refresh deltas reach the streams, then detach
        final_version = cluster.kg_version
        deadline = threading.Event()
        for _ in range(100):
            if all(s.last_version() >= final_version for s in subscribers):
                break
            deadline.wait(0.1)
        for subscriber in subscribers:
            subscriber.close()
        for subscriber in subscribers:
            subscriber.join(timeout=30)
            assert not subscriber.is_alive()
        finals = {
            q: {
                key_of_row(sub.kind, row): row
                for row in sub.current_rows
            }
            for q in SUBSCRIBER_QUERIES
            for sub in [cluster.subscribe(q)]
        }
        yield {
            "cluster": cluster,
            "subscribers": subscribers,
            "baselines": baselines,
            "finals": finals,
            "ingest_failures": ingest_failures,
            "query_log": query_log,
            "during_health": during_health,
        }
    finally:
        gateway.close()
        cluster.close()


class TestShardedGatewayStress:
    def test_no_worker_failures(self, stressed):
        assert stressed["ingest_failures"] == []
        for responses in stressed["query_log"].values():
            assert responses
            assert all(r.ok for r in responses)
        for subscriber in stressed["subscribers"]:
            assert subscriber.error is None
            assert subscriber.frames[0]["event"] == "subscribed"

    def test_all_documents_ingested(self, stressed):
        cluster = stressed["cluster"]
        expected = 1 + N_INGEST_WORKERS * DOCS_PER_WORKER
        assert cluster.documents_ingested == expected
        assert sum(cluster.documents_routed) == expected
        # dominant-entity routing spread the load over >= 2 shards
        assert sum(1 for c in cluster.documents_routed if c) >= 2

    def test_subscription_deltas_replay_exactly(self, stressed):
        """No dropped, no duplicated deltas: baseline + replay == final."""
        for subscriber in stressed["subscribers"]:
            kind = (
                "trending"
                if "trending" in subscriber.query
                else "entity-trend"
            )
            rows = dict(stressed["baselines"][subscriber.query])
            for update in subscriber.updates():
                for row in update["removed"]:
                    key = key_of_row(kind, row)
                    assert key in rows, f"removed row never added: {row}"
                    rows.pop(key)
                for row in update["added"]:
                    key = key_of_row(kind, row)
                    assert rows.get(key) != row, f"duplicate add: {row}"
                    rows[key] = row
            final = stressed["finals"][subscriber.query]
            assert rows == final, (
                f"{subscriber.query}: replayed {len(rows)} rows, "
                f"expected {len(final)}"
            )

    def test_composite_stamp_monotonic_per_stream(self, stressed):
        for subscriber in stressed["subscribers"]:
            versions = [
                frame["kg_version"]
                for frame in subscriber.frames
                if "kg_version" in frame
            ]
            assert versions, "stream carried no version stamps"
            assert versions == sorted(versions), (
                f"{subscriber.query}: stamp went backwards: {versions}"
            )

    def test_composite_stamp_monotonic_per_client(self, stressed):
        for responses in stressed["query_log"].values():
            versions = [r.kg_version for r in responses]
            assert versions == sorted(versions)

    def test_gateway_health_during_load(self, stressed):
        health = stressed["during_health"]
        assert health["ok"]
        assert health["subscriptions"] >= 2

    def test_updates_flowed(self, stressed):
        # the scenario is only meaningful if both streams saw deltas
        for subscriber in stressed["subscribers"]:
            assert subscriber.updates(), subscriber.query
