"""Unit behaviour of the sharded cluster: routing, composite stamps,
the merged-result cache, trending support-summation and standing-query
fan-out."""

from __future__ import annotations

import pytest

from repro import (
    IngestRequest,
    NousConfig,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
)
from repro.api.cluster import DocumentRouter, kind_of_query
from repro.api.http import GatewayConfig, NousGateway
from repro.api.wire import decode_payload
from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase
from repro.query.parser import parse_query


def _cluster(num_shards=3, **config_kwargs):
    config_kwargs.setdefault("min_support", 3)
    config = NousConfig(
        window_size=500, lda_iterations=8, seed=5, **config_kwargs
    )
    return ShardedNousService(
        kb_factory=KnowledgeBase,
        num_shards=num_shards,
        config=config,
        service_config=ServiceConfig(auto_start=False),
    )


def _entities_on_shards(router, wanted_spread, prefix="E"):
    """Deterministically find entity names homed on the wanted shards."""
    out = []
    i = 0
    for shard in wanted_spread:
        while True:
            name = f"{prefix}{i}"
            i += 1
            if router.shard_for_entity(name) == shard:
                out.append(name)
                break
    return out


class TestDocumentRouter:
    @pytest.fixture(scope="class")
    def router(self):
        return DocumentRouter(build_drone_kb(), num_shards=4)

    def test_dominant_entity_by_frequency(self, router):
        text = "DJI acquired GoPro. DJI launched the Phantom 3 in Shenzhen."
        assert router.dominant_entity(text) == "DJI"

    def test_multiword_alias_is_one_mention(self, router):
        # "Drone Industry" must match as one two-word mention, not as a
        # stray "drone" token.
        text = "The drone industry is growing."
        assert router.dominant_entity(text) == "Drone_Industry"

    def test_tie_breaks_lexicographically(self, router):
        assert router.dominant_entity("GoPro met DJI.") == "DJI"
        # Determinism regardless of mention order in the text.
        assert router.dominant_entity("DJI met GoPro.") == "DJI"

    def test_unknown_text_falls_back_to_doc_id_hash(self, router):
        assert router.dominant_entity("nothing known here") is None
        shard_a, entity = router.shard_for_document(
            "nothing known here", doc_id="doc-1"
        )
        assert entity is None
        assert shard_a == router.shard_for_document(
            "other unknown words", doc_id="doc-1"
        )[0]
        assert 0 <= shard_a < 4

    def test_routing_is_deterministic_and_content_addressed(self, router):
        text = "GoPro shipped the Karma Drone."
        first = router.shard_for_document(text)
        assert first == router.shard_for_document(text)
        assert first[1] == "GoPro"


class TestCompositeVersionStamp:
    def test_tuple_moves_only_on_touched_shard(self):
        with _cluster(num_shards=3) as cluster:
            subject_a, subject_b = _entities_on_shards(
                cluster.router, [0, 2]
            )
            before = cluster.shard_versions
            assert len(before) == 3
            cluster.ingest_facts([(subject_a, "rel", "X")]).raise_for_error()
            after = cluster.shard_versions
            assert after[0] > before[0]
            assert after[1] == before[1]
            assert after[2] == before[2]
            cluster.ingest_facts([(subject_b, "rel", "Y")]).raise_for_error()
            assert cluster.shard_versions[2] > after[2]

    def test_scalar_stamp_is_monotonic_sum(self):
        with _cluster(num_shards=2) as cluster:
            seen = [cluster.kg_version]
            for i in range(4):
                cluster.ingest_facts([(f"S{i}", "rel", f"O{i}")])
                seen.append(cluster.kg_version)
                assert cluster.kg_version == sum(cluster.shard_versions)
            assert seen == sorted(seen)
            assert len(set(seen)) == len(seen)

    def test_ticket_envelopes_carry_composite_stamp(self):
        with _cluster(num_shards=3) as cluster:
            ticket = cluster.submit(
                IngestRequest(text="Nothing known.", doc_id="d1")
            )
            cluster.flush()
            assert ticket.done()
            envelope = ticket.result(timeout=0)
            assert envelope.ok
            assert envelope.kg_version == cluster.kg_version

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigError):
            ShardedNousService(kb_factory=KnowledgeBase, num_shards=0)


class TestMergedResultCache:
    def test_hit_and_composite_invalidation(self):
        with _cluster(num_shards=2) as cluster:
            cluster.ingest_facts([("S0", "rel", "O0")])
            # First evaluation mints 'S0' on the shard that never saw it
            # (version moves mid-scatter), so caching starts one round
            # later, once the composite stamp is stable across a scatter.
            first = cluster.query("tell me about S0")
            assert first.ok and not first.cached
            warm = cluster.query("tell me about S0")
            assert warm.ok
            hit = cluster.query("tell me about S0")
            assert hit.cached
            assert hit.rendered == warm.rendered
            assert hit.payload == warm.payload
            assert cluster.cache_hits >= 1
            # any shard movement invalidates via the composite key
            cluster.ingest_facts([("S0", "rel", "O1")])
            after = cluster.query("tell me about S0")
            assert not after.cached
            assert after.kg_version > hit.kg_version

    def test_cached_payload_is_isolated(self):
        with _cluster(num_shards=2) as cluster:
            cluster.ingest_facts([("S0", "rel", "O0")])
            cluster.query("tell me about S0")  # mints on the empty shard
            stored = cluster.query("tell me about S0")
            stored.payload["facts"].clear()  # vandalise the caller copy
            hit = cluster.query("tell me about S0")
            assert hit.cached
            assert hit.payload["facts"]

    def test_trending_never_cached(self):
        with _cluster(num_shards=2) as cluster:
            cluster.ingest_facts([("S0", "rel", "O0")])
            assert not cluster.query("show trending patterns").cached
            assert not cluster.query("show trending patterns").cached
            assert cluster.cache_hits == 0


class TestTrendingSupportSummation:
    def test_pattern_frequent_only_after_merge(self):
        """A pattern below min_support on every shard must still be
        reported when the summed supports cross the threshold — the
        reason shards expose full support tables, not closed views."""
        with _cluster(num_shards=2, min_support=3) as cluster:
            subjects = _entities_on_shards(cluster.router, [0, 0, 1])
            facts = [
                (subjects[0], "relZ", "B0"),
                (subjects[1], "relZ", "B1"),
                (subjects[2], "relZ", "B2"),
            ]
            cluster.ingest_facts(facts).raise_for_error()
            # no shard reaches min_support on its own
            for shard in cluster.shards:
                assert shard.stream_view().supports
                assert not shard.nous.dynamic.miner.frequent_patterns()
            report = decode_payload(
                "trending", cluster.query("show trending patterns").payload
            )
            merged = {
                p.describe(): s for p, s in report.closed_frequent
            }
            assert merged == {"(?0:Thing)-[relZ]->(?1:Thing)": 3}
            assert report.newly_frequent  # router-level transition state

    def test_transitions_tracked_at_router(self):
        with _cluster(num_shards=2, min_support=2) as cluster:
            cluster.ingest_facts([("S0", "relQ", "O0"), ("S1", "relQ", "O1")])
            first = decode_payload(
                "trending", cluster.query("show trending patterns").payload
            )
            assert [p.describe() for p in first.newly_frequent] == [
                "(?0:Thing)-[relQ]->(?1:Thing)"
            ]
            second = decode_payload(
                "trending", cluster.query("show trending patterns").payload
            )
            assert second.newly_frequent == []  # consumed at the router


class TestClusterStandingQueries:
    def test_fanout_merges_shard_deltas(self):
        # The watched entity lives in the *curated* base: curated
        # content is replicated, so the mention resolves identically on
        # every shard (mention resolution is per shard — an entity known
        # only through one shard's extracted facts would resolve only
        # there; see docs/SHARDING.md).
        def factory():
            kb = KnowledgeBase()
            kb.add_entity("Watched")
            return kb

        cluster = ShardedNousService(
            kb_factory=factory,
            num_shards=3,
            config=NousConfig(window_size=500, min_support=3, seed=5),
            service_config=ServiceConfig(auto_start=False),
        )
        with cluster:
            targets = _entities_on_shards(cluster.router, [0, 1, 2])
            subscription = cluster.subscribe("what's new about Watched")
            assert cluster.subscription_count == 1
            for shard in cluster.shards:
                assert shard.subscription_count == 1
            # facts about 'Watched' land on three different shards
            # (routed by subject), every shard contributes deltas
            cluster.ingest_facts(
                [(t, "touches", "Watched") for t in targets]
            ).raise_for_error()
            updates = subscription.poll()
            assert updates
            added = [row for u in updates for row in u.added]
            assert {row["subject"] for row in added} == set(targets)
            assert not any(u.removed for u in updates)
            # merged state equals a fresh subscription's baseline
            fresh = cluster.subscribe("what's new about Watched")
            key = lambda rows: sorted(
                (r["subject"], r["object"]) for r in rows
            )
            assert key(subscription.current_rows) == key(fresh.current_rows)
            versions = [u.kg_version for u in updates]
            assert versions == sorted(versions)

    def test_trending_subscription_sums_supports(self):
        with _cluster(num_shards=2, min_support=2) as cluster:
            subjects = _entities_on_shards(cluster.router, [0, 0, 1, 1])
            subscription = cluster.subscribe("show trending patterns")
            cluster.ingest_facts(
                [(s, "relT", f"B{i}") for i, s in enumerate(subjects)]
            ).raise_for_error()
            updates = subscription.poll()
            assert updates
            final = {
                row["pattern"]: row["support"]
                for u in updates
                for row in u.added
            }
            # 2 embeddings per shard, both shards frequent: summed 4
            assert final["(?0:Thing)-[relT]->(?1:Thing)"] == 4

    def test_trending_subscription_matches_interactive_merge(self):
        """A pattern sub-threshold on every shard but frequent in the
        union must reach standing subscribers too — the shard-side
        change signal covers the full support table, and merged rows
        are recomputed exactly like the interactive query."""
        with _cluster(num_shards=2, min_support=3) as cluster:
            subjects = _entities_on_shards(cluster.router, [0, 0, 1])
            subscription = cluster.subscribe("show trending patterns")
            cluster.ingest_facts(
                [(s, "relM", f"B{i}") for i, s in enumerate(subjects)]
            ).raise_for_error()
            added = {
                row["pattern"]: row["support"]
                for u in subscription.poll()
                for row in u.added
            }
            assert added.get("(?0:Thing)-[relM]->(?1:Thing)") == 3
            # and the subscription's merged state equals the interactive
            # merged answer
            report = decode_payload(
                "trending", cluster.query("show trending patterns").payload
            )
            interactive = {
                p.describe(): s for p, s in report.closed_frequent
            }
            standing = {
                row["pattern"]: row["support"]
                for row in subscription.current_rows
            }
            assert standing == interactive

    def test_entity_subscription_dedupes_cross_shard_fact(self):
        """The same fact extracted on two shards with different
        confidences is one row (best confidence), exactly like the
        interactive entity merge."""
        def factory():
            kb = KnowledgeBase()
            kb.add_entity("Dup")
            return kb

        cluster = ShardedNousService(
            kb_factory=factory,
            num_shards=2,
            config=NousConfig(window_size=500, min_support=3, seed=5),
            service_config=ServiceConfig(auto_start=False),
        )
        with cluster:
            subscription = cluster.subscribe("tell me about Dup")
            # Drive the shards directly: routing would co-locate a
            # structured fact by subject, but NLP extraction can land
            # the same fact on two shards (different dominant entities)
            # with confidences drifted apart by per-shard trust.
            cluster.shards[0].ingest_facts(
                [("Dup", "rel", "O")], confidence=0.8
            ).raise_for_error()
            cluster.shards[1].ingest_facts(
                [("Dup", "rel", "O")], confidence=0.9
            ).raise_for_error()
            rows = [
                r
                for r in subscription.current_rows
                if (r["subject"], r["predicate"], r["object"])
                == ("Dup", "rel", "O")
            ]
            assert len(rows) == 1
            assert rows[0]["confidence"] == pytest.approx(0.9)
            # interactive merge agrees
            summary = decode_payload(
                "entity", cluster.query("tell me about Dup").payload
            )
            matching = [
                f for f in summary.facts if (f[0], f[1], f[2]) == ("Dup", "rel", "O")
            ]
            assert len(matching) == 1
            assert matching[0][3] == pytest.approx(0.9)

    def test_unsubscribe_detaches_every_shard(self):
        with _cluster(num_shards=3) as cluster:
            subscription = cluster.subscribe("what's new about X")
            cluster.unsubscribe(subscription)
            assert not subscription.active
            assert cluster.subscription_count == 0
            for shard in cluster.shards:
                assert shard.subscription_count == 0

    def test_refresh_returns_merged_updates(self):
        def factory():
            kb = KnowledgeBase()
            kb.add_entity("S0")
            return kb

        cluster = ShardedNousService(
            kb_factory=factory,
            num_shards=2,
            config=NousConfig(window_size=500, min_support=3, seed=5),
            service_config=ServiceConfig(auto_start=False),
        )
        with cluster:
            subscription = cluster.subscribe("what's new about S0")
            updates = cluster.refresh_subscriptions()
            assert updates == []  # nothing moved since subscribing
            cluster.ingest_facts([("S0", "rel", "O1")])
            polled = subscription.poll()
            assert any(
                u.subscription_id == subscription.id for u in polled
            )
            assert any(
                row["object"] == "O1" for u in polled for row in u.added
            )


class TestClusterErrorEnvelopes:
    def test_parse_error_taxonomy(self):
        with _cluster(num_shards=2) as cluster:
            response = cluster.query("??? not a query ???")
            assert not response.ok
            assert response.error.code == "query.parse"

    def test_failure_code_matches_monolith_when_all_shards_fail(self):
        from repro import NousService

        mono = NousService(
            kb=KnowledgeBase(),
            config=NousConfig(window_size=500, seed=5),
            service_config=ServiceConfig(auto_start=False),
        )
        with mono, _cluster(num_shards=2) as cluster:
            mono.ingest_facts([("S0", "rel", "O0")])
            cluster.ingest_facts([("S0", "rel", "O0")])
            expected = mono.query("how is S0 related to Nowhere99")
            response = cluster.query("how is S0 related to Nowhere99")
            assert not expected.ok and not response.ok
            assert response.error.code == expected.error.code

    def test_bad_date_rejected_at_submit(self):
        with _cluster(num_shards=2) as cluster:
            with pytest.raises(ConfigError):
                cluster.submit(
                    IngestRequest(text="DJI news.", date="not-a-date")
                )


class TestGatewayDropIn:
    def test_gateway_serves_sharded_service(self):
        kb_factory = build_drone_kb
        cluster = ShardedNousService(
            kb_factory=kb_factory,
            num_shards=3,
            config=NousConfig(window_size=200, lda_iterations=8, seed=5),
            service_config=ServiceConfig(auto_start=True, max_delay=0.01),
        )
        try:
            with NousGateway(cluster, GatewayConfig(port=0)) as gateway:
                from repro.api.http import ClientSession

                with ClientSession(gateway.url) as session:
                    health = session.healthz()
                    assert health["ok"]
                    assert health["kg_version"] == cluster.kg_version
                    ingest = session.ingest(
                        IngestRequest(
                            text="DJI acquired GoPro. DJI expanded.",
                            doc_id="g1",
                        ),
                        wait=True,
                    )
                    assert ingest.ok
                    assert ingest.kind == "ingest"
                    remote = session.query("tell me about DJI")
                    local = cluster.query("tell me about DJI")
                    assert remote.ok
                    assert remote.rendered == local.rendered
                    stats = session.statistics()
                    assert stats.ok
                    assert stats.payload["cluster"]["shards"] == 3
                    assert "cut_edges" in stats.payload["cluster"]["partition"]
        finally:
            cluster.close()


class TestPartitionAccounting:
    def test_partition_stats_counts_and_cut(self):
        with _cluster(num_shards=2) as cluster:
            cross, local = _entities_on_shards(
                cluster.router, [0, 1], prefix="P"
            )
            # local fact: both endpoints homed on shard 1; cross fact:
            # subject homed 0, object homed 1.
            cluster.ingest_facts(
                [(local, "rel", local + "x"), (cross, "rel", local)]
            )
            # object homes may vary; recompute expectations from router
            stats = cluster.partition_stats()
            assert sum(stats.edge_counts) == 2
            expected_cut = sum(
                1
                for s, o in [(local, local + "x"), (cross, local)]
                if cluster.router.shard_for_entity(s)
                != cluster.router.shard_for_entity(o)
            )
            assert stats.cut_edges == expected_cut
            assert stats.to_dict()["cut_fraction"] == pytest.approx(
                expected_cut / 2
            )

    def test_kind_of_query_matches_engine(self):
        for text, kind in [
            ("show trending patterns", "trending"),
            ("tell me about DJI", "entity"),
            ("what's new about DJI", "entity-trend"),
            ("how is DJI related to GoPro", "relationship"),
            ("why does Windermere use drones", "explanatory"),
            ("match (?a)-[rel]->(?b)", "pattern"),
        ]:
            assert kind_of_query(parse_query(text)) == kind
