"""Durable shards: snapshot + WAL crash recovery (ISSUE 6).

Fault-injection and restart-equivalence layer over
:mod:`repro.storage`:

- **Monolith restart equivalence** — a service recovered from its data
  directory (snapshot + WAL suffix, WAL alone, or WAL after a corrupt
  snapshot) answers byte-identically to the service that wrote it:
  composite stamp, statistics payload, every query payload.
- **Torn-tail degradation** — a WAL cut mid-record by a crash replays
  its intact prefix and truncates the garbage, so later appends never
  interleave with it.
- **Standing-query replay** — re-subscribing on a recovered service
  reproduces exactly the crashed service's current rows (keyed by
  :func:`repro.api.wire.key_of_row`): no delta dropped, none
  duplicated.
- **Cluster fault injection** — SIGKILL a worker subprocess; the next
  operation respawns it on its old port and WAL replay restores the
  exact pre-crash composite stamp; the restart budget bounds the loop.

Everything writes under ``tmp_path`` only (CI asserts no data
directory ever lands in the repo tree).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro import (
    NousConfig,
    NousService,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
)
from repro.api.cluster.service import kind_of_query
from repro.api.wire import key_of_row
from repro.errors import ClusterError, StorageError
from repro.storage import JsonLinesBackend

QUERIES = [
    "tell me about DJI",
    "show trending patterns",
    "what's new about DJI",
    "match (?a)-[acquired]->(?b)",
]

DOCS = [
    {
        "text": "DJI acquired GoPro.",
        "doc_id": "d0",
        "date": "2015-06-01",
        "source": "recovery",
    },
    {
        "text": "Intel partnered with PrecisionHawk.",
        "doc_id": "d1",
        "date": "2015-06-02",
        "source": "recovery",
    },
    {
        "text": "Amazon acquired Kiva Systems.",
        "doc_id": "d2",
        "date": "2015-06-03",
        "source": "recovery",
    },
    {
        "text": "DJI partnered with Boeing.",
        "doc_id": "d3",
        "date": "2015-06-04",
        "source": "recovery",
    },
]

FACTS = [
    ("DJI", "acquired", "GoPro"),
    ("Intel", "partnerOf", "PrecisionHawk"),
    ("Google", "acquired", "Titan_Aerospace"),
]


def _config() -> NousConfig:
    return NousConfig(
        window_size=100, min_support=2, lda_iterations=10,
        retrain_every=0, seed=3,
    )


def _service(data_dir=None, **overrides) -> NousService:
    service_config = ServiceConfig(
        auto_start=False, max_batch=2, **overrides
    )
    return NousService(
        kb=build_drone_kb(),
        config=_config(),
        service_config=service_config,
        data_dir=data_dir,
    )


def _ingest(service, docs) -> None:
    from repro.api.envelopes import IngestRequest

    for doc in docs:
        service.submit(IngestRequest.from_dict(doc))
        service.flush()


def _fingerprint(service) -> dict:
    out = {
        "kg_version": service.kg_version,
        "num_facts": service.nous.kb.num_facts,
        "documents_ingested": service.documents_ingested,
        "batches_drained": service.batches_drained,
        "documents_drained": service.documents_drained,
        "stats": json.dumps(service.statistics().payload, sort_keys=True),
    }
    for text in QUERIES:
        envelope = service.query(text)
        out[text] = json.dumps(
            {
                "ok": envelope.ok,
                "payload": envelope.payload,
                "rendered": envelope.rendered,
            },
            sort_keys=True,
        )
    return out


class TestMonolithRecovery:
    def test_wal_only_replay_is_byte_identical(self, tmp_path):
        data_dir = str(tmp_path / "wal-only")
        first = _service(data_dir)
        _ingest(first, DOCS)
        assert first.ingest_facts(FACTS, date="2015-07-01").ok
        reference = _fingerprint(first)
        first.close()
        assert os.path.exists(os.path.join(data_dir, "wal.jsonl"))
        assert not os.path.exists(os.path.join(data_dir, "snapshot.json"))

        recovered = _service(data_dir)
        assert _fingerprint(recovered) == reference
        recovered.close()

    def test_snapshot_plus_wal_suffix(self, tmp_path):
        data_dir = str(tmp_path / "snap")
        first = _service(data_dir)
        _ingest(first, DOCS[:2])
        assert first.snapshot() == first.kg_version
        _ingest(first, DOCS[2:])
        assert first.ingest_facts(FACTS, date="2015-07-01").ok
        reference = _fingerprint(first)
        wal_total = first._wal_records
        first.close()
        assert os.path.exists(os.path.join(data_dir, "snapshot.json"))

        recovered = _service(data_dir)
        # Only the records the snapshot does not cover were replayed.
        backend = JsonLinesBackend(data_dir)
        covered = backend.read_snapshot()["wal_covered"]
        assert 0 < covered < wal_total
        assert _fingerprint(recovered) == reference
        recovered.close()

    def test_corrupt_snapshot_degrades_to_full_wal_replay(self, tmp_path):
        data_dir = str(tmp_path / "corrupt")
        first = _service(data_dir)
        _ingest(first, DOCS)
        first.snapshot()
        assert first.ingest_facts(FACTS, date="2015-07-01").ok
        reference = _fingerprint(first)
        first.close()

        snapshot_path = os.path.join(data_dir, "snapshot.json")
        blob = bytearray(open(snapshot_path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF  # flip one byte inside the state
        with open(snapshot_path, "wb") as handle:
            handle.write(blob)
        assert JsonLinesBackend(data_dir).read_snapshot() is None

        recovered = _service(data_dir)
        assert _fingerprint(recovered) == reference
        recovered.close()

    def test_torn_wal_tail_is_dropped_and_truncated(self, tmp_path):
        data_dir = str(tmp_path / "torn")
        first = _service(data_dir)
        _ingest(first, DOCS[:2])
        reference = _fingerprint(first)
        _ingest(first, DOCS[2:])
        first.close()

        # Tear the crash boundary: cut the last record off mid-line.
        wal_path = os.path.join(data_dir, "wal.jsonl")
        raw = open(wal_path, "rb").read()
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:2]) + b"\n" + lines[2][: len(lines[2]) // 2]
        with open(wal_path, "wb") as handle:
            handle.write(torn)

        recovered = _service(data_dir)
        # The intact prefix is exactly the first two micro-batches.
        assert _fingerprint(recovered) == reference
        # ... and the tail was truncated, so new appends stay contiguous.
        assert os.path.getsize(wal_path) < len(torn)
        _ingest(recovered, DOCS[2:])
        after_reingest = _fingerprint(recovered)
        recovered.close()
        again = _service(data_dir)
        assert _fingerprint(again) == after_reingest
        again.close()

    def test_query_minted_entities_are_durable(self, tmp_path):
        data_dir = str(tmp_path / "minted")
        first = _service(data_dir)
        _ingest(first, DOCS[:2])
        # An entity query for an unknown mention mints it (the
        # monolith's documented behaviour) — that mutation must be as
        # durable as an ingest.
        first.query("tell me about Zephyranthes Aeronautics")
        reference = _fingerprint(first)
        first.close()

        recovered = _service(data_dir)
        assert _fingerprint(recovered) == reference
        recovered.close()

    def test_storage_calls_require_data_dir(self, tmp_path):
        service = _service(data_dir=None)
        with pytest.raises(StorageError):
            service.snapshot()
        with pytest.raises(StorageError):
            service.recover()
        service.close()

    def test_recover_refuses_used_engine(self, tmp_path):
        data_dir = str(tmp_path / "used")
        service = _service(data_dir)
        _ingest(service, DOCS[:1])
        with pytest.raises(StorageError):
            service.recover()
        service.close()

    def test_every_micro_batch_is_one_wal_record(self, tmp_path):
        data_dir = str(tmp_path / "acks")
        service = _service(data_dir)
        _ingest(service, DOCS)  # one submit+flush per document
        assert service.ingest_facts(FACTS, date="2015-07-01").ok
        service.close()
        records = JsonLinesBackend(data_dir).read_wal()
        assert len(records) == len(DOCS) + 1
        assert records[-1]["service"]["documents_drained"] == len(DOCS)

    def test_snapshot_every_autosnapshots(self, tmp_path):
        data_dir = str(tmp_path / "auto")
        service = _service(data_dir, snapshot_every=2)
        _ingest(service, DOCS)
        service.close()
        state = JsonLinesBackend(data_dir).read_snapshot()
        assert state is not None
        assert state["wal_covered"] >= 2


class TestSubscriptionReplay:
    def test_replay_rows_match_fresh_evaluation(self, tmp_path):
        data_dir = str(tmp_path / "subs")
        query_text = "match (?a)-[acquired]->(?b)"
        first = _service(data_dir)
        subscription = first.subscribe(query_text)
        kind = kind_of_query(subscription.query)
        _ingest(first, DOCS)
        updates = subscription.poll()
        assert updates, "fixture produced no deltas"
        # Fold the deltas the crashed service delivered, keyed the way
        # the delta protocol keys rows.
        folded = {}
        for update in updates:
            for row in update.removed:
                folded.pop(key_of_row(kind, row), None)
            for row in update.added:
                folded[key_of_row(kind, row)] = row
        assert folded  # deltas actually added rows
        crashed_rows = {
            key_of_row(kind, row): row
            for row in subscription.current_rows
        }
        first.close()

        recovered = _service(data_dir)
        fresh = recovered.subscribe(query_text)
        fresh_rows = {
            key_of_row(kind, row): row for row in fresh.current_rows
        }
        # Replay-then-subscribe == live delta stream: nothing dropped,
        # nothing duplicated.
        assert fresh_rows == crashed_rows
        assert set(folded) <= set(fresh_rows)
        recovered.close()


@pytest.mark.skipif(
    os.environ.get("PYTHONHASHSEED", "random") == "random",
    reason="cross-interpreter byte-identity needs PYTHONHASHSEED pinned "
    "(the CI durability job pins 0)",
)
class TestClusterFaultInjection:
    """SIGKILL a worker subprocess and recover through the supervisor."""

    def _cluster(self, tmp_path, **overrides):
        return ShardedNousService(
            num_shards=2,
            config=_config(),
            service_config=ServiceConfig(max_batch=2),
            shard_mode="process",
            kb_spec="drone",
            data_dir=str(tmp_path / "cluster"),
            restart_backoff=0.05,
            **overrides,
        )

    def _kill(self, cluster, index):
        worker = cluster._manager.workers[index]
        worker.process.kill()  # SIGKILL: no atexit, no flush, no mercy
        worker.process.wait(timeout=10)
        assert index in cluster.dead_shards()

    def test_sigkill_recovers_exact_composite_stamp(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            assert cluster.ingest_facts(FACTS, date="2015-07-01").ok
            cluster.flush()
            pre_queries = {
                text: cluster.query(text).payload
                for text in ("tell me about DJI", "show trending patterns")
            }
            pre_stamp = cluster.shard_versions

            self._kill(cluster, 0)
            recovered = cluster.recover_dead_shards()
            assert recovered == [0]
            assert cluster.dead_shards() == []
            assert cluster.shard_versions == pre_stamp
            for text, payload in pre_queries.items():
                assert cluster.query(text).payload == payload
            # The cluster keeps ingesting normally after recovery.
            assert cluster.ingest_facts(
                [("Parrot", "partnerOf", "GoPro")], date="2015-07-02"
            ).ok
            assert cluster.cluster_info()["shard_restarts"] == [1, 0]
        finally:
            cluster.close()

    def test_operations_self_heal_through_the_gate(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            assert cluster.ingest_facts(FACTS, date="2015-07-01").ok
            pre_stamp = cluster.shard_versions
            self._kill(cluster, 1)
            # No explicit recover call: the next operation's entry gate
            # respawns the dead worker before scattering.
            envelope = cluster.statistics()
            assert envelope.ok
            assert cluster.dead_shards() == []
            assert cluster.shard_versions == pre_stamp
        finally:
            cluster.close()

    def test_restart_budget_bounds_the_loop(self, tmp_path):
        cluster = self._cluster(tmp_path, max_restarts=1)
        try:
            assert cluster.ingest_facts(FACTS, date="2015-07-01").ok
            self._kill(cluster, 0)
            assert cluster.recover_dead_shards() == [0]
            self._kill(cluster, 0)
            with pytest.raises(ClusterError, match="restart budget"):
                cluster.recover_dead_shards()
        finally:
            cluster.close()

    def test_standing_queries_survive_respawn(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            subscription = cluster.subscribe("match (?a)-[acquired]->(?b)")
            assert cluster.ingest_facts(FACTS, date="2015-07-01").ok
            cluster.refresh_subscriptions()
            rows_before = {
                key_of_row(subscription.kind, row): row
                for row in subscription.current_rows
            }
            assert rows_before
            self._kill(cluster, 0)
            assert cluster.recover_dead_shards() == [0]
            # The re-subscribed recovered worker reproduces its rows.
            rows_after = {
                key_of_row(subscription.kind, row): row
                for row in subscription.current_rows
            }
            assert rows_after == rows_before
            cluster.refresh_subscriptions()
            assert {
                key_of_row(subscription.kind, row): row
                for row in subscription.current_rows
            } == rows_before
        finally:
            cluster.close()


class TestDataDirHygiene:
    """No test or benchmark may persist inside the repo tree.

    Every durable fixture in this suite (and in the benchmarks) hands
    ``data_dir`` a ``tmp_path`` / ``tempfile`` location.  A hard-coded
    relative path would drop ``snapshot.json``/``wal.jsonl`` into the
    working copy — invisible locally until it lands in a commit.
    """

    REPO = Path(__file__).resolve().parents[2]

    def test_no_literal_data_dir_in_tests_or_benchmarks(self):
        literal = re.compile(r"""data_dir\s*=\s*['"]""")
        offenders = []
        for tree in ("tests", "benchmarks"):
            for path in sorted((self.REPO / tree).rglob("*.py")):
                for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1
                ):
                    if literal.search(line):
                        offenders.append(
                            f"{path.relative_to(self.REPO)}:{lineno}: "
                            f"{line.strip()}"
                        )
        assert not offenders, (
            "data_dir must come from tmp_path/tempfile, never a string "
            "literal:\n" + "\n".join(offenders)
        )

    def test_no_persistence_files_in_the_repo_tree(self):
        strays = [
            path.relative_to(self.REPO)
            for name in ("wal.jsonl", "snapshot.json")
            for path in self.REPO.rglob(name)
            if ".git" not in path.parts
        ]
        assert not strays, f"stray persistence files in the repo: {strays}"
