"""Wire compression, conditional GET and the shared query cache (ISSUE 8).

Property tests for the leaner wire: gzip round-trip identity for every
payload codec the gateway serves, the client/server negotiation matrix
(every combination of gzip/identity must decode to the same envelopes),
the decompression-bomb guard (a tiny compressed body may not smuggle an
oversized payload past ``max_body_bytes``), ``ETag`` / ``If-None-Match``
semantics on ``/v1/stats``, and the cross-replica shared query cache.
"""

from __future__ import annotations

import http.client
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.http import (
    ClientSession,
    GatewayConfig,
    NousGateway,
    SharedQueryCache,
    accepts_gzip,
    gunzip_bytes,
    gzip_bytes,
)
from repro.api.wire import decode_payload

SEED = 3
N_ARTICLES = 12

#: One query per wire payload codec the query surface can emit.
CODEC_QUERIES = [
    ("entity", "tell me about DJI"),
    ("relationship", "how is GoPro related to DJI"),
    ("explanatory", "why does Windermere use drones"),
    ("pattern", "match (?a:Company)-[acquired]->(?b:Company)"),
    ("trending", "show trending patterns"),
    ("entity-trend", "what's new about DJI"),
]


@pytest.fixture(scope="module")
def service():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=SEED)
    )
    generate_descriptions(kb, seed=SEED)
    with NousService(
        kb=kb, config=NousConfig(window_size=400, seed=SEED)
    ) as svc:
        svc.submit_many(articles)
        svc.flush()
        yield svc


@pytest.fixture(scope="module")
def gzip_gateway(service):
    # gzip_min_bytes=1: every non-empty body compresses once the client
    # agrees, so the negotiation itself is what the tests observe.
    config = GatewayConfig(max_body_bytes=64 * 1024, gzip_min_bytes=1)
    with NousGateway(service, config) as gw:
        yield gw


@pytest.fixture(scope="module")
def identity_gateway(service):
    # A threshold no body reaches: the server never compresses, which
    # is the "server: identity" column of the negotiation matrix.
    config = GatewayConfig(
        max_body_bytes=64 * 1024, gzip_min_bytes=1 << 30
    )
    with NousGateway(service, config) as gw:
        yield gw


def _raw(gateway, method, path, body=None, headers=None):
    """One raw request; returns (status, headers-dict, raw-bytes)."""
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.headers.items()), response.read()
    finally:
        conn.close()


class TestGzipHelpers:
    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, data):
        assert gunzip_bytes(gzip_bytes(data)) == data

    @given(st.binary(max_size=2048))
    @settings(max_examples=30, deadline=None)
    def test_compression_is_deterministic(self, data):
        # mtime is pinned to 0, so equal input bytes give equal output
        # bytes — caches and byte-level wire tests depend on this.
        assert gzip_bytes(data) == gzip_bytes(data)

    @given(st.binary(min_size=1, max_size=2048))
    @settings(max_examples=30, deadline=None)
    def test_limit_is_exact(self, data):
        compressed = gzip_bytes(data)
        assert gunzip_bytes(compressed, limit=len(data)) == data
        with pytest.raises(ValueError):
            gunzip_bytes(compressed, limit=len(data) - 1)

    @pytest.mark.parametrize(
        "header,expected",
        [
            (None, False),
            ("", False),
            ("identity", False),
            ("gzip", True),
            ("x-gzip", True),
            ("*", True),
            ("deflate, gzip;q=0.5", True),
            ("gzip;q=0", False),
            ("gzip;q=junk", False),
            ("GZIP", True),
            ("identity;q=1, gzip;q=0.001", True),
        ],
    )
    def test_accept_encoding_matrix(self, header, expected):
        assert accepts_gzip(header) is expected


class TestPayloadCodecRoundTrips:
    @pytest.mark.parametrize("kind,text", CODEC_QUERIES)
    def test_every_codec_survives_gzip(self, service, kind, text):
        envelope = service.query(text)
        assert envelope.ok, f"{text!r} failed: {envelope.error}"
        assert envelope.kind == kind
        wire = json.dumps(envelope.to_dict(), sort_keys=True).encode("utf-8")
        assert gunzip_bytes(gzip_bytes(wire)) == wire
        # ... and the inflated bytes still decode to an equal payload.
        body = json.loads(gunzip_bytes(gzip_bytes(wire)))
        assert decode_payload(kind, body["payload"]) == decode_payload(
            kind, envelope.payload
        )

    def test_statistics_codec_survives_gzip(self, service):
        envelope = service.statistics()
        wire = json.dumps(envelope.to_dict(), sort_keys=True).encode("utf-8")
        body = json.loads(gunzip_bytes(gzip_bytes(wire)))
        assert decode_payload("statistics", body["payload"]) == decode_payload(
            "statistics", envelope.payload
        )


class TestNegotiationMatrix:
    @pytest.mark.parametrize("server_gzip", [True, False])
    @pytest.mark.parametrize("client_gzip", [True, False])
    def test_all_four_modes_decode_identically(
        self, gzip_gateway, identity_gateway, service, server_gzip, client_gzip
    ):
        gateway = gzip_gateway if server_gzip else identity_gateway
        reference = service.query("tell me about DJI").to_dict()
        with ClientSession(
            gateway.url, timeout=30.0, compress=client_gzip
        ) as session:
            envelope = session.query("tell me about DJI")
        remote = envelope.to_dict()
        # The stamp is read per-request; everything else must be equal.
        assert remote["payload"] == reference["payload"]
        assert remote["rendered"] == reference["rendered"]
        assert remote["ok"] and remote["kind"] == reference["kind"]

    def test_body_compressed_only_when_negotiated(self, gzip_gateway):
        payload = json.dumps({"text": "tell me about DJI"})
        status, headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/query",
            body=payload,
            headers={
                "Content-Type": "application/json",
                "Accept-Encoding": "gzip",
            },
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "gzip"
        assert headers.get("Vary") == "Accept-Encoding"
        assert json.loads(gunzip_bytes(raw))["ok"] is True

        status, headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/query",
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert "Content-Encoding" not in headers
        assert headers.get("Vary") == "Accept-Encoding"
        assert json.loads(raw)["ok"] is True

    def test_identity_server_never_compresses(self, identity_gateway):
        status, headers, raw = _raw(
            identity_gateway,
            "GET",
            "/v1/stats",
            headers={"Accept-Encoding": "gzip"},
        )
        assert status == 200
        assert "Content-Encoding" not in headers
        assert json.loads(raw)["ok"] is True


class TestRequestDecompression:
    def test_gzipped_request_body_accepted(self, gzip_gateway):
        text = "DJI announced a new drone platform. " * 40
        body = gzip_bytes(
            json.dumps({"text": text, "doc_id": "gz-doc-1"}).encode("utf-8")
        )
        status, _headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/ingest?wait=1",
            body=body,
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "gzip",
            },
        )
        assert status == 200
        data = json.loads(raw)
        assert data["ok"] is True
        assert data["payload"]["doc_id"] == "gz-doc-1"

    def test_decompression_bomb_is_rejected_with_413(self, gzip_gateway):
        # ~2.5 MB of JSON squeezes under the 64 KiB pre-read length
        # check; the post-decompression guard must still refuse it.
        huge = json.dumps({"text": "a" * (2_500_000)}).encode("utf-8")
        bomb = gzip_bytes(huge)
        assert len(bomb) < gzip_gateway.config.max_body_bytes
        status, _headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/query",
            body=bomb,
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "gzip",
            },
        )
        assert status == 413
        assert json.loads(raw)["error"]["code"] == "http.payload_too_large"

    def test_invalid_gzip_body_is_a_400(self, gzip_gateway):
        status, _headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/query",
            body=b"\x1f\x8bnot actually gzip",
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "gzip",
            },
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "http.bad_request"

    def test_unsupported_content_encoding_is_a_400(self, gzip_gateway):
        status, _headers, raw = _raw(
            gzip_gateway,
            "POST",
            "/v1/query",
            body=json.dumps({"text": "tell me about DJI"}),
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "br",
            },
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "http.bad_request"


class TestStatsEtag:
    def test_fresh_response_carries_the_stamp_etag(
        self, gzip_gateway, service
    ):
        status, headers, raw = _raw(gzip_gateway, "GET", "/v1/stats")
        assert status == 200
        assert headers.get("ETag") == f'"kg-default-{service.kg_version}"'
        assert json.loads(raw)["ok"] is True

    def test_matching_validator_gets_an_empty_304(
        self, gzip_gateway, service
    ):
        etag = f'"kg-default-{service.kg_version}"'
        status, headers, raw = _raw(
            gzip_gateway, "GET", "/v1/stats",
            headers={"If-None-Match": etag},
        )
        assert status == 304
        assert raw == b""
        assert headers.get("ETag") == etag
        assert headers.get("Content-Length") == "0"

    def test_stale_validator_gets_a_fresh_body(self, gzip_gateway, service):
        status, headers, raw = _raw(
            gzip_gateway, "GET", "/v1/stats",
            headers={"If-None-Match": '"kg-im-out-of-date"'},
        )
        assert status == 200
        assert headers.get("ETag") == f'"kg-default-{service.kg_version}"'
        assert json.loads(raw)["ok"] is True

    def test_client_session_revalidates_transparently(
        self, gzip_gateway, service
    ):
        with ClientSession(gzip_gateway.url, timeout=30.0) as session:
            first = session.statistics()
            second = session.statistics()  # served via If-None-Match/304
        assert first.ok and second.ok
        assert second.to_dict() == first.to_dict()
        assert decode_payload("statistics", second.payload) == decode_payload(
            "statistics", service.statistics().payload
        )


class TestSharedQueryCache:
    def test_unit_round_trip_and_stamp_isolation(self, tmp_path):
        cache = SharedQueryCache(str(tmp_path))
        assert cache.get("tell me about DJI", 7) is None
        cache.put("tell me about DJI", 7, 200, {"ok": True, "kind": "entity"})
        assert cache.get("tell me about DJI", 7) == (
            200,
            {"ok": True, "kind": "entity"},
        )
        # A moved stamp must miss: stale state may never be served.
        assert cache.get("tell me about DJI", 8) is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 2

    def test_malformed_entry_reads_as_miss(self, tmp_path):
        cache = SharedQueryCache(str(tmp_path))
        cache.put("q", 1, 200, {"ok": True})
        path = cache._path("q", 1)
        path.write_text("{not json", "utf-8")
        assert cache.get("q", 1) is None

    def test_prunes_oldest_past_max_entries(self, tmp_path):
        cache = SharedQueryCache(str(tmp_path), max_entries=3)
        for i in range(6):
            cache.put(f"q{i}", 1, 200, {"i": i})
        assert cache.stats()["entries"] <= 3

    def test_replicas_share_hits_through_one_directory(
        self, service, tmp_path
    ):
        cache_dir = str(tmp_path / "shared")
        config_a = GatewayConfig(shared_cache_dir=cache_dir)
        config_b = GatewayConfig(shared_cache_dir=cache_dir)
        with NousGateway(service, config_a) as gw_a:
            with NousGateway(service, config_b) as gw_b:
                with ClientSession(gw_a.url, timeout=30.0) as session_a:
                    first = session_a.query("tell me about DJI")
                with ClientSession(gw_b.url, timeout=30.0) as session_b:
                    second = session_b.query("tell me about DJI")
                    health = session_b.healthz()
        assert first.ok and second.ok
        assert second.payload == first.payload
        # Replica B answered from the entry replica A stored.
        assert health["shared_cache"]["hits"] >= 1
        assert health["shared_cache"]["entries"] >= 1

    def test_trending_is_never_cached(self, service, tmp_path):
        cache_dir = str(tmp_path / "trending")
        config = GatewayConfig(shared_cache_dir=cache_dir)
        with NousGateway(service, config) as gw:
            with ClientSession(gw.url, timeout=30.0) as session:
                assert session.query("show trending patterns").ok
                health = session.healthz()
        # Trending evaluation consumes miner state — the engine refuses
        # to cache it, and the gateway must follow the same rule.
        assert health["shared_cache"]["entries"] == 0


class TestSubscribeStreamGzip:
    def test_gzipped_and_plain_streams_carry_the_same_frames(
        self, gzip_gateway
    ):
        with ClientSession(gzip_gateway.url, timeout=30.0) as session:
            with session.subscribe(
                "match (?a:Company)-[acquired]->(?b:Company)",
                max_seconds=0.5,
            ) as stream:
                assert stream._decompressor is not None
                compressed_frames = list(stream)
        with ClientSession(
            gzip_gateway.url, timeout=30.0, compress=False
        ) as session:
            with session.subscribe(
                "match (?a:Company)-[acquired]->(?b:Company)",
                max_seconds=0.5,
            ) as stream:
                assert stream._decompressor is None
                plain_frames = list(stream)

        def strip(frames):
            return [
                {k: v for k, v in frame.items() if k != "subscription_id"}
                for frame in frames
            ]

        assert strip(compressed_frames) == strip(plain_frames)
        assert compressed_frames[0]["event"] == "subscribed"
        assert compressed_frames[-1]["event"] == "bye"

    def test_snapshot_hello_survives_compression(self, gzip_gateway):
        with ClientSession(gzip_gateway.url, timeout=30.0) as session:
            with session.subscribe(
                "match (?a:Company)-[acquired]->(?b:Company)",
                snapshot=True,
                max_seconds=0.5,
            ) as stream:
                hello = next(iter(stream))
        assert hello["event"] == "subscribed"
        assert "rows" in hello and "baseline_version" in hello
