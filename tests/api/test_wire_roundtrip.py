"""The wire-codec round-trip property (ISSUE 2 acceptance criterion).

For every query class: ``decode_payload(kind, encode_payload(kind, x))``
must reproduce payload *equality*, and the encoded form must survive an
actual JSON dump/load (process boundary).
"""

import json

import pytest

from repro.api.wire import (
    date_from_wire,
    date_to_wire,
    decode_payload,
    delta_rows,
    edge_from_wire,
    edge_to_wire,
    encode_payload,
)
from repro.core.pipeline import IngestResult, Nous, NousConfig
from repro.core.statistics import compute_statistics
from repro.errors import QueryError
from repro.graph.property_graph import Edge
from repro.nlp.dates import SimpleDate, parse_date
from repro.query import QueryEngine

QUERY_TEXTS = [
    "tell me about DJI",
    "show trending patterns",
    "what's new about DJI",
    "how is GoPro related to DJI",
    "why does Windermere use drones",
    "match (?a:Company)-[partnerOf]->(?b:Company)",
]


@pytest.fixture(scope="module")
def engine():
    nous = Nous(config=NousConfig(
        window_size=100, min_support=2, lda_iterations=10, retrain_every=0
    ))
    nous.ingest(
        "GoPro partnered with DJI in June 2015.",
        doc_id="a", date=parse_date("2015-06-10"), source="wsj",
    )
    nous.ingest(
        "Intel partnered with PrecisionHawk in July 2015.",
        doc_id="b", date=parse_date("2015-07-02"), source="wsj",
    )
    nous.ingest(
        "Amazon acquired Kiva Systems for $775 million in March 2012.",
        doc_id="c", date=parse_date("2012-03-19"), source="wsj",
    )
    return QueryEngine(nous)


class TestRoundTripProperty:
    @pytest.mark.parametrize("text", QUERY_TEXTS)
    def test_query_payload_round_trips_through_json(self, engine, text):
        result = engine.execute_text(text)
        assert result.result_count > 0, f"degenerate fixture for {text!r}"
        wire = encode_payload(result.kind, result.payload)
        # Must survive a *real* process boundary, not just a dict copy.
        over_the_wire = json.loads(json.dumps(wire, sort_keys=True))
        decoded = decode_payload(result.kind, over_the_wire)
        assert decoded == result.payload

    def test_statistics_round_trips(self, engine):
        stats = compute_statistics(engine.nous.kb)
        wire = json.loads(json.dumps(encode_payload("statistics", stats)))
        assert decode_payload("statistics", wire) == stats

    def test_ingest_result_round_trips(self, engine):
        result = engine.nous.ingest(
            "Parrot partnered with GoPro in May 2016.",
            doc_id="d", date=parse_date("2016-05-02"), source="wsj",
        )
        wire = json.loads(json.dumps(encode_payload("ingest", result)))
        assert decode_payload("ingest", wire) == result

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            encode_payload("nonsense", object())
        with pytest.raises(QueryError):
            decode_payload("nonsense", {})


class TestLeafCodecs:
    @pytest.mark.parametrize("date", [
        None,
        SimpleDate(2015),
        SimpleDate(2015, 6),
        SimpleDate(2015, 6, 10),
    ])
    def test_dates(self, date):
        assert date_from_wire(date_to_wire(date)) == date

    def test_edge_props_with_simple_date(self):
        edge = Edge(
            eid=7, src="DJI", dst="GoPro", label="partnerOf",
            props={
                "confidence": 0.8,
                "source": "wsj",
                "curated": False,
                "date": SimpleDate(2015, 6, 10),
            },
        )
        wire = json.loads(json.dumps(edge_to_wire(edge)))
        assert edge_from_wire(wire) == edge


class TestDeltaRows:
    def test_entity_trend_rows_are_keyed_and_stable(self, engine):
        result = engine.execute_text("what's new about DJI")
        rows = delta_rows("entity-trend", result.payload)
        assert len(rows) == result.result_count
        # Same payload -> identical keys (diffable across evaluations).
        assert rows.keys() == delta_rows("entity-trend", result.payload).keys()

    def test_trending_rows_keyed_by_pattern(self, engine):
        report = engine.nous.trending()
        rows = delta_rows("trending", report.closed_frequent)
        assert len(rows) == len(report.closed_frequent)
        for key, row in rows.items():
            assert row["pattern"] == key
            assert row["support"] >= 1

    def test_unsupported_kind_rejected(self):
        with pytest.raises(QueryError):
            delta_rows("statistics", IngestResult(doc_id="x"))
