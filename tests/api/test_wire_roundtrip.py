"""The wire-codec round-trip property (ISSUE 2 acceptance criterion).

For every query class: ``decode_payload(kind, encode_payload(kind, x))``
must reproduce payload *equality*, and the encoded form must survive an
actual JSON dump/load (process boundary).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.wire import (
    compute_request_from_wire,
    compute_request_to_wire,
    compute_response_from_wire,
    compute_response_to_wire,
    date_from_wire,
    date_to_wire,
    decode_payload,
    delta_rows,
    edge_from_wire,
    edge_to_wire,
    encode_payload,
    timed_edge_from_wire,
    timed_edge_to_wire,
    triple_from_wire,
    triple_to_wire,
)
from repro.compute.protocol import COMPUTE_OPS, ComputeRequest, ComputeResponse
from repro.core.pipeline import IngestResult, Nous, NousConfig
from repro.core.statistics import compute_statistics
from repro.errors import QueryError
from repro.graph.property_graph import Edge
from repro.graph.temporal import TimedEdge
from repro.kb.triples import Triple
from repro.nlp.dates import SimpleDate, parse_date
from repro.query import QueryEngine
from repro.storage import restore_nous, snapshot_nous

QUERY_TEXTS = [
    "tell me about DJI",
    "show trending patterns",
    "what's new about DJI",
    "how is GoPro related to DJI",
    "why does Windermere use drones",
    "match (?a:Company)-[partnerOf]->(?b:Company)",
    "pagerank top 5",
    "connected components",
    "degree centrality top 5",
]


@pytest.fixture(scope="module")
def engine():
    nous = Nous(config=NousConfig(
        window_size=100, min_support=2, lda_iterations=10, retrain_every=0
    ))
    nous.ingest(
        "GoPro partnered with DJI in June 2015.",
        doc_id="a", date=parse_date("2015-06-10"), source="wsj",
    )
    nous.ingest(
        "Intel partnered with PrecisionHawk in July 2015.",
        doc_id="b", date=parse_date("2015-07-02"), source="wsj",
    )
    nous.ingest(
        "Amazon acquired Kiva Systems for $775 million in March 2012.",
        doc_id="c", date=parse_date("2012-03-19"), source="wsj",
    )
    return QueryEngine(nous)


class TestRoundTripProperty:
    @pytest.mark.parametrize("text", QUERY_TEXTS)
    def test_query_payload_round_trips_through_json(self, engine, text):
        result = engine.execute_text(text)
        assert result.result_count > 0, f"degenerate fixture for {text!r}"
        wire = encode_payload(result.kind, result.payload)
        # Must survive a *real* process boundary, not just a dict copy.
        over_the_wire = json.loads(json.dumps(wire, sort_keys=True))
        decoded = decode_payload(result.kind, over_the_wire)
        assert decoded == result.payload

    def test_statistics_round_trips(self, engine):
        stats = compute_statistics(engine.nous.kb)
        wire = json.loads(json.dumps(encode_payload("statistics", stats)))
        assert decode_payload("statistics", wire) == stats

    def test_ingest_result_round_trips(self, engine):
        result = engine.nous.ingest(
            "Parrot partnered with GoPro in May 2016.",
            doc_id="d", date=parse_date("2016-05-02"), source="wsj",
        )
        wire = json.loads(json.dumps(encode_payload("ingest", result)))
        assert decode_payload("ingest", wire) == result

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            encode_payload("nonsense", object())
        with pytest.raises(QueryError):
            decode_payload("nonsense", {})


class TestLeafCodecs:
    @pytest.mark.parametrize("date", [
        None,
        SimpleDate(2015),
        SimpleDate(2015, 6),
        SimpleDate(2015, 6, 10),
    ])
    def test_dates(self, date):
        assert date_from_wire(date_to_wire(date)) == date

    def test_edge_props_with_simple_date(self):
        edge = Edge(
            eid=7, src="DJI", dst="GoPro", label="partnerOf",
            props={
                "confidence": 0.8,
                "source": "wsj",
                "curated": False,
                "date": SimpleDate(2015, 6, 10),
            },
        )
        wire = json.loads(json.dumps(edge_to_wire(edge)))
        assert edge_from_wire(wire) == edge


# ---------------------------------------------------------------------------
# property-based round trips for the snapshot/WAL state codecs
# ---------------------------------------------------------------------------

_PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ .$-",
    min_size=1,
    max_size=16,
)

_simple_dates = st.one_of(
    st.none(),
    st.builds(SimpleDate, st.integers(1900, 2100)),
    st.builds(SimpleDate, st.integers(1900, 2100), st.integers(1, 12)),
    st.builds(
        SimpleDate,
        st.integers(1900, 2100),
        st.integers(1, 12),
        st.integers(1, 28),
    ),
)

_triples = st.builds(
    Triple,
    subject=_identifiers,
    predicate=_identifiers,
    object=_identifiers,
    confidence=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    source=_identifiers,
    date=_simple_dates,
    curated=st.booleans(),
)

_prop_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    _identifiers,
    _simple_dates.filter(lambda d: d is not None),
)

_timed_edges = st.builds(
    TimedEdge,
    src=_identifiers,
    dst=_identifiers,
    label=_identifiers,
    timestamp=st.floats(
        min_value=0.0, max_value=2**40, allow_nan=False
    ),
    props=st.lists(
        st.tuples(_identifiers, _prop_values),
        max_size=4,
        unique_by=lambda pair: pair[0],
    ).map(tuple),
)


class TestStateCodecProperties:
    """The durable-state leaf codecs must survive a real JSON boundary
    for *arbitrary* values, not just the ones today's engine emits —
    snapshots written now are read back by future processes."""

    @_PROPERTY_SETTINGS
    @given(triple=_triples)
    def test_triple_round_trips(self, triple):
        wire = json.loads(json.dumps(triple_to_wire(triple), sort_keys=True))
        assert triple_from_wire(wire) == triple

    @_PROPERTY_SETTINGS
    @given(edge=_timed_edges)
    def test_timed_edge_round_trips(self, edge):
        wire = json.loads(json.dumps(timed_edge_to_wire(edge), sort_keys=True))
        assert timed_edge_from_wire(wire) == edge

    @_PROPERTY_SETTINGS
    @given(date=_simple_dates)
    def test_date_round_trips(self, date):
        wire = json.loads(json.dumps(date_to_wire(date), sort_keys=True))
        assert date_from_wire(wire) == date


class TestSnapshotRestoreEquivalence:
    """snapshot_nous -> restore_nous onto a fresh engine is
    state-equivalent: statistics, fact keys, and every query payload."""

    @pytest.fixture()
    def restored(self, engine):
        state = json.loads(
            json.dumps(snapshot_nous(engine.nous), sort_keys=True)
        )
        fresh = Nous(config=NousConfig(
            window_size=100, min_support=2, lda_iterations=10, retrain_every=0
        ))
        restore_nous(fresh, state)
        return QueryEngine(fresh)

    def test_statistics_equal(self, engine, restored):
        assert compute_statistics(restored.nous.kb) == compute_statistics(
            engine.nous.kb
        )

    def test_extracted_fact_keys_equal(self, engine, restored):
        def keys(nous):
            return [
                (t.subject, t.predicate, t.object)
                for t in nous.kb.store
                if not t.curated
            ]

        assert keys(restored.nous) == keys(engine.nous)

    def test_composite_stamp_equal(self, engine, restored):
        assert restored.nous.dynamic.version == engine.nous.dynamic.version

    def test_every_query_payload_byte_identical(self, engine, restored):
        # Queries can mutate the engine (linking mints entities for
        # unknown mentions), so run them in lockstep on both sides.
        for text in QUERY_TEXTS:
            a = engine.execute_text(text)
            b = restored.execute_text(text)
            assert a.kind == b.kind, text
            assert json.dumps(
                encode_payload(a.kind, a.payload), sort_keys=True
            ) == json.dumps(
                encode_payload(b.kind, b.payload), sort_keys=True
            ), text

    def test_resnapshot_is_byte_identical(self, engine, restored):
        # The strongest equivalence: snapshotting the restored engine
        # reproduces the original snapshot byte for byte.
        assert json.dumps(
            snapshot_nous(restored.nous), sort_keys=True
        ) == json.dumps(snapshot_nous(engine.nous), sort_keys=True)


_json_params = st.dictionaries(
    _identifiers,
    st.one_of(st.integers(-1000, 1000), _identifiers, st.booleans()),
    max_size=4,
)


class TestComputeEnvelopeCodecs:
    """Compute envelopes cross the ``/v1/shard/compute`` wire; both
    directions must survive a real JSON boundary for arbitrary params."""

    @_PROPERTY_SETTINGS
    @given(
        op=st.sampled_from(COMPUTE_OPS),
        num_shards=st.integers(min_value=1, max_value=8),
        data=st.data(),
        params=_json_params,
    )
    def test_request_round_trips(self, op, num_shards, data, params):
        shard = data.draw(st.integers(min_value=0, max_value=num_shards - 1))
        request = ComputeRequest(
            op=op, shard=shard, num_shards=num_shards, params=params
        )
        wire = json.loads(
            json.dumps(compute_request_to_wire(request), sort_keys=True)
        )
        assert compute_request_from_wire(wire) == request

    @_PROPERTY_SETTINGS
    @given(
        op=st.sampled_from(COMPUTE_OPS),
        shard=st.integers(min_value=0, max_value=7),
        kg_version=st.integers(min_value=0, max_value=2**31),
        result=_json_params,
    )
    def test_response_round_trips(self, op, shard, kg_version, result):
        response = ComputeResponse(
            op=op, shard=shard, kg_version=kg_version, result=result
        )
        wire = json.loads(
            json.dumps(compute_response_to_wire(response), sort_keys=True)
        )
        assert compute_response_from_wire(wire) == response


_scores = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False
).map(lambda s: round(s, 9))


class TestAnalyticsPayloadCodecs:
    """The three analytics payload kinds, beyond the fixture-driven
    query round trips above: arbitrary pre-rounded rankings survive the
    boundary, and the wire form is pinned (plain lists, no tuples)."""

    @_PROPERTY_SETTINGS
    @given(
        ranks=st.lists(
            st.tuples(_identifiers, _scores),
            max_size=6,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_pagerank_round_trips(self, ranks):
        payload = {
            "ranks": [[e, s] for e, s in ranks],
            "num_vertices": len(ranks),
        }
        wire = json.loads(
            json.dumps(encode_payload("pagerank", payload), sort_keys=True)
        )
        assert decode_payload("pagerank", wire) == payload

    @_PROPERTY_SETTINGS
    @given(
        components=st.lists(
            st.lists(_identifiers, min_size=1, max_size=4, unique=True),
            max_size=4,
        )
    )
    def test_components_round_trips(self, components):
        payload = {
            "components": components,
            "num_components": len(components),
        }
        wire = json.loads(
            json.dumps(encode_payload("components", payload), sort_keys=True)
        )
        assert decode_payload("components", wire) == payload

    @_PROPERTY_SETTINGS
    @given(
        ranks=st.lists(
            st.tuples(_identifiers, _scores),
            max_size=6,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_centrality_round_trips(self, ranks):
        payload = {"metric": "degree", "ranks": [[e, s] for e, s in ranks]}
        wire = json.loads(
            json.dumps(encode_payload("centrality", payload), sort_keys=True)
        )
        assert decode_payload("centrality", wire) == payload

    def test_wire_form_pinned(self):
        payload = {"ranks": [["DJI", 0.25]], "num_vertices": 3}
        assert encode_payload("pagerank", payload) == payload
        census = {"components": [["A", "B"], ["C"]], "num_components": 2}
        assert encode_payload("components", census) == census


class TestDeltaRows:
    def test_entity_trend_rows_are_keyed_and_stable(self, engine):
        result = engine.execute_text("what's new about DJI")
        rows = delta_rows("entity-trend", result.payload)
        assert len(rows) == result.result_count
        # Same payload -> identical keys (diffable across evaluations).
        assert rows.keys() == delta_rows("entity-trend", result.payload).keys()

    def test_trending_rows_keyed_by_pattern(self, engine):
        report = engine.nous.trending()
        rows = delta_rows("trending", report.closed_frequent)
        assert len(rows) == len(report.closed_frequent)
        for key, row in rows.items():
            assert row["pattern"] == key
            assert row["support"] >= 1

    def test_unsupported_kind_rejected(self):
        with pytest.raises(QueryError):
            delta_rows("statistics", IngestResult(doc_id="x"))
