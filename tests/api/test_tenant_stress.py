"""Mixed-tenant stress: concurrent ingest + query + subscribers across
three tenants behind one gateway, asserting

- **zero cross-tenant delta leakage** — each tenant's subscriber
  replays to exactly the row set a dedicated monolith fed the same
  documents produces (any leaked foreign delta would desynchronise the
  replay);
- **per-tenant stamp monotonicity** — every stream's ``kg_version``
  sequence is non-decreasing;
- **per-tenant envelope equality** — query envelopes served through the
  tenant route tree equal a dedicated monolith's, field for field.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.envelopes import IngestRequest
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.service import NousService, ServiceConfig
from repro.api.tenancy import TenantRegistry, TenantSpec
from repro.api.wire import row_key
from repro.core.pipeline import NousConfig
from repro.kb.drone_kb import build_drone_kb

PATTERN = "match (?a:Company)-[acquired]->(?b:Company)"
QUERIES = [
    "tell me about DJI",
    PATTERN,
    "how is DJI related to Amazon",
]

TENANTS = ["t-red", "t-green", "t-blue"]

# Distinct document schedules per tenant, all over drone-KB companies
# so extraction lands pattern rows deterministically.
DOCS = {
    "t-red": [
        ("DJI acquired Parrot SA in June 2016.", "red-1"),
        ("GoPro acquired Parrot SA in August 2017.", "red-2"),
        ("Amazon uses drones for package delivery.", "red-3"),
        ("DJI acquired GoPro in March 2018.", "red-4"),
    ],
    "t-green": [
        ("Amazon acquired Parrot SA in January 2015.", "green-1"),
        ("Amazon tests drone delivery over Cambridge.", "green-2"),
        ("GoPro acquired DJI in October 2019.", "green-3"),
        ("Parrot SA develops agricultural drones.", "green-4"),
    ],
    "t-blue": [
        ("Walmart uses drones for inventory.", "blue-1"),
        ("Walmart acquired Parrot SA in May 2020.", "blue-2"),
        ("DJI acquired Amazon in April 2021.", "blue-3"),
        ("GoPro ships a new drone camera.", "blue-4"),
    ],
}


def _build_monolith() -> NousService:
    """Exactly what TenantRegistry builds for a default ``kb='drone'``
    spec: same KB, same config, background drainer on."""
    return NousService(
        kb=build_drone_kb(),
        config=NousConfig(window_size=400, seed=7),
        service_config=ServiceConfig(auto_start=True, max_batch=32),
    )


@pytest.fixture(scope="module")
def gateway():
    registry = TenantRegistry(
        default_service=_build_monolith(),
        specs=tuple(TenantSpec(name=name) for name in TENANTS),
    )
    with registry:
        with NousGateway(registry, GatewayConfig(heartbeat_interval=0.2)) as gw:
            yield gw
        registry.default.close()


@pytest.fixture(scope="module")
def monoliths():
    """One dedicated reference service per tenant, fed the same
    documents in the same order (each fully drained before the next,
    mirroring the gateway's ``?wait=1`` schedule)."""
    services = {}
    for name in TENANTS:
        service = _build_monolith()
        for text, doc_id in DOCS[name]:
            service.submit(IngestRequest(text=text, doc_id=doc_id, source="stress"))
            service.flush()
        services[name] = service
    yield services
    for service in services.values():
        service.close()


class TestMixedTenantStress:
    def test_concurrent_tenants_stay_isolated(self, gateway, monoliths):
        results: dict = {name: {} for name in TENANTS}
        errors: list = []
        barrier = threading.Barrier(len(TENANTS))

        def tenant_worker(name: str) -> None:
            try:
                with ClientSession(gateway.url, tenant=name) as session:
                    # Subscriber first: its replayed deltas must account
                    # for every document this tenant ingests.
                    stream = session.subscribe(
                        PATTERN, heartbeat=0.1, snapshot=True, timeout=30.0
                    )
                    frames: list = []
                    reader = threading.Thread(
                        target=lambda: frames.extend(stream), daemon=True
                    )
                    reader.start()
                    barrier.wait(timeout=30.0)
                    for text, doc_id in DOCS[name]:
                        envelope = session.ingest(
                            text, doc_id=doc_id, source="stress"
                        )
                        assert envelope.ok, envelope.to_dict()
                        # Interleave queries with the ingests.
                        assert session.query(QUERIES[0]).ok
                    # Collect the tail deltas, then disconnect.
                    deadline_rows = monolith_rows(monoliths[name])
                    _wait_for_replay(frames, deadline_rows)
                    stream.close()
                    reader.join(timeout=10.0)
                    results[name]["frames"] = frames
                    results[name]["final"] = {
                        q: session.query(q).to_dict() for q in QUERIES
                    }
                    results[name]["health"] = session.healthz()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, repr(exc)))

        threads = [
            threading.Thread(target=tenant_worker, args=(name,), daemon=True)
            for name in TENANTS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors, errors

        for name in TENANTS:
            frames = results[name]["frames"]
            monolith = monoliths[name]

            # Per-tenant stamp monotonicity across the whole stream.
            stamps = [
                frame["kg_version"]
                for frame in frames
                if "kg_version" in frame
            ]
            assert stamps == sorted(stamps), (name, stamps)

            # Zero cross-tenant delta leakage: replaying this stream's
            # deltas over its snapshot baseline reproduces exactly the
            # dedicated monolith's row set (row keys are canonical row
            # content, so key equality is content equality).
            replayed = _replay(frames)
            assert set(replayed) == set(monolith_rows(monolith)), name

            # The tenant ingested its documents and nobody else's.
            assert results[name]["health"]["documents_ingested"] == len(
                DOCS[name]
            )
            assert results[name]["health"]["tenant"] == name

    def test_envelopes_equal_a_dedicated_monolith(self, gateway, monoliths):
        for name in TENANTS:
            local_versions = set()
            with ClientSession(gateway.url, tenant=name) as session:
                for text in QUERIES:
                    remote = session.query(text).to_dict()
                    local = monoliths[name].query(text).to_dict()
                    # elapsed_ms is wall-clock and `cached` depends on
                    # how often this exact service answered the text;
                    # everything observable must match a dedicated
                    # service byte for byte.
                    for transient in ("elapsed_ms", "cached"):
                        remote.pop(transient)
                        local.pop(transient)
                    assert remote == local, (name, text)
                    local_versions.add(local["kg_version"])
            # Same documents, same order, same composite stamp.
            assert len(local_versions) == 1


def monolith_rows(service: NousService) -> dict:
    """The reference row set: a fresh evaluation of the standing
    pattern on the dedicated monolith."""
    from repro.api.wire import decode_payload, delta_rows

    envelope = service.query(PATTERN).raise_for_error()
    return delta_rows("pattern", decode_payload("pattern", envelope.payload))


def _replay(frames: list) -> dict:
    rows: dict = {}
    for frame in frames:
        if frame["event"] == "subscribed":
            for row in frame.get("rows") or []:
                rows[row_key(row)] = row
        if frame["event"] != "update":
            continue
        for row in frame["removed"]:
            rows.pop(row_key(row), None)
        for row in frame["added"]:
            rows[row_key(row)] = row
    return {key: row for key, row in rows.items()}


def _wait_for_replay(frames: list, expected: dict, timeout: float = 30.0) -> None:
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if set(_replay(frames)) == set(expected):
            return
        time.sleep(0.05)
