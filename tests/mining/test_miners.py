"""Streaming miner, Arabesque baseline, transaction miner — including the
streaming == from-scratch equivalence property that validates the paper's
incremental-maintenance claim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mining import (
    ArabesqueMiner,
    InstanceEdge,
    StreamingPatternMiner,
    TransactionMiner,
    canonicalize,
)
from repro.mining.support import PatternStats, closed_patterns


def edge(src, dst, pred="rel", src_label="T", dst_label="T"):
    return InstanceEdge(
        src=src, dst=dst, src_label=src_label, dst_label=dst_label, predicate=pred
    )


def funding_edges(n, investor=None):
    """n funding edges; distinct investors by default so the single-edge
    pattern has MNI support n.  Pass a fixed ``investor`` for a hub star
    (whose MNI support is 1 — distinct images on the hub variable)."""
    return [
        edge(f"co{i}", investor or f"inv{i}", "fundedBy", "Company", "Investor")
        for i in range(n)
    ]


@st.composite
def random_edge_streams(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    edges = []
    for _ in range(n):
        s = draw(st.integers(0, 4))
        d = draw(st.integers(0, 4))
        pred = draw(st.sampled_from(["p", "q"]))
        label_s = "A" if s % 2 == 0 else "B"
        label_d = "A" if d % 2 == 0 else "B"
        edges.append(edge(f"v{s}", f"v{d}", pred, label_s, label_d))
    return edges


class TestPatternStats:
    def test_mni_counts_distinct_images(self):
        pattern, mapping1 = canonicalize([edge("a", "x", "fundedBy")])
        stats = PatternStats(pattern=pattern)
        stats.add_embedding(mapping1)
        _, mapping2 = canonicalize([edge("b", "x", "fundedBy")])
        stats.add_embedding(mapping2)
        # two subjects, one object -> MNI = min(2, 1) = 1
        assert stats.embedding_count == 2
        assert stats.mni_support == 1

    def test_remove_restores(self):
        pattern, mapping = canonicalize([edge("a", "b")])
        stats = PatternStats(pattern=pattern)
        stats.add_embedding(mapping)
        stats.remove_embedding(mapping)
        assert stats.is_dead()
        assert stats.mni_support == 0


class TestStreamingBasics:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            StreamingPatternMiner(min_support=0)
        with pytest.raises(ConfigError):
            StreamingPatternMiner(max_edges=0)

    def test_single_pattern_becomes_frequent(self):
        miner = StreamingPatternMiner(min_support=3, max_edges=2)
        for e in funding_edges(3):
            miner.add_edge(e)
        frequent = miner.frequent_patterns()
        assert len(frequent) >= 1
        (pattern, support), = [
            (p, s) for p, s in frequent.items() if p.size == 1
        ]
        assert support == 3
        assert "fundedBy" in pattern.describe()

    def test_mni_not_embedding_count(self):
        """10 edges into one hub: embeddings=10 but MNI=1 on the hub var."""
        miner = StreamingPatternMiner(min_support=2, max_edges=1)
        for e in funding_edges(10, investor="accel"):
            miner.add_edge(e)
        supports = miner.supports()
        assert list(supports.values()) == [1]

    def test_eviction_reverses_addition(self):
        miner = StreamingPatternMiner(min_support=1, max_edges=3)
        eids = [miner.add_edge(e) for e in funding_edges(4)]
        assert miner.supports()
        for eid in eids:
            miner.remove_edge(eid)
        assert miner.supports() == {}
        assert miner.window_size == 0

    def test_remove_unknown_edge_raises(self):
        with pytest.raises(ConfigError):
            StreamingPatternMiner().remove_edge(99)

    def test_two_edge_patterns_found(self):
        miner = StreamingPatternMiner(min_support=2, max_edges=2)
        # company -fundedBy-> investor, company -acquired-> target (x2)
        for i in range(2):
            miner.add_edge(edge(f"co{i}", f"inv{i}", "fundedBy", "Company", "Investor"))
            miner.add_edge(edge(f"co{i}", f"t{i}", "acquired", "Company", "Company"))
        frequent = miner.frequent_patterns()
        assert any(p.size == 2 for p in frequent)

    def test_window_report_transitions(self):
        miner = StreamingPatternMiner(min_support=3, max_edges=1)
        eids = [miner.add_edge(e) for e in funding_edges(3)]
        report1 = miner.report(timestamp=1.0)
        assert len(report1.newly_frequent) == 1
        assert report1.window_edges == 3
        miner.remove_edge(eids[0])
        report2 = miner.report(timestamp=2.0)
        assert len(report2.newly_infrequent) == 1
        lost, survivors = report2.newly_infrequent[0]
        assert lost in [p for p in report1.newly_frequent]
        assert survivors == []  # size-1 pattern has no sub-patterns

    def test_reconstruction_lists_frequent_subs(self):
        miner = StreamingPatternMiner(min_support=3, max_edges=2)
        # 3 x (company -fundedBy-> inv_i, company_i -acquired-> target_i)
        pairs = []
        for i in range(3):
            pairs.append(miner.add_edge(
                edge(f"co{i}", f"inv{i}", "fundedBy", "Company", "Investor")))
            pairs.append(miner.add_edge(
                edge(f"co{i}", f"t{i}", "acquired", "Company", "Company")))
        miner.report(timestamp=0.0)
        # evict one acquired edge: the 2-edge pattern drops below support,
        # but fundedBy single-edge pattern stays frequent.
        miner.remove_edge(pairs[1])
        report = miner.report(timestamp=1.0)
        twos = [item for item in report.newly_infrequent if item[0].size == 2]
        assert twos
        lost, survivors = twos[0]
        assert survivors, "reconstruction should surface frequent sub-patterns"
        assert all(s.size == 1 for s in survivors)

    def test_closed_patterns_exclude_non_closed(self):
        miner = StreamingPatternMiner(min_support=2, max_edges=2)
        # every fundedBy co-occurs with acquired from the same subject;
        # make both single patterns have the same support as the pair
        for i in range(3):
            miner.add_edge(edge(f"co{i}", f"inv{i}", "fundedBy", "Company", "Investor"))
            miner.add_edge(edge(f"co{i}", f"t{i}", "acquired", "Company", "Company"))
        closed = dict(miner.closed_frequent_patterns())
        all_frequent = miner.frequent_patterns()
        # the two single-edge patterns have support 3 == the pair's support
        singles = [p for p in all_frequent if p.size == 1]
        pair = [p for p in all_frequent if p.size == 2]
        assert pair and singles
        for p in singles:
            assert p not in closed, "non-closed sub-pattern must be pruned"
        assert pair[0] in closed


class TestEquivalence:
    """The streaming miner's incremental state must match a from-scratch
    Arabesque run on every window — the core correctness property."""

    @given(random_edge_streams(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_streaming_matches_arabesque_after_adds(self, edges, max_edges):
        streaming = StreamingPatternMiner(min_support=1, max_edges=max_edges)
        for e in edges:
            streaming.add_edge(e)
        scratch = ArabesqueMiner(min_support=1, max_edges=max_edges).mine(edges)
        assert streaming.supports() == scratch.supports

    @given(random_edge_streams(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_streaming_matches_arabesque_with_sliding(self, edges, window):
        streaming = StreamingPatternMiner(min_support=1, max_edges=2)
        live = []
        for e in edges:
            eid = streaming.add_edge(e)
            live.append((eid, e))
            if len(live) > window:
                old_eid, _ = live.pop(0)
                streaming.remove_edge(old_eid)
        window_edges = [e for _, e in live]
        scratch = ArabesqueMiner(min_support=1, max_edges=2).mine(window_edges)
        assert streaming.supports() == scratch.supports

    def test_closed_sets_match_on_example(self):
        edges = funding_edges(4) + [
            edge(f"co{i}", f"t{i}", "acquired", "Company", "Company")
            for i in range(3)
        ]
        streaming = StreamingPatternMiner(min_support=2, max_edges=2)
        for e in edges:
            streaming.add_edge(e)
        scratch = ArabesqueMiner(min_support=2, max_edges=2).mine(edges)
        assert streaming.closed_frequent_patterns() == scratch.closed_frequent

    def test_streaming_cheaper_than_recompute_on_slides(self):
        """Cost proxy: embeddings touched by streaming updates should be
        far fewer than Arabesque re-exploration over many slides."""
        window, slides = 60, 20
        stream = [
            edge(f"c{i % 30}", f"i{i % 5}", "fundedBy", "Company", "Investor")
            for i in range(window + slides)
        ]
        streaming = StreamingPatternMiner(min_support=3, max_edges=2)
        live = []
        for e in stream[:window]:
            live.append((streaming.add_edge(e), e))
        streaming.embeddings_touched = 0
        arabesque_cost = 0
        for e in stream[window:]:
            live.append((streaming.add_edge(e), e))
            old, _ = live.pop(0)
            streaming.remove_edge(old)
            result = ArabesqueMiner(min_support=3, max_edges=2).mine(
                [x for _, x in live]
            )
            arabesque_cost += result.embeddings_explored
        assert streaming.embeddings_touched * 2 < arabesque_cost


class TestArabesque:
    def test_prunes_infrequent_extensions(self):
        from repro.mining import sub_patterns

        edges = funding_edges(5) + [edge("co0", "x", "oneoff", "Company", "T")]
        result = ArabesqueMiner(min_support=3, max_edges=3).mine(edges)
        # Embedding-centric anti-monotone pruning: every explored size-k
        # pattern (k >= 2) must extend at least one frequent sub-pattern.
        for pattern, _support in result.supports.items():
            if pattern.size < 2:
                continue
            subs = sub_patterns(pattern)
            assert any(
                result.supports.get(sub, 0) >= 3 for sub in subs
            ), f"unpruned orphan pattern: {pattern.describe()}"

    def test_worker_accounting(self):
        result = ArabesqueMiner(min_support=1, max_edges=2, n_workers=3).mine(
            funding_edges(6)
        )
        assert sum(result.per_worker_embeddings) == result.embeddings_explored
        assert len(result.per_worker_embeddings) == 3

    def test_empty_input(self):
        result = ArabesqueMiner().mine([])
        assert result.supports == {}
        assert result.closed_frequent == []

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ArabesqueMiner(min_support=0)
        with pytest.raises(ConfigError):
            ArabesqueMiner(n_workers=0)


class TestTransactionMiner:
    def make_transactions(self):
        t1 = [edge("dji", "accel", "fundedBy", "Company", "Investor"),
              edge("dji", "phantom", "makes", "Company", "Product")]
        t2 = [edge("parrot", "seq", "fundedBy", "Company", "Investor"),
              edge("parrot", "bebop", "makes", "Company", "Product")]
        t3 = [edge("gopro", "karma", "makes", "Company", "Product")]
        return [t1, t2, t3]

    def test_transaction_support(self):
        result = TransactionMiner(min_support=2, max_edges=2).mine(
            self.make_transactions()
        )
        makes, _ = canonicalize([edge("c", "p", "makes", "Company", "Product")])
        funded, _ = canonicalize([edge("c", "i", "fundedBy", "Company", "Investor")])
        assert result.supports[makes] == 3
        assert result.supports[funded] == 2

    def test_two_edge_pattern_counted_once_per_transaction(self):
        result = TransactionMiner(min_support=2, max_edges=2).mine(
            self.make_transactions()
        )
        pair, _ = canonicalize([
            edge("c", "i", "fundedBy", "Company", "Investor"),
            edge("c", "p", "makes", "Company", "Product"),
        ])
        assert result.supports[pair] == 2

    def test_closed_output(self):
        result = TransactionMiner(min_support=2, max_edges=2).mine(
            self.make_transactions()
        )
        closed = dict(result.closed_frequent)
        funded, _ = canonicalize([edge("c", "i", "fundedBy", "Company", "Investor")])
        # fundedBy (support 2) always co-occurs with the pair (support 2):
        # not closed.
        assert funded not in closed

    def test_empty(self):
        result = TransactionMiner().mine([])
        assert result.supports == {}

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TransactionMiner(min_support=0)


class TestClosedPatternsHelper:
    def test_empty_table(self):
        assert closed_patterns({}, min_support=1) == []

    def test_sorted_by_support_then_size(self):
        p1, _ = canonicalize([edge("a", "b", "p")])
        p2, _ = canonicalize([edge("a", "b", "q")])
        out = closed_patterns({p1: 5, p2: 9}, min_support=1)
        assert out[0][1] == 9
