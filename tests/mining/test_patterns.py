"""Pattern algebra tests: canonicalisation, connectivity, lattice."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.mining import (
    InstanceEdge,
    canonicalize,
    is_connected,
    sub_patterns,
)
from repro.mining.patterns import is_super_pattern


def edge(src, dst, pred="rel", src_label="T", dst_label="T"):
    return InstanceEdge(
        src=src, dst=dst, src_label=src_label, dst_label=dst_label, predicate=pred
    )


class TestConnectivity:
    def test_single_edge_connected(self):
        assert is_connected([edge("a", "b")])

    def test_chain_connected(self):
        assert is_connected([edge("a", "b"), edge("b", "c")])

    def test_disconnected(self):
        assert not is_connected([edge("a", "b"), edge("c", "d")])

    def test_empty_not_connected(self):
        assert not is_connected([])

    def test_direction_ignored_for_connectivity(self):
        assert is_connected([edge("a", "b"), edge("c", "b")])


class TestCanonicalize:
    def test_isomorphic_edge_sets_same_pattern(self):
        p1, _ = canonicalize([edge("a", "b", "acq"), edge("b", "c", "fund")])
        p2, _ = canonicalize([edge("x", "y", "acq"), edge("y", "z", "fund")])
        assert p1 == p2

    def test_node_identity_irrelevant_but_structure_kept(self):
        # a->b, a->c (fan-out) vs a->b, c->b (fan-in) differ
        fan_out, _ = canonicalize([edge("a", "b"), edge("a", "c")])
        fan_in, _ = canonicalize([edge("a", "b"), edge("c", "b")])
        assert fan_out != fan_in

    def test_labels_distinguish(self):
        p1, _ = canonicalize([edge("a", "b", src_label="Company")])
        p2, _ = canonicalize([edge("a", "b", src_label="Person")])
        assert p1 != p2

    def test_predicates_distinguish(self):
        p1, _ = canonicalize([edge("a", "b", "acquired")])
        p2, _ = canonicalize([edge("a", "b", "fundedBy")])
        assert p1 != p2

    def test_mapping_realises_pattern(self):
        edges = [edge("dji", "kiva", "acq"), edge("kiva", "sf", "loc")]
        pattern, mapping = canonicalize(edges)
        rebuilt = {
            (mapping[e.src], e.predicate, mapping[e.dst]) for e in edges
        }
        expected = {(pe.src, pe.predicate, pe.dst) for pe in pattern.edges}
        assert rebuilt == expected

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            canonicalize([])

    def test_rejects_disconnected(self):
        with pytest.raises(PatternError):
            canonicalize([edge("a", "b"), edge("c", "d")])

    def test_rejects_label_contradiction(self):
        with pytest.raises(PatternError):
            canonicalize([
                edge("a", "b", src_label="Company"),
                edge("a", "c", src_label="Person"),
            ])

    def test_self_loop_supported(self):
        pattern, _ = canonicalize([edge("a", "a")])
        assert pattern.size == 1
        assert pattern.num_variables == 1

    def test_parallel_edges_supported(self):
        pattern, _ = canonicalize([edge("a", "b", "p"), edge("a", "b", "q")])
        assert pattern.size == 2
        assert pattern.num_variables == 2

    def test_describe_readable(self):
        pattern, _ = canonicalize([edge("a", "b", "acq", "Company", "Company")])
        assert "acq" in pattern.describe()
        assert "?0" in str(pattern)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3),
                      st.sampled_from(["p", "q"])),
            min_size=1, max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_invariant_under_renaming(self, raw):
        """Renaming instance nodes never changes the canonical pattern."""
        edges = [edge(f"n{s}", f"n{d}", p) for s, d, p in raw]
        if not is_connected(edges):
            return
        renamed = [edge(f"X{s}", f"X{d}", p) for s, d, p in raw]
        p1, _ = canonicalize(edges)
        p2, _ = canonicalize(renamed)
        assert p1 == p2

    @given(st.permutations(list(range(3))))
    @settings(max_examples=20, deadline=None)
    def test_canonical_invariant_under_edge_order(self, order):
        base = [edge("a", "b", "p"), edge("b", "c", "q"), edge("c", "a", "r")]
        shuffled = [base[i] for i in order]
        assert canonicalize(base)[0] == canonicalize(shuffled)[0]


class TestLattice:
    def test_sub_patterns_of_chain(self):
        pattern, _ = canonicalize([edge("a", "b", "p"), edge("b", "c", "q")])
        subs = sub_patterns(pattern)
        assert len(subs) == 2
        assert all(s.size == 1 for s in subs)

    def test_sub_patterns_keep_connectivity(self):
        # star: a->b, a->c, a->d ; dropping any edge keeps it connected
        pattern, _ = canonicalize([
            edge("a", "b", "p"), edge("a", "c", "p"), edge("a", "d", "p")
        ])
        subs = sub_patterns(pattern)
        assert all(s.size == 2 for s in subs)
        # all three 2-edge subs are isomorphic fans
        assert len(subs) == 1

    def test_chain_middle_drop_excluded(self):
        # chain a->b->c->d: dropping the middle edge disconnects
        pattern, _ = canonicalize([
            edge("a", "b", "p"), edge("b", "c", "q"), edge("c", "d", "r")
        ])
        subs = sub_patterns(pattern)
        assert all(s.size == 2 for s in subs)
        assert len(subs) == 2  # only end drops allowed

    def test_single_edge_has_no_subs(self):
        pattern, _ = canonicalize([edge("a", "b")])
        assert sub_patterns(pattern) == []

    def test_is_super_pattern(self):
        small, _ = canonicalize([edge("a", "b", "p")])
        big, _ = canonicalize([edge("a", "b", "p"), edge("b", "c", "q")])
        assert is_super_pattern(big, small)
        assert not is_super_pattern(small, big)
        assert is_super_pattern(small, small)

    def test_not_super_when_unrelated(self):
        p1, _ = canonicalize([edge("a", "b", "p")])
        p2, _ = canonicalize([edge("a", "b", "x"), edge("b", "c", "y")])
        assert not is_super_pattern(p2, p1)
