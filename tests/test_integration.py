"""End-to-end integration: the whole NOUS loop on a realistic stream.

These tests exercise the complete path the paper demonstrates —
curated KB + streaming articles -> dynamic KG -> all five query classes —
with correctness checks against the generator's ground truth.
"""

import pytest

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    QueryEngine,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)


@pytest.fixture(scope="module")
def system():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=90, seed=23, crawl_fraction=0.25)
    )
    generate_descriptions(kb, seed=23)
    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=250, min_support=3,
                          lda_iterations=25, seed=23),
    )
    results = nous.ingest_corpus(articles)
    return nous, articles, results


class TestConstruction:
    def test_stream_accepted_facts(self, system):
        _nous, articles, results = system
        accepted = sum(r.accepted for r in results)
        assert accepted > len(articles) * 0.5, "pipeline too lossy"

    def test_gold_facts_reach_the_kg(self, system):
        """A decent share of generator ground truth must survive the
        entire pipeline (extraction -> linking -> confidence gate)."""
        nous, articles, _results = system
        hits = total = 0
        for article in articles:
            for s, p, o in article.gold_triples:
                if p in {"raisedFunding"}:  # literal-valued: compare below
                    continue
                total += 1
                if nous.kb.store.get(s, p, o) is not None:
                    hits += 1
        assert total > 0
        assert hits / total > 0.3, f"end-to-end gold recall {hits}/{total}"

    def test_extracted_facts_carry_metadata(self, system):
        nous, _articles, _results = system
        extracted = [t for t in nous.kb.store if not t.curated]
        assert extracted
        assert all(0 < t.confidence < 1 for t in extracted)
        assert any(t.date is not None for t in extracted)
        assert {t.source for t in extracted} - {"curated"}

    def test_new_entities_created(self, system):
        nous, _articles, _results = system
        assert nous.mapper.stats.created_entities >= 0
        # mention index populated for expansion
        assert len(nous.mapper.mention_index) > 10

    def test_rejections_tracked(self, system):
        nous, _articles, results = system
        reasons = set()
        for r in results:
            reasons.update(r.rejected_mapping)
        assert "unmapped-relation" in reasons
        assert nous.mapper.stats.total() > 0


class TestQueriesEndToEnd:
    def test_trending_reflects_stream(self, system):
        nous, _articles, _results = system
        report = nous.trending()
        assert report.window_edges > 50
        assert report.closed_frequent
        # patterns must be type-level (over the ontology's types)
        for pattern, support in report.closed_frequent:
            assert support >= nous.config.min_support
            assert "Company" in pattern.describe() or "Thing" in pattern.describe()

    def test_entity_summary_mixes_provenance(self, system):
        nous, _articles, _results = system
        summary = nous.entity_summary("DJI")
        curated = [f for f in summary.facts if f[4]]
        assert curated
        assert summary.entity_type == "Company"

    def test_why_question_returns_path(self, system):
        nous, _articles, _results = system
        paths = nous.explain("Frank Wang", "Shenzhen", k=2)
        assert paths
        assert paths[0].nodes[0] == "Frank_Wang"
        assert paths[0].nodes[-1] == "Shenzhen"
        assert 0.0 <= paths[0].coherence <= 1.0

    def test_engine_runs_all_classes(self, system):
        nous, _articles, _results = system
        engine = QueryEngine(nous)
        for text in [
            "show trending patterns",
            "tell me about DJI",
            "how is DJI related to Amazon",
            "why does Windermere use drones",
            "match (?a:Company)-[launched]->(?b:Product)",
        ]:
            result = engine.execute_text(text)
            assert result.result_count >= 1, text

    def test_statistics_consistent(self, system):
        nous, _articles, _results = system
        stats = nous.statistics()
        assert stats.num_facts == nous.kb.num_facts
        assert stats.curated_facts + stats.extracted_facts == stats.num_facts
        assert sum(stats.facts_per_source.values()) == stats.num_facts


class TestRefinementLoop:
    def test_predicate_pattern_learning(self, system):
        """§3.3 expansion runs over the ingest buffer without errors and
        never forgets seed patterns."""
        nous, _articles, _results = system
        before = {
            p: set(nous.mapper.predicate_mapper.known_patterns(p))
            for p in ("acquired", "launched")
        }
        adopted = nous.learn_predicate_patterns()
        assert isinstance(adopted, dict)
        for predicate, patterns in before.items():
            after = set(nous.mapper.predicate_mapper.known_patterns(predicate))
            assert patterns <= after

    def test_source_trust_evolved(self, system):
        nous, _articles, _results = system
        trust = nous.estimator.source_trust.known_sources()
        assert trust["yago"] > 0.9
        crawl_sources = [s for s in trust if s.endswith(".example")]
        if crawl_sources:
            assert all(trust[s] <= trust["wsj"] + 0.05 for s in crawl_sources)

    def test_ingestion_is_deterministic(self):
        def build():
            kb = build_drone_kb()
            articles = generate_corpus(kb, CorpusConfig(n_articles=25, seed=31))
            nous = Nous(kb=kb, config=NousConfig(seed=31, retrain_every=0,
                                                 lda_iterations=5))
            results = nous.ingest_corpus(articles)
            return [
                (r.doc_id, r.accepted, tuple(r.accepted_triples)) for r in results
            ]

        assert build() == build()
