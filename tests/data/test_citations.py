"""Citation-domain generator and structured ingestion tests."""

import pytest

from repro import Nous, NousConfig
from repro.data.citations import (
    TOPICS,
    CitationWorld,
    build_citation_ontology,
)
from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase
from repro.nlp.dates import SimpleDate


@pytest.fixture
def world_and_kb():
    kb = KnowledgeBase(ontology=build_citation_ontology())
    world = CitationWorld(n_authors=12, n_papers=40, seed=5)
    batches = world.generate_batches(kb)
    return world, kb, batches


class TestCitationWorld:
    def test_ontology_types(self):
        ontology = build_citation_ontology()
        assert ontology.is_a("Author", "Person")
        assert ontology.has_predicate("cites")
        sig = ontology.predicate("authoredBy")
        assert sig.domain == "Publication"

    def test_population(self, world_and_kb):
        world, kb, _batches = world_and_kb
        assert len(world.authors) == 12
        assert kb.entities_of_type("Author")
        assert kb.entities_of_type("Venue")

    def test_batches_sorted_and_typed(self, world_and_kb):
        world, kb, batches = world_and_kb
        assert len(batches) == 40
        ordinals = [b.date.ordinal() for b in batches]
        assert ordinals == sorted(ordinals)
        predicates = {p for b in batches for _, p, _ in b.facts}
        assert {"authoredBy", "publishedIn", "hasTopic"} <= predicates

    def test_citations_reference_existing_papers(self, world_and_kb):
        world, _kb, batches = world_and_kb
        seen = set()
        for batch in batches:
            papers_in_batch = {s for s, p, _ in batch.facts if p == "hasTopic"}
            for s, p, o in batch.facts:
                if p == "cites":
                    assert o in seen, "cited paper must already exist"
            seen.update(papers_in_batch)

    def test_hot_topic_bursts_late(self):
        kb = KnowledgeBase(ontology=build_citation_ontology())
        world = CitationWorld(n_authors=15, n_papers=90, seed=11,
                              hot_topic="knowledge_graphs")
        batches = world.generate_batches(kb)
        def hot_fraction(subset):
            hot = sum(
                1 for b in subset for _, p, o in b.facts
                if p == "hasTopic" and o == "topic_knowledge_graphs"
            )
            total = sum(
                1 for b in subset for _, p, _ in b.facts if p == "hasTopic"
            )
            return hot / max(total, 1)
        early = hot_fraction(batches[: len(batches) // 3])
        late = hot_fraction(batches[-len(batches) // 3 :])
        assert late > early

    def test_deterministic(self):
        def build():
            kb = KnowledgeBase(ontology=build_citation_ontology())
            return [
                b.facts for b in CitationWorld(n_authors=8, n_papers=20,
                                               seed=3).generate_batches(kb)
            ]
        assert build() == build()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CitationWorld(n_authors=1)
        with pytest.raises(ConfigError):
            CitationWorld(hot_topic="nonexistent")

    def test_all_topics_valid(self, world_and_kb):
        _world, kb, batches = world_and_kb
        topic_ids = {f"topic_{t}" for t in TOPICS}
        for batch in batches:
            for _, p, o in batch.facts:
                if p == "hasTopic":
                    assert o in topic_ids


class TestStructuredIngestion:
    def test_ingest_facts_reaches_kb_and_window(self):
        kb = KnowledgeBase(ontology=build_citation_ontology())
        nous = Nous(kb=kb, config=NousConfig(retrain_every=0, lda_iterations=5))
        count = nous.ingest_facts(
            [("paper_1", "cites", "paper_0"),
             ("paper_1", "authoredBy", "author_X")],
            date=SimpleDate(2015, 3), source="dblp-like",
        )
        assert count == 2
        assert kb.store.get("paper_1", "cites", "paper_0") is not None
        assert nous.dynamic.window.window_size == 2
        fact = kb.store.get("paper_1", "cites", "paper_0")
        assert not fact.curated
        assert fact.source == "dblp-like"

    def test_structured_facts_feed_miner(self):
        kb = KnowledgeBase(ontology=build_citation_ontology())
        world = CitationWorld(n_authors=10, n_papers=50, seed=9)
        batches = world.generate_batches(kb)
        nous = Nous(kb=kb, config=NousConfig(window_size=150, min_support=4,
                                             retrain_every=0, lda_iterations=5))
        for batch in batches:
            nous.ingest_facts(batch.facts, date=batch.date, source=batch.source)
        report = nous.trending()
        assert report.closed_frequent
        descriptions = " ".join(p.describe() for p, _ in report.closed_frequent)
        assert "Publication" in descriptions

    def test_mixed_text_and_structured(self):
        """Both ingestion paths coexist on one dynamic KG."""
        from repro import build_drone_kb
        nous = Nous(kb=build_drone_kb(),
                    config=NousConfig(retrain_every=0, lda_iterations=5))
        nous.ingest("GoPro partnered with DJI in June 2015.",
                    doc_id="t", source="wsj")
        nous.ingest_facts([("DJI", "partnerOf", "Qualcomm")],
                          source="logs")
        sources = {t.source for t in nous.kb.store if not t.curated}
        assert {"wsj", "logs"} <= sources
