"""World model, article rendering and corpus generation tests."""

import pytest

from repro.data import (
    ArticleRenderer,
    CorpusConfig,
    WorldModel,
    generate_corpus,
    generate_descriptions,
    stream_corpus,
    topic_lexicons,
)
from repro.data.world import DEFAULT_REGIMES, EVENT_TYPES
from repro.errors import ConfigError
from repro.kb import build_drone_kb
from repro.nlp import NlpPipeline


class TestWorldModel:
    def test_population_deterministic(self):
        world_a = WorldModel(build_drone_kb(), seed=3, n_extra_companies=5)
        world_b = WorldModel(build_drone_kb(), seed=3, n_extra_companies=5)
        assert world_a.synthetic_companies == world_b.synthetic_companies
        assert world_a.synthetic_people == world_b.synthetic_people

    def test_population_adds_typed_entities(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=3, n_extra_companies=4)
        for company in world.synthetic_companies:
            assert kb.entity_type(company) == "Company"
            assert kb.store.match(subject=company, predicate="headquarteredIn")

    def test_events_sorted_and_typed(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=4)
        events = world.generate_events(100)
        assert len(events) == 100
        dates = [e.date.ordinal() for e in events]
        assert dates == sorted(dates)
        assert {e.event_type for e in events} <= set(EVENT_TYPES)

    def test_every_event_has_triples(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=4)
        for event in world.generate_events(60):
            assert event.triples
            for s, p, o in event.triples:
                assert isinstance(s, str) and isinstance(p, str) and isinstance(o, str)

    def test_regime_shift_changes_mix(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=4)
        events = world.generate_events(300)
        first = [e.event_type for e in events[:100]]
        last = [e.event_type for e in events[-90:]]
        assert first.count("funding") > last.count("funding")
        assert last.count("acquisition") > first.count("acquisition")

    def test_bad_regimes_rejected(self):
        world = WorldModel(build_drone_kb(), seed=1, n_extra_companies=2)
        with pytest.raises(ConfigError):
            world.generate_events(10, regimes=[(0.5, {"funding": 1})])

    def test_bad_years_rejected(self):
        with pytest.raises(ConfigError):
            WorldModel(build_drone_kb(), start_year=2015, end_year=2010)


class TestArticleRenderer:
    def test_render_funding_event(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=2)
        events = [e for e in world.generate_events(50) if e.event_type == "funding"]
        article = ArticleRenderer(kb, seed=1).render(events[0])
        assert "raised" in article.text or "secured" in article.text
        assert article.gold_triples
        assert article.source == "wsj"
        assert article.date == events[0].date

    def test_crawl_rendering_adds_filler(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=2)
        event = world.generate_events(10)[0]
        renderer = ArticleRenderer(kb, seed=2, crawl_noise=1.0)
        article = renderer.render(event, source="dronewire.example")
        assert article.source == "dronewire.example"
        assert len(article.text) > 0

    def test_doc_ids_unique(self):
        kb = build_drone_kb()
        world = WorldModel(kb, seed=5, n_extra_companies=2)
        renderer = ArticleRenderer(kb, seed=2)
        ids = {renderer.render(e).doc_id for e in world.generate_events(20)}
        assert len(ids) == 20


class TestCorpus:
    def test_generate_corpus_sorted_dates(self):
        kb = build_drone_kb()
        articles = generate_corpus(kb, CorpusConfig(n_articles=50, seed=9))
        ordinals = [a.date.ordinal() for a in articles]
        assert ordinals == sorted(ordinals)

    def test_corpus_deterministic(self):
        texts_a = [a.text for a in generate_corpus(build_drone_kb(), CorpusConfig(n_articles=30, seed=4))]
        texts_b = [a.text for a in generate_corpus(build_drone_kb(), CorpusConfig(n_articles=30, seed=4))]
        assert texts_a == texts_b

    def test_crawl_fraction_respected(self):
        kb = build_drone_kb()
        articles = generate_corpus(
            kb, CorpusConfig(n_articles=100, seed=4, crawl_fraction=0.4)
        )
        crawl = sum(1 for a in articles if a.source != "wsj")
        assert 20 <= crawl <= 60

    def test_stream_matches_generate(self):
        config = CorpusConfig(n_articles=20, seed=4)
        eager = [a.doc_id for a in generate_corpus(build_drone_kb(), config)]
        lazy = [a.doc_id for a in stream_corpus(build_drone_kb(), config)]
        assert eager == lazy

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            generate_corpus(build_drone_kb(), CorpusConfig(n_articles=0))
        with pytest.raises(ConfigError):
            generate_corpus(build_drone_kb(), CorpusConfig(crawl_fraction=2.0))

    def test_extraction_recovers_gold_facts(self):
        """End-to-end sanity: the NLP pipeline should recover a decent
        fraction of gold subject/object pairs from WSJ-style articles."""
        kb = build_drone_kb()
        articles = generate_corpus(kb, CorpusConfig(n_articles=40, seed=6, crawl_fraction=0.0))
        pipeline = NlpPipeline(gazetteer=kb.gazetteer())
        hits = 0
        total = 0
        for article in articles:
            triples = pipeline.extract_triples(
                article.text, doc_id=article.doc_id, doc_date=article.date
            )
            extracted_pairs = {
                (t.subject.lower(), t.object.lower()) for t in triples
            }
            for s, p, o in article.gold_triples:
                total += 1
                s_name = s.replace("_", " ").lower()
                o_name = o.replace("_", " ").lower()
                if any(
                    s_name in es and (o_name in eo or eo in o_name)
                    for es, eo in extracted_pairs
                    if eo
                ):
                    hits += 1
        assert total > 0
        assert hits / total > 0.4, f"recall too low: {hits}/{total}"


class TestDescriptions:
    def test_descriptions_generated_for_all_entities(self):
        kb = build_drone_kb()
        docs = generate_descriptions(kb, words_per_doc=40, seed=2)
        assert set(docs) == kb.entities()
        assert all(len(text.split()) >= 40 for text in docs.values())

    def test_descriptions_topical(self):
        kb = build_drone_kb()
        docs = generate_descriptions(kb, words_per_doc=200, seed=2)
        lexicons = topic_lexicons()
        faa_words = set(docs["FAA"].split())
        assert len(faa_words & set(lexicons["regulation"])) >= 5
        windermere_words = set(docs["Windermere"].split())
        assert len(windermere_words & set(lexicons["realestate"])) >= 3

    def test_deterministic(self):
        kb1, kb2 = build_drone_kb(), build_drone_kb()
        d1 = generate_descriptions(kb1, seed=5)
        d2 = generate_descriptions(kb2, seed=5)
        assert d1 == d2

    def test_appends_to_existing_description(self):
        kb = build_drone_kb()
        before = kb.description("DJI")
        generate_descriptions(kb, seed=5)
        after = kb.description("DJI")
        assert after.startswith(before)
        assert len(after) > len(before)
