"""Enterprise-log domain generator and insider-campaign tests."""

import pytest

from repro import Nous, NousConfig
from repro.data.logs import EnterpriseLogWorld, build_log_ontology
from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture(scope="module")
def world_and_batches():
    kb = KnowledgeBase(ontology=build_log_ontology())
    world = EnterpriseLogWorld(n_users=15, n_days=40, seed=13,
                               campaign_start=0.6, n_insiders=2)
    batches = world.generate_batches(kb)
    return world, kb, batches


class TestLogWorld:
    def test_ontology(self):
        ontology = build_log_ontology()
        assert ontology.is_a("SensitiveResource", "Resource")
        assert ontology.predicate("loggedInto").domain == "User"

    def test_population(self, world_and_batches):
        world, kb, _ = world_and_batches
        assert len(world.users) == 15
        assert len(world.insiders) == 2
        assert set(world.insiders) <= set(world.users)
        assert world.sensitive
        assert kb.entities_of_type("SensitiveResource")

    def test_batches_one_per_day(self, world_and_batches):
        _, _, batches = world_and_batches
        assert len(batches) == 40
        ordinals = [b.date.ordinal() for b in batches]
        assert ordinals == sorted(ordinals)

    def test_campaign_only_late(self, world_and_batches):
        world, _, batches = world_and_batches
        def escalations(subset):
            return sum(
                1 for b in subset for _, p, _ in b.facts if p == "escalatedOn"
            )
        cutoff = int(len(batches) * 0.6)
        assert escalations(batches[:cutoff]) == 0
        assert escalations(batches[cutoff:]) > 0

    def test_campaign_touches_sensitive_only(self, world_and_batches):
        world, _, batches = world_and_batches
        for batch in batches:
            for s, p, o in batch.facts:
                if p == "downloaded" and s in world.insiders and o in world.sensitive:
                    break

    def test_deterministic(self):
        def build():
            kb = KnowledgeBase(ontology=build_log_ontology())
            world = EnterpriseLogWorld(n_users=8, n_days=10, seed=3)
            return [b.facts for b in world.generate_batches(kb)]
        assert build() == build()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            EnterpriseLogWorld(n_users=1)
        with pytest.raises(ConfigError):
            EnterpriseLogWorld(campaign_start=1.5)
        with pytest.raises(ConfigError):
            EnterpriseLogWorld(n_users=3, n_insiders=3)


class TestInsiderDetection:
    def test_campaign_patterns_emerge_in_window(self):
        """The exfiltration signature becomes window-frequent only after
        the campaign starts — the §3.1 insider-threat scenario."""
        kb = KnowledgeBase(ontology=build_log_ontology())
        world = EnterpriseLogWorld(n_users=20, n_days=50, seed=41,
                                   campaign_start=0.6, n_insiders=3)
        batches = world.generate_batches(kb)
        # MNI support of campaign patterns is bounded by the number of
        # distinct insiders, so the threshold must not exceed it.
        nous = Nous(kb=kb, config=NousConfig(window_size=300, min_support=3,
                                             retrain_every=0, lda_iterations=5))
        cutoff = int(len(batches) * 0.6)

        def sensitive_multi_patterns():
            return {
                p.describe()
                for p, _ in nous.trending().closed_frequent
                if p.size >= 2 and "SensitiveResource" in p.describe()
                and "escalatedOn" in p.describe()
            }

        for batch in batches[:cutoff]:
            nous.ingest_facts(batch.facts, date=batch.date, source=batch.source)
        before = sensitive_multi_patterns()
        for batch in batches[cutoff:]:
            nous.ingest_facts(batch.facts, date=batch.date, source=batch.source)
        after = sensitive_multi_patterns()
        assert after - before, (
            "campaign should create new escalation+sensitive patterns"
        )

    def test_pattern_matcher_finds_insiders(self):
        kb = KnowledgeBase(ontology=build_log_ontology())
        world = EnterpriseLogWorld(n_users=20, n_days=50, seed=41,
                                   campaign_start=0.6, n_insiders=3)
        batches = world.generate_batches(kb)
        nous = Nous(kb=kb, config=NousConfig(window_size=300, min_support=4,
                                             retrain_every=0, lda_iterations=5))
        for batch in batches:
            nous.ingest_facts(batch.facts, date=batch.date, source=batch.source)

        from repro.query import PatternMatcher
        from repro.query.pattern_match import QueryPatternEdge
        graph = nous.dynamic.window.graph
        for vid in graph.vertices():
            graph.set_vertex_prop(vid, "type", kb.entity_type(vid) or "Thing")
        matcher = PatternMatcher(graph, ontology=kb.ontology)
        query = [
            QueryPatternEdge(src="u", dst="r", predicate="downloaded",
                             src_type="User", dst_type="SensitiveResource"),
            QueryPatternEdge(src="u", dst="h", predicate="escalatedOn",
                             src_type="User", dst_type="Host"),
        ]
        matched_users = {m["u"] for m in matcher.match(query, limit=500)}
        assert set(world.insiders) <= matched_users
        # precision: normal users rarely escalate, so the match set is small
        assert len(matched_users) <= len(world.insiders) + 2
