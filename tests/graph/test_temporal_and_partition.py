"""Sliding-window dynamic graph and partition statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph import CountWindow, DynamicGraph, HashPartitioner, TimeWindow
from repro.graph.partition import _stable_hash, compute_partition_stats
from repro.graph.property_graph import PropertyGraph


class TestHashPartitioner:
    def test_deterministic(self):
        p = HashPartitioner(8)
        assert p.partition("dji") == p.partition("dji")

    def test_range(self):
        p = HashPartitioner(4)
        for key in ["a", "b", 42, ("x", 1)]:
            assert 0 <= p.partition(key) < 4

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            HashPartitioner(0)

    def test_bool_keys_hash_by_content_not_int_value(self):
        # Regression: bool is an int subclass, so True/False used to take
        # the integer fast path and collapse onto partitions 1/0 for
        # every shard count — ignoring the hashing scheme entirely.
        assert _stable_hash(True) == _stable_hash("True")
        assert _stable_hash(False) == _stable_hash("False")
        assert _stable_hash(True) != 1
        assert _stable_hash(False) != 0
        p = HashPartitioner(8)
        for key in (True, False):
            assert 0 <= p.partition(key) < 8
            assert p.partition(key) == p.partition(key)

    def test_int_fast_path_untouched(self):
        assert _stable_hash(7) == 7
        assert _stable_hash(0) == 0

    @given(st.lists(st.text(min_size=1, max_size=12), min_size=50, max_size=50, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_reasonable_spread(self, keys):
        p = HashPartitioner(4)
        buckets = [0] * 4
        for key in keys:
            buckets[p.partition(key)] += 1
        assert sum(1 for b in buckets if b > 0) >= 2


class TestPartitionStats:
    def test_counts_and_cut(self):
        g = PropertyGraph(num_partitions=2)
        g.add_edge("a", "b", "e")
        g.add_edge("b", "c", "e")
        stats = compute_partition_stats(g)
        assert sum(stats.vertex_counts) == 3
        assert sum(stats.edge_counts) == 2
        assert 0 <= stats.cut_edges <= 2
        assert 0.0 <= stats.cut_fraction <= 1.0
        assert stats.vertex_balance >= 1.0

    def test_empty_graph(self):
        stats = compute_partition_stats(PropertyGraph(num_partitions=3))
        assert stats.cut_fraction == 0.0
        assert stats.vertex_balance == 1.0
        assert stats.edge_balance == 1.0

    def test_to_dict_is_json_safe(self):
        import json

        g = PropertyGraph(num_partitions=2)
        g.add_edge("a", "b", "e")
        g.add_edge("b", "c", "e")
        data = compute_partition_stats(g).to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["cut_edges"] + sum(data["edge_counts"]) >= 2
        assert data["vertex_balance"] >= 1.0
        assert data["edge_balance"] >= 1.0


class TestCountWindow:
    def test_keeps_last_n(self):
        dyn = DynamicGraph(window=CountWindow(size=3))
        for i in range(5):
            dyn.add_edge(f"s{i}", f"o{i}", "rel", timestamp=float(i))
        assert dyn.window_size == 3
        labels = [(e.src, e.dst) for e in dyn.window_edges()]
        assert labels == [("s2", "o2"), ("s3", "o3"), ("s4", "o4")]

    def test_graph_tracks_window(self):
        dyn = DynamicGraph(window=CountWindow(size=2))
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        dyn.add_edge("c", "d", "r", timestamp=1.0)
        dyn.add_edge("e", "f", "r", timestamp=2.0)
        assert dyn.graph.num_edges == 2
        assert not dyn.graph.has_vertex("a")
        assert dyn.graph.has_vertex("e")

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            CountWindow(0)


class TestTimeWindow:
    def test_expires_by_span(self):
        dyn = DynamicGraph(window=TimeWindow(span=10.0))
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        dyn.add_edge("c", "d", "r", timestamp=5.0)
        dyn.add_edge("e", "f", "r", timestamp=12.0)
        assert dyn.window_size == 2  # t=0 expired (12 - 10 = 2 > 0)

    def test_advance_time_evicts(self):
        dyn = DynamicGraph(window=TimeWindow(span=5.0))
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        evicted = dyn.advance_time(100.0)
        assert evicted == 1
        assert dyn.window_size == 0
        assert dyn.graph.num_edges == 0

    def test_invalid_span(self):
        with pytest.raises(ConfigError):
            TimeWindow(0.0)


class TestDynamicGraphSemantics:
    def test_timestamps_must_not_go_backwards(self):
        dyn = DynamicGraph()
        dyn.add_edge("a", "b", "r", timestamp=5.0)
        with pytest.raises(ConfigError):
            dyn.add_edge("c", "d", "r", timestamp=4.0)

    def test_listeners_fire(self):
        added, evicted = [], []
        dyn = DynamicGraph(window=CountWindow(size=1))
        dyn.on_add(added.append)
        dyn.on_evict(evicted.append)
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        dyn.add_edge("c", "d", "r", timestamp=1.0)
        assert len(added) == 2
        assert len(evicted) == 1
        assert evicted[0].src == "a"

    def test_vertex_refcount_with_shared_vertices(self):
        dyn = DynamicGraph(window=CountWindow(size=2))
        dyn.add_edge("hub", "a", "r", timestamp=0.0)
        dyn.add_edge("hub", "b", "r", timestamp=1.0)
        dyn.add_edge("hub", "c", "r", timestamp=2.0)  # evicts hub->a
        assert dyn.graph.has_vertex("hub")
        assert not dyn.graph.has_vertex("a")
        dyn.add_edge("x", "y", "r", timestamp=3.0)
        dyn.add_edge("x", "z", "r", timestamp=4.0)  # hub fully evicted now
        assert not dyn.graph.has_vertex("hub")

    def test_vertex_props_applied(self):
        dyn = DynamicGraph()
        dyn.add_edge(
            "dji", "drone", "makes", timestamp=0.0,
            vertex_props={"dji": {"type": "Company"}},
        )
        assert dyn.graph.vertex_props("dji")["type"] == "Company"

    def test_edge_props_stored(self):
        dyn = DynamicGraph()
        timed = dyn.add_edge("a", "b", "r", timestamp=0.0, confidence=0.7)
        assert timed.prop_dict() == {"confidence": 0.7}
        edge = next(dyn.graph.edges())
        assert edge.props["confidence"] == 0.7

    def test_counters(self):
        dyn = DynamicGraph(window=CountWindow(size=1))
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        dyn.add_edge("c", "d", "r", timestamp=1.0)
        assert dyn.total_added == 2
        assert dyn.total_evicted == 1

    def test_snapshot_is_independent(self):
        dyn = DynamicGraph()
        dyn.add_edge("a", "b", "r", timestamp=0.0)
        snap = dyn.snapshot()
        dyn.add_edge("c", "d", "r", timestamp=1.0)
        assert snap.num_edges == 1
        assert dyn.graph.num_edges == 2

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_window_invariant_holds(self, size, n_edges):
        """Graph edge count always equals min(window size, edges added)."""
        dyn = DynamicGraph(window=CountWindow(size=size))
        for i in range(n_edges):
            dyn.add_edge(f"s{i}", f"o{i}", "rel", timestamp=float(i))
            assert dyn.graph.num_edges == dyn.window_size
            assert dyn.window_size <= size
        assert dyn.window_size == min(size, n_edges)
        assert dyn.total_added - dyn.total_evicted == dyn.window_size

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_edges_window_consistency(self, pairs):
        """Repeated identical triples must not corrupt eviction bookkeeping."""
        dyn = DynamicGraph(window=CountWindow(size=4))
        for t, (a, b) in enumerate(pairs):
            dyn.add_edge(f"v{a}", f"v{b}", "rel", timestamp=float(t))
        assert dyn.graph.num_edges == dyn.window_size == min(4, len(pairs))
