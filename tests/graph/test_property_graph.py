"""Unit tests for the property-graph core."""

import pytest

from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.graph import PropertyGraph
from repro.graph.property_graph import from_edge_list


@pytest.fixture
def small_graph():
    g = PropertyGraph()
    g.add_vertex("dji", type="Company", name="DJI")
    g.add_vertex("drone", type="Product")
    g.add_vertex("shenzhen", type="City")
    g.add_edge("dji", "drone", "manufactures", confidence=0.9)
    g.add_edge("dji", "shenzhen", "headquarteredIn")
    return g


class TestVertices:
    def test_add_and_lookup(self, small_graph):
        assert small_graph.has_vertex("dji")
        assert small_graph.vertex_props("dji")["type"] == "Company"

    def test_add_merges_properties(self, small_graph):
        small_graph.add_vertex("dji", founded=2006)
        props = small_graph.vertex_props("dji")
        assert props["founded"] == 2006
        assert props["name"] == "DJI"

    def test_strict_add_raises_on_duplicate(self, small_graph):
        with pytest.raises(DuplicateVertexError):
            small_graph.add_vertex("dji", strict=True)

    def test_missing_vertex_raises(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.vertex_props("missing")

    def test_set_vertex_prop(self, small_graph):
        small_graph.set_vertex_prop("drone", "category", "uav")
        assert small_graph.vertex_props("drone")["category"] == "uav"

    def test_remove_vertex_drops_incident_edges(self, small_graph):
        small_graph.remove_vertex("dji")
        assert small_graph.num_edges == 0
        assert not small_graph.has_vertex("dji")

    def test_remove_missing_vertex_raises(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.remove_vertex("nope")

    def test_contains_and_len(self, small_graph):
        assert "dji" in small_graph
        assert len(small_graph) == 3


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = PropertyGraph()
        g.add_edge("a", "b", "rel")
        assert g.has_vertex("a") and g.has_vertex("b")

    def test_parallel_edges_allowed(self):
        g = PropertyGraph()
        e1 = g.add_edge("a", "b", "rel")
        e2 = g.add_edge("a", "b", "rel")
        assert e1 != e2
        assert len(g.edges_between("a", "b")) == 2

    def test_edge_properties(self, small_graph):
        edges = small_graph.edges_between("dji", "drone")
        assert edges[0].props["confidence"] == 0.9

    def test_remove_edge(self, small_graph):
        eid = small_graph.add_edge("drone", "dji", "madeBy")
        removed = small_graph.remove_edge(eid)
        assert removed.label == "madeBy"
        assert not small_graph.has_edge(eid)

    def test_remove_missing_edge_raises(self, small_graph):
        with pytest.raises(EdgeNotFoundError):
            small_graph.remove_edge(999)

    def test_edge_lookup_raises(self, small_graph):
        with pytest.raises(EdgeNotFoundError):
            small_graph.edge(999)

    def test_find_edges_by_label(self, small_graph):
        found = list(small_graph.find_edges(label="manufactures"))
        assert len(found) == 1
        assert found[0].dst == "drone"

    def test_find_edges_by_predicate(self, small_graph):
        found = list(
            small_graph.find_edges(predicate=lambda e: e.props.get("confidence", 0) > 0.5)
        )
        assert len(found) == 1

    def test_edge_other_endpoint(self, small_graph):
        edge = small_graph.edges_between("dji", "drone")[0]
        assert edge.other("dji") == "drone"
        assert edge.other("drone") == "dji"
        with pytest.raises(ValueError):
            edge.other("shenzhen")


class TestDegreesAndNeighbors:
    def test_degrees(self, small_graph):
        assert small_graph.out_degree("dji") == 2
        assert small_graph.in_degree("drone") == 1
        assert small_graph.degree("dji") == 2

    def test_successors_predecessors(self, small_graph):
        assert small_graph.successors("dji") == {"drone", "shenzhen"}
        assert small_graph.predecessors("drone") == {"dji"}

    def test_neighbors_ignore_direction(self, small_graph):
        assert small_graph.neighbors("drone") == {"dji"}

    def test_degree_on_missing_vertex_raises(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.out_degree("ghost")


class TestViewsAndTransforms:
    def test_triplets_expose_props(self, small_graph):
        triplets = {t.label: t for t in small_graph.triplets()}
        t = triplets["manufactures"]
        assert t.src_props["type"] == "Company"
        assert t.dst_props["type"] == "Product"
        assert t.src == "dji" and t.dst == "drone"

    def test_subgraph_vertex_filter(self, small_graph):
        sub = small_graph.subgraph(
            vertex_filter=lambda vid, p: p.get("type") != "City"
        )
        assert not sub.has_vertex("shenzhen")
        assert sub.num_edges == 1  # headquarteredIn edge lost its endpoint

    def test_subgraph_edge_filter(self, small_graph):
        sub = small_graph.subgraph(edge_filter=lambda e: e.label == "manufactures")
        assert sub.num_edges == 1
        assert sub.num_vertices == 3  # vertices all survive

    def test_map_vertices(self, small_graph):
        mapped = small_graph.map_vertices(lambda vid, p: {"t": p.get("type")})
        assert mapped.vertex_props("dji") == {"t": "Company"}
        assert mapped.num_edges == small_graph.num_edges

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add_edge("drone", "shenzhen", "testedIn")
        assert clone.num_edges == small_graph.num_edges + 1

    def test_reverse_flips_direction(self, small_graph):
        rev = small_graph.reverse()
        assert rev.successors("drone") == {"dji"}
        assert rev.out_degree("dji") == 0

    def test_from_edge_list(self):
        g = from_edge_list([("a", "r", "b"), ("b", "r", "c")])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_degree_histogram(self, small_graph):
        hist = small_graph.degree_histogram()
        assert hist == {2: 1, 1: 2}
