"""Property-based tests: index/edge-list consistency of PropertyGraph.

Random interleavings of add/remove operations (vertices and edges) must
leave every incremental secondary index — label, (vertex, label)
adjacency, pair, successor/predecessor refcounts — exactly equal to what
a from-scratch recomputation over the raw edge list produces.  The same
must hold for the graph a DynamicGraph maintains through its
window-eviction path (both count and time windows).
"""

from hypothesis import given, settings, strategies as st

from repro.graph import PropertyGraph
from repro.graph.temporal import CountWindow, DynamicGraph, TimeWindow

VERTICES = ["a", "b", "c", "d", "e", "f"]
LABELS = ["likes", "knows", "sells", "near"]

# Operation encodings (interpreted against live graph state, so every
# generated sequence is valid):
#   ("add_vertex", v)
#   ("add_edge", src, dst, label)
#   ("remove_edge", k)    -> remove k-th live edge (mod), no-op when empty
#   ("remove_vertex", k)  -> remove k-th live vertex (mod), no-op when empty
_op = st.one_of(
    st.tuples(st.just("add_vertex"), st.sampled_from(VERTICES)),
    st.tuples(
        st.just("add_edge"),
        st.sampled_from(VERTICES),
        st.sampled_from(VERTICES),
        st.sampled_from(LABELS),
    ),
    st.tuples(st.just("remove_edge"), st.integers(min_value=0, max_value=200)),
    st.tuples(st.just("remove_vertex"), st.integers(min_value=0, max_value=200)),
)


def _apply(graph: PropertyGraph, op) -> None:
    kind = op[0]
    if kind == "add_vertex":
        graph.add_vertex(op[1], tag=len(graph))
    elif kind == "add_edge":
        graph.add_edge(op[1], op[2], op[3], weight=1.0)
    elif kind == "remove_edge":
        eids = sorted(e.eid for e in graph.edges())
        if eids:
            graph.remove_edge(eids[op[1] % len(eids)])
    elif kind == "remove_vertex":
        vids = sorted(graph.vertices(), key=str)
        if vids:
            graph.remove_vertex(vids[op[1] % len(vids)])


def _check_semantic_views(graph: PropertyGraph) -> None:
    """Indexed lookups must agree with brute-force scans of the edge list."""
    all_edges = list(graph.edges())
    for label in LABELS:
        expected = {e.eid for e in all_edges if e.label == label}
        assert {e.eid for e in graph.edges_with_label(label)} == expected
        assert graph.label_count(label) == len(expected)
        assert {e.eid for e in graph.find_edges(label=label)} == expected
    for vid in graph.vertices():
        out_scan = [e for e in all_edges if e.src == vid]
        in_scan = [e for e in all_edges if e.dst == vid]
        assert {e.eid for e in graph.out_edges(vid)} == {e.eid for e in out_scan}
        assert {e.eid for e in graph.in_edges(vid)} == {e.eid for e in in_scan}
        assert graph.successors(vid) == {e.dst for e in out_scan}
        assert graph.predecessors(vid) == {e.src for e in in_scan}
        assert graph.neighbors(vid) == (
            {e.dst for e in out_scan} | {e.src for e in in_scan}
        )
        for label in LABELS:
            assert {e.eid for e in graph.out_edges(vid, label=label)} == {
                e.eid for e in out_scan if e.label == label
            }
            assert {e.eid for e in graph.in_edges(vid, label=label)} == {
                e.eid for e in in_scan if e.label == label
            }
    for src in VERTICES:
        for dst in VERTICES:
            expected = {e.eid for e in all_edges if e.src == src and e.dst == dst}
            assert {e.eid for e in graph.edges_between(src, dst)} == expected


class TestPropertyGraphIndexInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_op, max_size=40))
    def test_random_interleavings_keep_indexes_consistent(self, ops):
        graph = PropertyGraph()
        version = graph.version
        for op in ops:
            _apply(graph, op)
            graph.check_index_invariants()
            assert graph.version >= version, "version must be monotonic"
            version = graph.version
        _check_semantic_views(graph)

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=30))
    def test_mutations_bump_version(self, ops):
        graph = PropertyGraph()
        for op in ops:
            before = graph.version
            edges_before = graph.num_edges
            vertices_before = graph.num_vertices
            _apply(graph, op)
            if (graph.num_edges, graph.num_vertices) != (
                edges_before,
                vertices_before,
            ) or op[0] == "add_vertex":
                assert graph.version > before


_timed_edge = st.tuples(
    st.sampled_from(VERTICES),
    st.sampled_from(VERTICES),
    st.sampled_from(LABELS),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # timestamp delta
)


class TestDynamicGraphEvictionInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(_timed_edge, max_size=40),
        size=st.integers(min_value=1, max_value=8),
    )
    def test_count_window_eviction_keeps_graph_and_indexes_in_sync(
        self, edges, size
    ):
        dyn = DynamicGraph(window=CountWindow(size=size))
        now = 0.0
        for src, dst, label, delta in edges:
            now += delta
            dyn.add_edge(src, dst, label, timestamp=now, confidence=0.5)
            dyn.graph.check_index_invariants()
            assert dyn.window_size <= size
            # The materialised graph must mirror the window exactly.
            window_facts = sorted(
                (t.src, t.dst, t.label) for t in dyn.window_edges()
            )
            graph_facts = sorted(
                (e.src, e.dst, e.label) for e in dyn.graph.edges()
            )
            assert window_facts == graph_facts
            # No orphan vertices survive eviction.
            live = {t.src for t in dyn.window_edges()} | {
                t.dst for t in dyn.window_edges()
            }
            assert set(dyn.graph.vertices()) == live

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(_timed_edge, max_size=30),
        span=st.floats(min_value=0.5, max_value=10.0),
        advances=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False), max_size=5
        ),
    )
    def test_time_window_eviction_keeps_graph_and_indexes_in_sync(
        self, edges, span, advances
    ):
        dyn = DynamicGraph(window=TimeWindow(span=span))
        now = 0.0
        for src, dst, label, delta in edges:
            now += delta
            dyn.add_edge(src, dst, label, timestamp=now)
            dyn.graph.check_index_invariants()
        for delta in advances:
            now += delta
            dyn.advance_time(now)
            dyn.graph.check_index_invariants()
            cutoff = now - span
            assert all(t.timestamp >= cutoff for t in dyn.window_edges())
            window_facts = sorted(
                (t.src, t.dst, t.label) for t in dyn.window_edges()
            )
            graph_facts = sorted(
                (e.src, e.dst, e.label) for e in dyn.graph.edges()
            )
            assert window_facts == graph_facts
