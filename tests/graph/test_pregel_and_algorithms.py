"""Pregel primitives and graph algorithms, checked against networkx oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    PropertyGraph,
    aggregate_messages,
    bfs_distances,
    connected_components,
    k_hop_neighborhood,
    pagerank,
    pregel,
    shortest_path,
    triangle_count,
)
from repro.errors import ConfigError, VertexNotFoundError
from repro.graph.partition import HashPartitioner


def chain_graph(n):
    g = PropertyGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, "next")
    return g


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=0, max_value=24))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(m)
    ]
    return n, edges


def build_pair(n, edges):
    """Build the same graph as a PropertyGraph and a networkx MultiDiGraph."""
    pg = PropertyGraph()
    xg = nx.MultiDiGraph()
    for i in range(n):
        pg.add_vertex(i)
        xg.add_node(i)
    for src, dst in edges:
        pg.add_edge(src, dst, "e")
        xg.add_edge(src, dst)
    return pg, xg


class TestAggregateMessages:
    def test_in_degree_via_messages(self):
        g = chain_graph(4)
        inbox = aggregate_messages(
            g,
            send=lambda e, s, d: [(e.dst, 1)],
            merge=lambda a, b: a + b,
        )
        assert inbox == {1: 1, 2: 1, 3: 1}

    def test_messages_merge(self):
        g = PropertyGraph()
        g.add_edge("a", "c", "e")
        g.add_edge("b", "c", "e")
        inbox = aggregate_messages(
            g, send=lambda e, s, d: [(e.dst, 1)], merge=lambda a, b: a + b
        )
        assert inbox == {"c": 2}

    def test_states_are_passed_to_send(self):
        g = chain_graph(3)
        states = {0: 10, 1: 20, 2: 30}
        inbox = aggregate_messages(
            g,
            send=lambda e, s, d: [(e.dst, s)],
            merge=lambda a, b: a + b,
            states=states,
        )
        assert inbox == {1: 10, 2: 20}


class TestPregel:
    def test_max_iterations_validated(self):
        g = chain_graph(2)
        with pytest.raises(ConfigError):
            pregel(
                g,
                initial_state=lambda v, p: 0,
                vertex_program=lambda v, s, m: s,
                send=lambda e, s, d: [],
                merge=lambda a, b: a,
                max_iterations=0,
            )

    def test_converges_without_messages(self):
        g = chain_graph(3)
        result = pregel(
            g,
            initial_state=lambda v, p: 0,
            vertex_program=lambda v, s, m: s,
            send=lambda e, s, d: [],
            merge=lambda a, b: a,
        )
        assert result.converged
        assert result.supersteps == 0

    def test_distance_propagation(self):
        g = chain_graph(5)
        inf = float("inf")

        def send(edge, src_state, dst_state):
            if src_state + 1 < dst_state:
                yield (edge.dst, src_state + 1)

        result = pregel(
            g,
            initial_state=lambda v, p: 0 if v == 0 else inf,
            vertex_program=lambda v, s, m: min(s, m),
            send=send,
            merge=min,
        )
        assert result.states == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert result.converged

    def test_message_accounting(self):
        g = chain_graph(4)
        inf = float("inf")
        result = pregel(
            g,
            initial_state=lambda v, p: 0 if v == 0 else inf,
            vertex_program=lambda v, s, m: min(s, m),
            send=lambda e, s, d: [(e.dst, s + 1)] if s + 1 < d else [],
            merge=min,
        )
        assert len(result.messages_per_step) == result.supersteps
        assert all(count >= 1 for count in result.messages_per_step)
        assert len(result.cross_partition_messages) == result.supersteps


class TestPregelEdgeCases:
    def test_cross_partition_attributed_to_actual_sender(self):
        # A message addressed to edge.src travels *from* dst: the
        # cross-partition counter must compare the partitions of dst
        # (the sender) and src (the target), not src against itself —
        # which would count zero for every reverse-direction message.
        partitioner = HashPartitioner(2)
        a = next(i for i in range(100) if partitioner.partition(i) == 0)
        b = next(i for i in range(100) if partitioner.partition(i) == 1)
        g = PropertyGraph(num_partitions=2)
        g.add_edge(a, b, "e")
        result = pregel(
            g,
            initial_state=lambda v, p: 0,
            vertex_program=lambda v, s, m: s,
            send=lambda e, s, d: [(e.src, 1)],
            merge=lambda x, y: x + y,
            max_iterations=1,
        )
        assert result.messages_per_step == [1]
        assert result.cross_partition_messages == [1]

    def test_same_partition_reverse_message_not_cross(self):
        partitioner = HashPartitioner(2)
        same = [i for i in range(100) if partitioner.partition(i) == 0][:2]
        g = PropertyGraph(num_partitions=2)
        g.add_edge(same[0], same[1], "e")
        result = pregel(
            g,
            initial_state=lambda v, p: 0,
            vertex_program=lambda v, s, m: s,
            send=lambda e, s, d: [(e.src, 1)],
            merge=lambda x, y: x + y,
            max_iterations=1,
        )
        assert result.cross_partition_messages == [0]

    def test_max_iterations_hit_reports_not_converged(self):
        g = chain_graph(3)
        result = pregel(
            g,
            initial_state=lambda v, p: 0,
            # State always changes and messages always flow: the run
            # can only stop by exhausting its iteration budget.
            vertex_program=lambda v, s, m: s + m,
            send=lambda e, s, d: [(e.dst, 1)],
            merge=lambda x, y: x + y,
            max_iterations=3,
        )
        assert result.supersteps == 3
        assert not result.converged

    def test_empty_graph(self):
        result = pregel(
            PropertyGraph(),
            initial_state=lambda v, p: 0,
            vertex_program=lambda v, s, m: s,
            send=lambda e, s, d: [(e.dst, 1)],
            merge=min,
        )
        assert result.states == {}
        assert result.supersteps == 0
        assert result.converged

    def test_message_to_unknown_vertex_is_dropped(self):
        g = chain_graph(2)
        result = pregel(
            g,
            initial_state=lambda v, p: 0,
            vertex_program=lambda v, s, m: s,
            send=lambda e, s, d: [("ghost", 1)],
            merge=lambda x, y: x + y,
            max_iterations=1,
        )
        # The message is generated (and counted) but there is no state
        # for its target: it is dropped, not KeyError'd into the run.
        assert result.messages_per_step == [1]
        assert "ghost" not in result.states
        assert result.states == {0: 0, 1: 0}

    def test_non_commutative_merge_guard(self):
        g = chain_graph(3)

        def send_two(edge, src_state, dst_state):
            # Distinct messages to one target: merge order observable.
            yield (1, edge.src)

        with pytest.raises(ConfigError, match="not commutative"):
            aggregate_messages(
                g,
                send=send_two,
                merge=lambda x, y: x - y,
                check_commutative=True,
            )
        # Unchecked, the misuse silently produces *an* answer — the
        # guard exists precisely because this does not raise:
        assert aggregate_messages(g, send=send_two, merge=lambda x, y: x - y)

    def test_commutative_merge_passes_guard(self):
        g = chain_graph(4)
        inbox = aggregate_messages(
            g,
            send=lambda e, s, d: [(e.dst, 1)],
            merge=lambda x, y: x + y,
            check_commutative=True,
        )
        assert inbox == {1: 1, 2: 1, 3: 1}


class TestConnectedComponents:
    def test_two_components(self):
        g = PropertyGraph()
        g.add_edge("a", "b", "e")
        g.add_edge("c", "d", "e")
        labels = connected_components(g)
        assert labels["a"] == labels["b"]
        assert labels["c"] == labels["d"]
        assert labels["a"] != labels["c"]

    def test_isolated_vertex_is_own_component(self):
        g = PropertyGraph()
        g.add_vertex("solo")
        g.add_edge("a", "b", "e")
        labels = connected_components(g)
        assert labels["solo"] == "solo"

    @given(random_edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, data):
        n, edges = data
        pg, xg = build_pair(n, edges)
        ours = connected_components(pg)
        theirs = list(nx.connected_components(xg.to_undirected()))
        # same partition: two nodes share our label iff they share a nx component
        for comp in theirs:
            labels = {ours[v] for v in comp}
            assert len(labels) == 1
        assert len({frozenset(c) for c in theirs}) == len(set(ours.values()))


class TestPageRank:
    def test_sums_to_one(self):
        g = chain_graph(6)
        ranks = pagerank(g)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_sink_handled(self):
        g = PropertyGraph()
        g.add_edge("a", "b", "e")  # b is a sink
        ranks = pagerank(g)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert ranks["b"] > ranks["a"]

    def test_empty_graph(self):
        assert pagerank(PropertyGraph()) == {}

    @given(random_edge_lists())
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, data):
        n, edges = data
        pg, xg = build_pair(n, edges)
        ours = pagerank(pg, max_iterations=100, tol=1e-10)
        # MultiDiGraph keeps parallel-edge multiplicity, matching our semantics.
        theirs = nx.pagerank(xg, alpha=0.85, max_iter=200, tol=1e-10)
        for node in theirs:
            assert ours[node] == pytest.approx(theirs[node], abs=5e-4)


class TestTraversals:
    def test_bfs_distances_undirected(self):
        g = chain_graph(4)
        assert bfs_distances(g, 2) == {2: 0, 1: 1, 3: 1, 0: 2}

    def test_bfs_directed(self):
        g = chain_graph(4)
        assert bfs_distances(g, 2, directed=True) == {2: 0, 3: 1}

    def test_bfs_max_depth(self):
        g = chain_graph(10)
        dist = bfs_distances(g, 0, max_depth=2)
        assert max(dist.values()) == 2

    def test_bfs_missing_source(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(chain_graph(3), 99)

    def test_shortest_path_simple(self):
        g = chain_graph(5)
        assert shortest_path(g, 0, 4) == [0, 1, 2, 3, 4]

    def test_shortest_path_unreachable(self):
        g = PropertyGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        assert shortest_path(g, "a", "b") is None

    def test_shortest_path_weighted_prefers_cheap_route(self):
        g = PropertyGraph()
        g.add_edge("s", "t", "e", w=10.0)
        g.add_edge("s", "m", "e", w=1.0)
        g.add_edge("m", "t", "e", w=1.0)
        path = shortest_path(g, "s", "t", weight=lambda e: e.props["w"])
        assert path == ["s", "m", "t"]

    def test_k_hop(self):
        g = chain_graph(6)
        assert k_hop_neighborhood(g, 0, 2) == {1, 2}

    @given(random_edge_lists())
    @settings(max_examples=25, deadline=None)
    def test_bfs_matches_networkx(self, data):
        n, edges = data
        pg, xg = build_pair(n, edges)
        ours = bfs_distances(pg, 0)
        theirs = nx.single_source_shortest_path_length(xg.to_undirected(), 0)
        assert ours == dict(theirs)


class TestTriangles:
    def test_triangle(self):
        g = PropertyGraph()
        g.add_edge("a", "b", "e")
        g.add_edge("b", "c", "e")
        g.add_edge("c", "a", "e")
        assert triangle_count(g) == 1

    def test_no_triangle_in_chain(self):
        assert triangle_count(chain_graph(5)) == 0

    @given(random_edge_lists())
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, data):
        n, edges = data
        pg, xg = build_pair(n, edges)
        simple = nx.Graph(xg.to_undirected())
        simple.remove_edges_from(nx.selfloop_edges(simple))
        expected = sum(nx.triangles(simple).values()) // 3
        assert triangle_count(pg) == expected
