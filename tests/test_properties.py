"""Cross-cutting property-based tests with brute-force oracles."""

from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryParseError
from repro.graph import PropertyGraph
from repro.kb.aliases import AliasDictionary, normalize_alias
from repro.nlp.dates import SimpleDate
from repro.query.parser import parse_query
from repro.query.pattern_match import PatternMatcher, QueryPatternEdge


class TestAliasProperties:
    @given(st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_normalize_idempotent(self, text):
        once = normalize_alias(text)
        assert normalize_alias(once) == once

    @given(st.text(min_size=1, max_size=20), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_priors_always_normalised(self, alias, n_entities):
        d = AliasDictionary()
        for i in range(n_entities):
            d.add(alias, f"e{i}", count=i + 1)
        candidates = d.candidates(alias)
        if candidates:
            assert sum(p for _, p in candidates) == pytest.approx(1.0)
            priors = [p for _, p in candidates]
            assert priors == sorted(priors, reverse=True)


class TestDateProperties:
    @given(
        st.integers(1900, 2100),
        st.one_of(st.none(), st.integers(1, 12)),
        st.one_of(st.none(), st.integers(1, 28)),
    )
    @settings(max_examples=100, deadline=None)
    def test_ordinal_consistent_with_ordering(self, year, month, day):
        if month is None:
            day = None
        a = SimpleDate(year, month, day)
        b = SimpleDate(year + 1, month, day)
        assert a < b
        assert a.ordinal() < b.ordinal()

    @given(st.integers(1900, 2100), st.integers(1, 11), st.integers(1, 27))
    @settings(max_examples=60, deadline=None)
    def test_ordinal_monotone_within_year(self, year, month, day):
        assert SimpleDate(year, month, day) < SimpleDate(year, month + 1, day)
        assert SimpleDate(year, month, day) < SimpleDate(year, month, day + 1)


class TestParserNeverCrashes:
    @given(st.text(max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_parse_total_function(self, text):
        """Any input either parses into a query or raises QueryParseError."""
        try:
            query = parse_query(text)
        except QueryParseError:
            return
        assert query.text == text.strip()


def brute_force_match(graph, pattern, ontology=None):
    """Oracle: try every injective assignment of vertices to variables."""
    variables = sorted({v for e in pattern for v in (e.src, e.dst)})
    vertices = list(graph.vertices())
    results = []
    if len(vertices) < len(variables):
        return results
    for assignment in permutations(vertices, len(variables)):
        binding = dict(zip(variables, assignment))
        ok = True
        for edge in pattern:
            src, dst = binding[edge.src], binding[edge.dst]
            edges = [
                e for e in graph.edges_between(src, dst)
                if e.label == edge.predicate
            ]
            if not edges:
                ok = False
                break
            for var, vertex, required in (
                (edge.src, src, edge.src_type),
                (edge.dst, dst, edge.dst_type),
            ):
                del var
                if required is not None and graph.vertex_props(vertex).get("type") != required:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            results.append(binding)
    return results


@st.composite
def small_typed_graphs(draw):
    g = PropertyGraph()
    n = draw(st.integers(2, 5))
    for i in range(n):
        g.add_vertex(f"v{i}", type=draw(st.sampled_from(["A", "B"])))
    m = draw(st.integers(1, 8))
    for _ in range(m):
        s = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        g.add_edge(f"v{s}", f"v{d}", draw(st.sampled_from(["p", "q"])))
    return g


@st.composite
def small_patterns(draw):
    n_edges = draw(st.integers(1, 2))
    variables = ["x", "y", "z"]
    edges = []
    for i in range(n_edges):
        src = variables[draw(st.integers(0, 2))]
        dst = variables[draw(st.integers(0, 2))]
        if src == dst:
            dst = variables[(variables.index(src) + 1) % 3]
        edges.append(
            QueryPatternEdge(
                src=src,
                dst=dst,
                predicate=draw(st.sampled_from(["p", "q"])),
                src_type=draw(st.sampled_from([None, "A", "B"])),
                dst_type=draw(st.sampled_from([None, "A", "B"])),
            )
        )
    return edges


class TestPatternMatcherAgainstOracle:
    @given(small_typed_graphs(), small_patterns())
    @settings(max_examples=60, deadline=None)
    def test_matches_equal_brute_force(self, graph, pattern):
        matcher = PatternMatcher(graph)
        ours = matcher.match(pattern, limit=10_000)
        oracle = brute_force_match(graph, pattern)

        def canon(bindings):
            return frozenset(
                frozenset(b.items()) for b in bindings
            )

        assert canon(ours) == canon(oracle)


class TestGraphInvariants:
    @given(small_typed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph):
        out_total = sum(graph.out_degree(v) for v in graph.vertices())
        in_total = sum(graph.in_degree(v) for v in graph.vertices())
        assert out_total == in_total == graph.num_edges

    @given(small_typed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_reverse_is_involution(self, graph):
        double = graph.reverse().reverse()
        assert double.num_vertices == graph.num_vertices
        assert double.num_edges == graph.num_edges
        original = sorted((e.src, e.label, e.dst) for e in graph.edges())
        rebuilt = sorted((e.src, e.label, e.dst) for e in double.edges())
        assert original == rebuilt

    @given(small_typed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_subgraph_never_grows(self, graph):
        sub = graph.subgraph(vertex_filter=lambda vid, p: p.get("type") == "A")
        assert sub.num_vertices <= graph.num_vertices
        assert sub.num_edges <= graph.num_edges
        for edge in sub.edges():
            assert sub.vertex_props(edge.src).get("type") == "A"
            assert sub.vertex_props(edge.dst).get("type") == "A"
