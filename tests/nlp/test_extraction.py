"""OpenIE, SRL, coreference and full-pipeline extraction tests.

The assertions mirror Figure 3 of the paper: dated (subject, relation,
object) rows from WSJ-style sentences.
"""

import pytest

from repro.nlp import NlpPipeline, OpenIEExtractor, PosTagger, SrlExtractor, parse_date, tokenize
from repro.nlp.srl import frame_for


@pytest.fixture(scope="module")
def pipeline():
    return NlpPipeline(
        gazetteer={
            "dji": "ORG",
            "accel partners": "ORG",
            "amazon": "ORG",
            "kiva systems": "ORG",
            "windermere": "ORG",
            "3d robotics": "ORG",
            "faa": "ORG",
        }
    )


def triple_set(doc):
    return {(t.subject, t.relation, t.object) for t in doc.triples}


class TestOpenIE:
    def extract(self, text):
        tagger = PosTagger()
        tokens = tokenize(text)
        tags = tagger.tag(tokens)
        return OpenIEExtractor().extract(tokens, tags)

    def test_simple_svo(self):
        extractions = self.extract("DJI manufactures drones")
        assert ("DJI", "manufactures", "drones") in {
            e.as_tuple() for e in extractions
        }

    def test_verb_plus_preposition(self):
        extractions = self.extract("DJI invested in camera technology")
        tuples = {e.as_tuple() for e in extractions}
        assert ("DJI", "invested in", "camera technology") in tuples

    def test_nary_extras(self):
        extractions = self.extract(
            "DJI raised $75 million from Accel Partners in May 2015"
        )
        primary = extractions[0]
        assert primary.as_tuple() == ("DJI", "raised", "$75 million")
        preps = dict(primary.extra_args)
        assert preps["from"] == "Accel Partners"
        assert preps["in"] == "May 2015"

    def test_nary_flattened_binaries(self):
        extractions = self.extract("Amazon acquired Kiva Systems for $775 million")
        tuples = {e.as_tuple() for e in extractions}
        assert ("Amazon", "acquire for", "$775 million") in tuples

    def test_copular(self):
        extractions = self.extract("DJI is a Chinese company")
        tuples = {e.as_tuple() for e in extractions}
        assert ("DJI", "is", "a Chinese company") in tuples

    def test_negation_detected(self):
        extractions = self.extract("The FAA did not approve the flights")
        assert any(e.negated for e in extractions)

    def test_no_subject_no_extraction(self):
        extractions = self.extract("Raised $50 million quickly")
        assert all(e.arg1 != "" for e in extractions)

    def test_confidence_bounds(self):
        for text in [
            "DJI raised $75 million from Accel Partners in May 2015",
            "It said that they might consider an offer",
        ]:
            for e in self.extract(text):
                assert 0.05 <= e.confidence <= 0.95

    def test_entity_args_boost_confidence(self):
        tagger = PosTagger()
        tokens = tokenize("DJI acquired Parrot")
        tags = tagger.tag(tokens)
        from repro.nlp import NamedEntityRecognizer

        ner = NamedEntityRecognizer(gazetteer={"dji": "ORG", "parrot": "ORG"})
        mentions = ner.recognize(tokens, tags)
        with_entities = OpenIEExtractor().extract(tokens, tags, mentions)
        without = OpenIEExtractor().extract(tokens, tags)
        assert with_entities[0].confidence > without[0].confidence


class TestSRL:
    def extract(self, text):
        tagger = PosTagger()
        tokens = tokenize(text)
        tags = tagger.tag(tokens)
        return SrlExtractor().extract(tokens, tags)

    def test_acquire_frame(self):
        frames = self.extract("Amazon acquired Kiva Systems for $775 million")
        frame = frames[0]
        assert frame.verb == "acquire"
        assert frame.roles["A0"] == "Amazon"
        assert frame.roles["A1"] == "Kiva Systems"
        assert frame.roles["AM-PRICE"] == "$775 million"

    def test_raise_frame_with_source(self):
        frames = self.extract("DJI raised $75 million from Accel Partners")
        roles = frames[0].roles
        assert roles["A1"] == "$75 million"
        assert roles["A2-SOURCE"] == "Accel Partners"

    def test_invest_prep_object(self):
        frames = self.extract("GoPro invested in drone technology")
        roles = frames[0].roles
        assert roles["A1"] == "drone technology"

    def test_purpose_clause(self):
        frames = self.extract("Windermere uses drones to capture aerial photos")
        roles = frames[0].roles
        assert roles["A1"] == "drones"
        assert "capture aerial photos" in roles["AM-PNC"]

    def test_unknown_verb_produces_nothing(self):
        frames = self.extract("The drone hovered above the field")
        assert frames == []

    def test_frames_to_triples(self):
        frames = self.extract("Amazon acquired Kiva Systems for $775 million")
        triples = frames[0].triples()
        assert ("Amazon", "acquire", "Kiva Systems") in triples
        assert ("Amazon", "acquire:am-price", "$775 million") in triples

    def test_frame_lookup_lemmatizes(self):
        assert frame_for("acquired") is not None
        assert frame_for("raises") is not None
        assert frame_for("zzzzz") is None


class TestCorefInPipeline:
    def test_pronoun_resolution(self, pipeline):
        doc = pipeline.process(
            "DJI unveiled a new drone. It raised $75 million afterwards."
        )
        assert any(
            t.subject == "DJI" and "raised" in t.relation or t.relation == "raise"
            for t in doc.triples
            if t.sentence_index == 1
        )

    def test_nominal_resolution(self, pipeline):
        doc = pipeline.process(
            "3D Robotics unveiled a new drone. The company raised $50 million."
        )
        second = [t for t in doc.triples if t.sentence_index == 1]
        assert any(t.subject == "3D Robotics" for t in second)

    def test_no_resolution_without_antecedent(self, pipeline):
        doc = pipeline.process("It raised $50 million.")
        assert all(t.subject != "" for t in doc.triples)

    def test_person_pronoun(self, pipeline):
        doc = pipeline.process(
            "Mr. Frank Wang founded DJI. He raised $75 million in 2015."
        )
        second = [t for t in doc.triples if t.sentence_index == 1]
        assert any("Wang" in t.subject for t in second)


class TestPipelineEndToEnd:
    def test_figure3_style_rows(self, pipeline):
        """Dated rows like the paper's Figure 3 appendix."""
        doc = pipeline.process(
            "DJI raised $75 million from Accel Partners in May 2015.",
            doc_id="wsj-1",
            doc_date=parse_date("2015-05-10"),
            source="wsj",
        )
        dated = [t for t in doc.triples if t.date is not None]
        assert dated
        assert str(dated[0].date).startswith("2015-05")
        assert dated[0].doc_id == "wsj-1"
        assert dated[0].source == "wsj"

    def test_sentence_date_overrides_doc_date(self, pipeline):
        doc = pipeline.process(
            "Amazon acquired Kiva Systems in 2012.",
            doc_date=parse_date("2016-01-01"),
        )
        assert any(str(t.date) == "2012" for t in doc.triples)

    def test_doc_date_used_when_no_sentence_date(self, pipeline):
        doc = pipeline.process(
            "DJI manufactures drones.", doc_date=parse_date("2016-06-07")
        )
        assert all(str(t.date) == "2016-06-07" for t in doc.triples)

    def test_min_confidence_filter(self):
        strict = NlpPipeline(min_confidence=0.99)
        doc = strict.process("DJI raised $75 million from Accel Partners.")
        assert doc.triples == []

    def test_multi_sentence_document(self, pipeline):
        text = (
            "DJI is the world leader in consumer drones. "
            "The company raised $75 million from Accel Partners in May 2015. "
            "Amazon acquired Kiva Systems for $775 million in 2012."
        )
        doc = pipeline.process(text)
        assert len(doc.sentences) == 3
        subjects = {t.subject for t in doc.triples}
        assert "DJI" in subjects
        assert "Amazon" in subjects

    def test_extract_triples_convenience(self, pipeline):
        triples = pipeline.extract_triples("DJI manufactures drones.")
        assert triples
        assert triples[0].as_tuple() == ("DJI", "manufactures", "drones")

    def test_no_duplicate_triples(self, pipeline):
        doc = pipeline.process("DJI manufactures drones.")
        keys = [(t.subject, t.relation, t.object, t.extractor) for t in doc.triples]
        assert len(keys) == len(set(keys))

    def test_srl_disabled(self):
        no_srl = NlpPipeline(use_srl=False)
        doc = no_srl.process("Amazon acquired Kiva Systems for $775 million.")
        assert all(t.extractor == "openie" for t in doc.triples)

    def test_subject_label_propagated(self, pipeline):
        doc = pipeline.process("DJI raised $75 million.")
        openie = [t for t in doc.triples if t.extractor == "openie"]
        assert openie[0].subject_label == "ORG"
        assert openie[0].object_label == "MONEY"
