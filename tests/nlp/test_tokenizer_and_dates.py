"""Tokeniser, sentence splitter and temporal expression tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import SimpleDate, extract_dates, parse_date, sentence_split, tokenize


class TestTokenizer:
    def test_simple_sentence(self):
        tokens = tokenize("DJI makes drones.")
        assert [t.text for t in tokens] == ["DJI", "makes", "drones", "."]

    def test_currency_kept_whole(self):
        tokens = tokenize("raised $50 million")
        assert "$50" in [t.text for t in tokens]

    def test_currency_with_commas(self):
        tokens = tokenize("worth $1,200.50 today")
        assert "$1,200.50" in [t.text for t in tokens]

    def test_abbreviation_period_attached(self):
        tokens = tokenize("Kiva Systems Inc. was acquired")
        assert "Inc." in [t.text for t in tokens]

    def test_final_period_split(self):
        tokens = tokenize("The deal closed.")
        assert [t.text for t in tokens][-1] == "."

    def test_dotted_acronym(self):
        tokens = tokenize("the U.S. government")
        assert "U.S." in [t.text for t in tokens]

    def test_alphanumeric_token(self):
        tokens = tokenize("3D Robotics builds drones")
        assert [t.text for t in tokens][0] == "3D"

    def test_iso_date_single_token(self):
        tokens = tokenize("published 2016-06-07 online")
        assert "2016-06-07" in [t.text for t in tokens]

    def test_offsets_roundtrip(self):
        text = "DJI raised $75 million."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_indices_sequential(self):
        tokens = tokenize("a b c d")
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_hyphenated_word(self):
        tokens = tokenize("consumer-grade drones")
        assert [t.text for t in tokens][0] == "consumer-grade"

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes_and_offsets_valid(self, text):
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text


class TestSentenceSplit:
    def test_two_sentences(self):
        sentences = sentence_split("DJI makes drones. The FAA regulates them.")
        assert len(sentences) == 2
        assert sentences[0].text.startswith("DJI")
        assert sentences[1].index == 1

    def test_abbreviation_not_boundary(self):
        sentences = sentence_split("Kiva Systems Inc. was acquired by Amazon.")
        assert len(sentences) == 1

    def test_question_and_exclamation(self):
        sentences = sentence_split("Why drones? They are cheap!")
        assert len(sentences) == 2

    def test_decimal_not_boundary(self):
        sentences = sentence_split("Shares rose 3.5 percent on Monday.")
        assert len(sentences) == 1

    def test_blank_line_boundary(self):
        sentences = sentence_split("First paragraph\n\nSecond paragraph")
        assert len(sentences) == 2

    def test_empty_text(self):
        assert sentence_split("") == []

    def test_lowercase_continuation_not_boundary(self):
        sentences = sentence_split("He works at Acme Corp. and lives in Austin.")
        assert len(sentences) == 1


class TestParseDate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2016-06-07", SimpleDate(2016, 6, 7)),
            ("06/07/2016", SimpleDate(2016, 6, 7)),
            ("May 2015", SimpleDate(2015, 5)),
            ("June 7, 2016", SimpleDate(2016, 6, 7)),
            ("2015", SimpleDate(2015)),
            ("February 3 2015", SimpleDate(2015, 2, 3)),
        ],
    )
    def test_formats(self, text, expected):
        assert parse_date(text) == expected

    @pytest.mark.parametrize("bad", ["", "hello", "13/45/2016", "2016-13-40", "May"])
    def test_rejects_garbage(self, bad):
        assert parse_date(bad) is None

    def test_ordering(self):
        assert SimpleDate(2015, 5) < SimpleDate(2015, 6)
        assert SimpleDate(2014) < SimpleDate(2015)
        assert SimpleDate(2015, 5, 1) < SimpleDate(2015, 5, 2)

    def test_str_forms(self):
        assert str(SimpleDate(2015)) == "2015"
        assert str(SimpleDate(2015, 5)) == "2015-05"
        assert str(SimpleDate(2015, 5, 9)) == "2015-05-09"

    def test_ordinal_monotone_in_year(self):
        assert SimpleDate(2016).ordinal() > SimpleDate(2015, 12, 31).ordinal()


class TestExtractDates:
    def test_month_day_comma_year(self):
        tokens = tokenize("The launch happened on June 7, 2016 in Paris")
        dates = extract_dates(tokens)
        assert dates[0][0] == SimpleDate(2016, 6, 7)

    def test_month_year(self):
        tokens = tokenize("DJI raised money in May 2015.")
        dates = extract_dates(tokens)
        assert dates[0][0] == SimpleDate(2015, 5)

    def test_bare_year_needs_preposition(self):
        with_prep = extract_dates(tokenize("founded in 2006"))
        assert with_prep[0][0] == SimpleDate(2006)
        without = extract_dates(tokenize("the 2006 report"))
        assert without == []

    def test_iso_token(self):
        dates = extract_dates(tokenize("dated 2016-06-07 it says"))
        assert dates[0][0] == SimpleDate(2016, 6, 7)

    def test_multiple_dates(self):
        tokens = tokenize("From May 2015 until June 2016 sales doubled.")
        dates = extract_dates(tokens)
        assert [d[0] for d in dates] == [SimpleDate(2015, 5), SimpleDate(2016, 6)]

    def test_no_dates(self):
        assert extract_dates(tokenize("Drones are popular.")) == []
