"""Parallel extraction equivalence and fault-injection suite (ISSUE 8).

The process-pool extraction path (:mod:`repro.nlp.parallel`) claims
byte-identity with the serial loop: same triples, same order, same
confidences, same linking inputs, for any worker count.  This module
pins that claim three ways —

- **property-based**: hypothesis-chosen corpus slices through pools of
  1, 2 and 4 workers against the serial pipeline oracle;
- **engine-level**: two ``Nous`` instances (serial vs pooled) fed the
  same batch must agree on every accepted fact, entity and the KG
  version stamp;
- **golden**: the ISSUE-2 golden driver re-run with
  ``NOUS_GOLDEN_EXTRACT_WORKERS=2`` must print byte-identical metrics
  to the serial run under ``PYTHONHASHSEED=0``.

It also pins the failure contract: a worker killed mid-batch is
respawned and the batch completes identically, a pool that breaks twice
raises a structured :class:`~repro.errors.ExtractionError` (never a raw
``BrokenProcessPool``) naming the lost document, and a failed batch
leaves *no* partial KB state behind.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CorpusConfig,
    NousConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.envelopes import error_from_exception, exception_from_error
from repro.core.pipeline import Nous
from repro.errors import ConfigError, ExtractionError
from repro.nlp.parallel import (
    ExtractionJob,
    ParallelExtractor,
    PipelineSpec,
)

SEED = 7
N_ARTICLES = 18


def make_world():
    """A fresh seeded KB + corpus (the generator extends the KB in
    place, so anything that ingests needs its own copy)."""
    kb = build_drone_kb()
    generate_descriptions(kb, seed=SEED)
    articles = generate_corpus(kb, CorpusConfig(n_articles=N_ARTICLES, seed=SEED))
    return kb, articles


def jobs_for(articles):
    return [
        ExtractionJob(
            text=a.text, doc_id=a.doc_id, date=a.date, source=a.source
        )
        for a in articles
    ]


@pytest.fixture(scope="module")
def world():
    return make_world()


@pytest.fixture(scope="module")
def serial_nous(world):
    kb, _articles = world
    nous = Nous(kb=kb, config=NousConfig(seed=SEED))
    yield nous
    nous.close()


@pytest.fixture(scope="module")
def serial_reference(world, serial_nous):
    """``(triples, context_words)`` per article from the serial oracle
    — exactly what ``Nous._extract_batch`` feeds collective linking."""
    _kb, articles = world
    return serial_nous._extract_batch(articles)


@pytest.fixture(scope="module")
def pools(serial_nous):
    """One long-lived extraction pool per worker count, so hypothesis
    examples pay spawn cost once, not per example."""
    spec = PipelineSpec.from_pipeline(serial_nous.nlp)
    cache = {}

    def get(workers: int) -> ParallelExtractor:
        if workers not in cache:
            cache[workers] = ParallelExtractor(spec, workers=workers)
        return cache[workers]

    yield get
    for pool in cache.values():
        pool.close()


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_full_corpus_identical_across_worker_counts(
        self, world, serial_reference, pools, workers
    ):
        _kb, articles = world
        extracted = pools(workers).extract_many(jobs_for(articles))
        assert [doc.doc_id for doc in extracted] == [
            a.doc_id for a in articles
        ], "results must come back in submission order"
        for doc, (triples, context) in zip(extracted, serial_reference):
            assert doc.triples == triples  # dataclass equality: every
            assert doc.context_words == context  # field incl. confidence

    def test_confidences_exactly_equal(self, world, serial_reference, pools):
        _kb, articles = world
        extracted = pools(2).extract_many(jobs_for(articles))
        parallel_conf = [
            t.confidence for doc in extracted for t in doc.triples
        ]
        serial_conf = [
            t.confidence for triples, _ in serial_reference for t in triples
        ]
        # Float equality on purpose: same code, same inputs, same
        # arithmetic — any drift means the paths diverged.
        assert parallel_conf == serial_conf

    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_any_slice_any_pool_matches_serial(
        self, world, serial_reference, pools, data
    ):
        _kb, articles = world
        workers = data.draw(st.sampled_from([1, 2, 4]), label="workers")
        indices = data.draw(
            st.lists(
                st.integers(0, len(articles) - 1),
                min_size=2,
                max_size=6,
                unique=True,
            ),
            label="article indices",
        )
        subset = [articles[i] for i in indices]
        extracted = pools(workers).extract_many(jobs_for(subset))
        expected = [serial_reference[i] for i in indices]
        assert [
            (doc.triples, doc.context_words) for doc in extracted
        ] == expected

    def test_empty_batch(self, pools):
        assert pools(2).extract_many([]) == []


class TestNousEquivalence:
    def test_ingest_batch_identical_serial_vs_pooled(self):
        kb_a, articles_a = make_world()
        kb_b, articles_b = make_world()
        serial = Nous(kb=kb_a, config=NousConfig(seed=SEED))
        pooled = Nous(
            kb=kb_b, config=NousConfig(seed=SEED, extract_workers=3)
        )
        try:
            results_a = serial.ingest_batch(articles_a)
            results_b = pooled.ingest_batch(articles_b)
            assert [
                (r.doc_id, r.raw_triples, r.accepted, r.rejected_confidence)
                for r in results_a
            ] == [
                (r.doc_id, r.raw_triples, r.accepted, r.rejected_confidence)
                for r in results_b
            ]
            assert serial.kb.num_facts == pooled.kb.num_facts
            assert serial.kb.version == pooled.kb.version
            assert len(serial.kb.entities()) == len(pooled.kb.entities())
        finally:
            serial.close()
            pooled.close()

    def test_extract_workers_validated(self):
        with pytest.raises(ConfigError):
            NousConfig(extract_workers=0).validate()
        kb, _articles = make_world()
        with pytest.raises(ConfigError):
            ParallelExtractor(
                PipelineSpec(gazetteer={}, kb_aliases={}), workers=0
            )


HOOK_MODULE = '''\
"""Fault hooks injected into extraction workers (written by the test)."""
import os
import signal

SENTINEL = {sentinel!r}


def kill_once(job):
    # Exactly one worker consumes the sentinel (unlink is atomic) and
    # dies; every other call is a no-op, so the respawned pool's retry
    # completes.
    try:
        os.unlink(SENTINEL)
    except FileNotFoundError:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def kill_always(job):
    if job.doc_id == {victim!r}:
        os.kill(os.getpid(), signal.SIGKILL)
'''


@pytest.fixture
def fault_hooks(tmp_path, monkeypatch):
    """Write the hook module where spawn workers can import it (spawn
    propagates ``sys.path``) and return the armed sentinel path."""
    sentinel = tmp_path / "kill-sentinel"
    sentinel.write_text("armed")
    module = tmp_path / "nous_test_fault_hooks.py"
    module.write_text(
        HOOK_MODULE.format(sentinel=str(sentinel), victim="wsj-000001")
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    return sentinel


class TestPoolFaults:
    def test_worker_killed_mid_batch_respawns_and_completes(
        self, world, serial_reference, serial_nous, fault_hooks
    ):
        _kb, articles = world
        spec = replace(
            PipelineSpec.from_pipeline(serial_nous.nlp),
            fault_hook="nous_test_fault_hooks:kill_once",
        )
        with ParallelExtractor(spec, workers=2) as extractor:
            extracted = extractor.extract_many(jobs_for(articles))
        assert not fault_hooks.exists(), "the kill sentinel was consumed"
        assert [
            (doc.triples, doc.context_words) for doc in extracted
        ] == list(serial_reference), (
            "after a respawn the batch must still be byte-identical"
        )

    def test_pool_broken_twice_raises_structured_error(
        self, world, serial_nous, fault_hooks
    ):
        _kb, articles = world
        spec = replace(
            PipelineSpec.from_pipeline(serial_nous.nlp),
            fault_hook="nous_test_fault_hooks:kill_always",
        )
        with ParallelExtractor(spec, workers=2) as extractor:
            with pytest.raises(ExtractionError) as excinfo:
                extractor.extract_many(jobs_for(articles))
        # Structured, not a raw BrokenProcessPool: the error names the
        # first document whose result was lost.
        assert excinfo.value.doc_index >= 0
        assert "batch aborted" in str(excinfo.value)

    def test_failed_batch_leaves_no_partial_kb_state(self, fault_hooks):
        kb, articles = make_world()
        nous = Nous(kb=kb, config=NousConfig(seed=SEED, extract_workers=2))
        try:
            extractor = nous._ensure_extractor()
            extractor.spec = replace(
                extractor.spec,
                fault_hook="nous_test_fault_hooks:kill_always",
            )
            before = (
                nous.kb.num_facts,
                nous.kb.version,
                len(nous.kb.entities()),
                nous.documents_ingested,
                len(nous._raw_buffer),
            )
            with pytest.raises(ExtractionError):
                nous.ingest_batch(articles)
            after = (
                nous.kb.num_facts,
                nous.kb.version,
                len(nous.kb.entities()),
                nous.documents_ingested,
                len(nous._raw_buffer),
            )
            assert after == before, "a failed batch must be atomic"
            # Disarm the hook: the same engine must then ingest the very
            # same batch successfully (fresh pool, clean spec).
            nous.close()
            nous._ensure_extractor()  # rebuilds from the pipeline,
            results = nous.ingest_batch(articles)  # hook-free spec
            assert sum(r.accepted for r in results) > 0
        finally:
            nous.close()

    def test_extraction_error_round_trips_the_wire_taxonomy(self):
        error = error_from_exception(ExtractionError(doc_index=3, doc_id="d3"))
        assert error.code == "nlp.extraction"
        rebuilt = exception_from_error(error)
        assert isinstance(rebuilt, ExtractionError)
        assert "index 3" in str(rebuilt)


def _run_golden_driver(extract_workers: int) -> dict:
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["NOUS_GOLDEN_SCOPE"] = "mono"
    env["NOUS_GOLDEN_EXTRACT_WORKERS"] = str(extract_workers)
    proc = subprocess.run(
        [sys.executable, os.path.join(repo_root, "tests", "golden_driver.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, f"driver failed:\n{proc.stderr}"
    return json.loads(proc.stdout)


class TestGoldenFingerprint:
    def test_pooled_golden_run_matches_serial_fingerprint(self):
        # The strongest statement available: the whole golden pipeline
        # (extraction, linking, mining, query answers, cache behaviour)
        # prints byte-identical metrics with the pool on.
        serial = _run_golden_driver(1)
        pooled = _run_golden_driver(2)
        assert pooled == serial
