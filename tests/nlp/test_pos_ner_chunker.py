"""POS tagger, chunker and NER tests."""

import pytest

from repro.nlp import NamedEntityRecognizer, PosTagger, chunk_sentence, tokenize


@pytest.fixture(scope="module")
def tagger():
    return PosTagger()


def tag_pairs(tagger, text):
    tokens = tokenize(text)
    return list(zip([t.text for t in tokens], tagger.tag(tokens)))


class TestPosTagger:
    def test_basic_sentence(self, tagger):
        pairs = dict(tag_pairs(tagger, "The company raised money ."))
        assert pairs["The"] == "DT"
        assert pairs["company"] == "NN"
        assert pairs["raised"] == "VBD"
        assert pairs["."] == "PUNCT"

    def test_proper_nouns(self, tagger):
        pairs = dict(tag_pairs(tagger, "DJI competes with Parrot"))
        assert pairs["DJI"] == "NNP"
        assert pairs["Parrot"] == "NNP"

    def test_modal_plus_verb(self, tagger):
        pairs = dict(tag_pairs(tagger, "DJI will launch a new drone"))
        assert pairs["will"] == "MD"
        assert pairs["launch"] == "VB"

    def test_determiner_noun_disambiguation(self, tagger):
        # "use" is a verb in the lexicon but must become a noun after "the".
        pairs = dict(tag_pairs(tagger, "the use of drones"))
        assert pairs["use"] == "NN"

    def test_third_person_verb(self, tagger):
        pairs = dict(tag_pairs(tagger, "Windermere uses drones"))
        assert pairs["uses"] == "VBZ"

    def test_passive_participle(self, tagger):
        pairs = dict(tag_pairs(tagger, "Kiva was acquired by Amazon"))
        assert pairs["acquired"] == "VBN"

    def test_perfect_participle(self, tagger):
        pairs = dict(tag_pairs(tagger, "DJI has raised new funding"))
        assert pairs["raised"] == "VBN"

    def test_may_as_month(self, tagger):
        pairs = dict(tag_pairs(tagger, "funding closed in May 2015"))
        assert pairs["May"] == "NNP"

    def test_may_as_modal(self, tagger):
        pairs = dict(tag_pairs(tagger, "regulators may approve the rule"))
        assert pairs["may"] == "MD"

    def test_currency_and_numbers(self, tagger):
        pairs = dict(tag_pairs(tagger, "raised $75 million in 2015"))
        assert pairs["$75"] == "SYM"
        assert pairs["2015"] == "CD"

    def test_adverb_suffix(self, tagger):
        pairs = dict(tag_pairs(tagger, "sales grew dramatically"))
        assert pairs["dramatically"] == "RB"

    def test_to_infinitive(self, tagger):
        pairs = dict(tag_pairs(tagger, "plans to test drones"))
        assert pairs["to"] == "TO"
        assert pairs["test"] == "VB"

    def test_possessive(self, tagger):
        pairs = dict(tag_pairs(tagger, "DJI 's drones sell well"))
        assert pairs["'s"] == "POS"

    def test_unknown_capitalized_is_nnp(self, tagger):
        pairs = dict(tag_pairs(tagger, "Windermere expanded operations"))
        assert pairs["Windermere"] == "NNP"


class TestChunker:
    def chunks_for(self, tagger, text):
        tokens = tokenize(text)
        tags = tagger.tag(tokens)
        return chunk_sentence(tokens, tags)

    def test_np_and_vg(self, tagger):
        chunks = self.chunks_for(tagger, "DJI raised $75 million")
        labels = [(c.label, c.text) for c in chunks]
        assert ("NP", "DJI") in labels
        assert any(label == "VG" and "raised" in text for label, text in labels)
        assert ("NP", "$75 million") in labels

    def test_np_with_modifiers(self, tagger):
        chunks = self.chunks_for(tagger, "The French drone manufacturer expanded")
        nps = [c for c in chunks if c.label == "NP"]
        assert nps[0].text == "The French drone manufacturer"
        assert nps[0].head.text == "manufacturer"

    def test_verb_group_with_modal(self, tagger):
        chunks = self.chunks_for(tagger, "DJI will officially launch a drone")
        vgs = [c for c in chunks if c.label == "VG"]
        assert vgs[0].text == "will officially launch"
        assert vgs[0].head.text == "launch"

    def test_infinitive_group(self, tagger):
        chunks = self.chunks_for(tagger, "Amazon plans to deliver packages")
        vgs = [c for c in chunks if c.label == "VG"]
        assert vgs[0].text == "plans to deliver"

    def test_possessive_np(self, tagger):
        chunks = self.chunks_for(tagger, "DJI 's drones sell well")
        nps = [c for c in chunks if c.label == "NP"]
        assert nps[0].text == "DJI 's drones"

    def test_chunks_non_overlapping(self, tagger):
        chunks = self.chunks_for(
            tagger, "The FAA approved commercial drone flights in June"
        )
        spans = sorted((c.start, c.end) for c in chunks)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestNer:
    def test_gazetteer_match(self):
        ner = NamedEntityRecognizer(
            gazetteer={"dji": "ORG", "accel partners": "ORG"},
            kb_aliases={"dji": "Q101", "accel partners": "Q202"},
        )
        tagger = PosTagger()
        tokens = tokenize("DJI raised money from Accel Partners")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        by_text = {m.text: m for m in mentions}
        assert by_text["DJI"].label == "ORG"
        assert by_text["DJI"].kb_hint == "Q101"
        assert by_text["Accel Partners"].kb_hint == "Q202"

    def test_money(self):
        ner = NamedEntityRecognizer()
        tokens = tokenize("Amazon paid $775 million for Kiva")
        tagger = PosTagger()
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        money = [m for m in mentions if m.label == "MONEY"]
        assert money[0].text == "$775 million"

    def test_date_mention(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("The deal closed in May 2015")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "DATE" and m.text == "May 2015" for m in mentions)

    def test_org_suffix_rule(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("Kiva Systems was acquired")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "ORG" and m.text == "Kiva Systems" for m in mentions)

    def test_all_caps_is_org(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("The FAA issued new rules")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "ORG" and m.text == "FAA" for m in mentions)

    def test_location(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("DJI is based in Shenzhen")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "LOCATION" and m.text == "Shenzhen" for m in mentions)

    def test_person_title(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("Mr. Frank Wang founded the company")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "PERSON" for m in mentions)

    def test_percent(self):
        ner = NamedEntityRecognizer()
        tagger = PosTagger()
        tokens = tokenize("Sales rose 12 percent last year")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.label == "PERCENT" for m in mentions)

    def test_mentions_non_overlapping(self):
        ner = NamedEntityRecognizer(gazetteer={"dji": "ORG"})
        tagger = PosTagger()
        tokens = tokenize("DJI of Shenzhen raised $75 million in May 2015")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        claimed = set()
        for m in mentions:
            assert not (claimed & set(m.span()))
            claimed.update(m.span())

    def test_gazetteer_longest_match_wins(self):
        ner = NamedEntityRecognizer(
            gazetteer={"kiva": "ORG", "kiva systems": "ORG"}
        )
        tagger = PosTagger()
        tokens = tokenize("Amazon acquired Kiva Systems")
        mentions = ner.recognize(tokens, tagger.tag(tokens))
        assert any(m.text == "Kiva Systems" for m in mentions)
        assert not any(m.text == "Kiva" for m in mentions)
