"""Compute protocol units: envelopes, edge ownership, the shard executor.

Three layers, no cluster required:

- **Envelope codecs** — :class:`ComputeRequest` / :class:`ComputeResponse`
  wire forms are pinned and round-trip; malformed envelopes raise the
  structured :class:`ConfigError` instead of half-parsing.
- **Edge ownership** — the rule that makes a union of per-shard answers
  exactly one copy of the merged graph: curated edges hash to a single
  owner, extracted edges are owned where extracted unless disowned, and
  :func:`disown_sets` keeps exactly one owner per duplicated key.
- **Shard executor** — every op of :class:`ComputeStepExecutor` against
  a real single-shard engine, checked against the graph it scans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NousConfig, NousService, ServiceConfig
from repro.compute import ComputeStats
from repro.compute.protocol import (
    COMPUTE_OPS,
    MINE_PHASES,
    ComputeRequest,
    ComputeResponse,
    disown_param,
    disown_sets,
    edge_from_payload,
    edge_payload,
    instance_edge_from_payload,
    instance_edge_payload,
    owns_edge,
    pattern_from_payload,
    pattern_payload,
    support_entry_from_payload,
    support_entry_payload,
)
from repro.errors import ConfigError
from repro.graph.property_graph import PropertyGraph
from repro.kb.knowledge_base import KnowledgeBase
from repro.mining.patterns import InstanceEdge, Pattern, PatternEdge
from repro.nlp.dates import SimpleDate

FACTS = [
    ("Alpha", "acquired", "Beta"),
    ("Beta", "acquired", "Gamma"),
    ("Gamma", "partnerOf", "Delta"),
    ("Delta", "acquired", "Alpha"),
]


# ---------------------------------------------------------------------------
# envelope codecs
# ---------------------------------------------------------------------------

class TestEnvelopeCodecs:
    def test_request_wire_form_pinned(self):
        request = ComputeRequest(
            op="expand", shard=1, num_shards=3,
            params={"vertices": ["A"], "skip": []},
        )
        assert request.to_wire() == {
            "op": "expand",
            "shard": 1,
            "num_shards": 3,
            "params": {"vertices": ["A"], "skip": []},
        }
        assert ComputeRequest.from_wire(request.to_wire()) == request

    def test_response_wire_form_pinned(self):
        response = ComputeResponse(
            op="degrees", shard=0, kg_version=7,
            result={"out_deg": {"A": 2}},
        )
        assert response.to_wire() == {
            "op": "degrees",
            "shard": 0,
            "kg_version": 7,
            "result": {"out_deg": {"A": 2}},
        }
        assert ComputeResponse.from_wire(response.to_wire()) == response

    @settings(max_examples=50, deadline=None)
    @given(
        op=st.sampled_from(COMPUTE_OPS),
        num_shards=st.integers(min_value=1, max_value=8),
        data=st.data(),
        params=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
            max_size=4,
        ),
    )
    def test_request_roundtrip(self, op, num_shards, data, params):
        shard = data.draw(st.integers(min_value=0, max_value=num_shards - 1))
        request = ComputeRequest(
            op=op, shard=shard, num_shards=num_shards, params=params
        )
        assert ComputeRequest.from_wire(request.to_wire()) == request

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError, match="unknown compute op"):
            ComputeRequest.from_wire(
                {"op": "shuffle", "shard": 0, "num_shards": 1}
            )
        with pytest.raises(ConfigError, match="unknown compute op"):
            ComputeResponse.from_wire(
                {"op": "shuffle", "shard": 0, "kg_version": 0}
            )

    def test_shard_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="out of range"):
            ComputeRequest.from_wire(
                {"op": "expand", "shard": 3, "num_shards": 3}
            )

    def test_nonpositive_cluster_width_rejected(self):
        with pytest.raises(ConfigError, match="num_shards"):
            ComputeRequest.from_wire(
                {"op": "expand", "shard": 0, "num_shards": 0}
            )


# ---------------------------------------------------------------------------
# edge ownership
# ---------------------------------------------------------------------------

def _two_edge_graph():
    graph = PropertyGraph()
    graph.add_edge("A", "B", "rel", curated=True)
    graph.add_edge("B", "C", "rel")
    curated, extracted = list(graph.edges())
    if not curated.props.get("curated"):
        curated, extracted = extracted, curated
    return curated, extracted


class TestEdgeOwnership:
    @settings(max_examples=30, deadline=None)
    @given(num_shards=st.integers(min_value=1, max_value=6))
    def test_curated_edge_has_exactly_one_owner(self, num_shards):
        curated, _ = _two_edge_graph()
        owners = [
            shard
            for shard in range(num_shards)
            if owns_edge(curated, shard, num_shards, frozenset())
        ]
        assert len(owners) == 1

    def test_extracted_edge_owned_where_extracted_unless_disowned(self):
        _, extracted = _two_edge_graph()
        # Local copy, no disown: every holder owns its own extraction.
        assert owns_edge(extracted, 0, 3, frozenset())
        assert owns_edge(extracted, 2, 3, frozenset())
        # Disowned as a cross-shard duplicate: the copy is skipped.
        assert not owns_edge(extracted, 2, 3, frozenset({("B", "rel", "C")}))

    @settings(max_examples=50, deadline=None)
    @given(
        holders=st.lists(
            st.lists(st.integers(min_value=0, max_value=9), max_size=6),
            min_size=1,
            max_size=4,
        )
    )
    def test_disown_sets_leave_exactly_one_owner_per_key(self, holders):
        keys_by_shard = [
            [(f"E{i}", "rel", f"F{i}") for i in sorted(set(shard_keys))]
            for shard_keys in holders
        ]
        disown = disown_sets(keys_by_shard)
        owned = []
        for index, keys in enumerate(keys_by_shard):
            skip = disown_param(disown[index])
            owned.extend(key for key in keys if key not in skip)
        all_keys = {key for keys in keys_by_shard for key in keys}
        # Exactly one surviving copy per distinct key, on the lowest
        # shard index that holds it.
        assert sorted(owned) == sorted(all_keys)
        for index, keys in enumerate(keys_by_shard):
            for key in keys:
                first = min(
                    i for i, ks in enumerate(keys_by_shard) if key in ks
                )
                assert (key in disown_param(disown[index])) == (index != first)

    def test_edge_payload_roundtrips_dates(self):
        graph = PropertyGraph()
        graph.add_edge(
            "A", "B", "acquired",
            date=SimpleDate(2015, 6, 1), confidence=0.75,
        )
        edge = list(graph.edges())[0]
        payload = edge_payload(edge)
        assert payload["props"]["date"] == "2015-06-01"
        decoded = edge_from_payload(payload)
        assert decoded["src"] == "A" and decoded["dst"] == "B"
        assert decoded["props"]["date"] == SimpleDate(2015, 6, 1)
        assert decoded["props"]["confidence"] == 0.75


# ---------------------------------------------------------------------------
# mining payloads (mine_embeddings op)
# ---------------------------------------------------------------------------

_node_text = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N")),
    min_size=1, max_size=8,
)

_instance_edges = st.builds(
    InstanceEdge,
    src=_node_text, dst=_node_text,
    src_label=_node_text, dst_label=_node_text,
    predicate=_node_text,
)

_patterns = st.lists(
    st.builds(
        PatternEdge,
        src=st.integers(min_value=0, max_value=3),
        dst=st.integers(min_value=0, max_value=3),
        src_label=_node_text, dst_label=_node_text,
        predicate=_node_text,
    ),
    min_size=1, max_size=3,
).map(lambda edges: Pattern(edges=tuple(edges)))


class TestMiningCodecs:
    def test_instance_edge_wire_form_pinned(self):
        edge = InstanceEdge(
            src="Alpha", dst="Beta",
            src_label="Company", dst_label="Company",
            predicate="acquired",
        )
        assert instance_edge_payload(7, edge) == {
            "eid": 7,
            "src": "Alpha",
            "dst": "Beta",
            "src_label": "Company",
            "dst_label": "Company",
            "predicate": "acquired",
        }

    @settings(max_examples=50, deadline=None)
    @given(eid=st.integers(min_value=0, max_value=10_000),
           edge=_instance_edges)
    def test_instance_edge_roundtrip(self, eid, edge):
        payload = instance_edge_payload(eid, edge)
        assert instance_edge_from_payload(payload) == (eid, edge)

    def test_pattern_wire_form_preserves_canonical_edge_order(self):
        # The row order IS the canonical form — a codec that re-sorted
        # on decode would silently merge distinct patterns.
        pattern = Pattern(edges=(
            PatternEdge(src=0, dst=1, src_label="Company",
                        dst_label="Company", predicate="acquired"),
            PatternEdge(src=1, dst=2, src_label="Company",
                        dst_label="Thing", predicate="raisedFunding"),
        ))
        assert pattern_payload(pattern) == [
            [0, 1, "Company", "Company", "acquired"],
            [1, 2, "Company", "Thing", "raisedFunding"],
        ]
        assert pattern_from_payload(pattern_payload(pattern)) == pattern

    @settings(max_examples=50, deadline=None)
    @given(pattern=_patterns)
    def test_pattern_roundtrip(self, pattern):
        assert pattern_from_payload(pattern_payload(pattern)) == pattern

    def test_support_entry_wire_form_pinned(self):
        pattern = Pattern(edges=(
            PatternEdge(src=0, dst=1, src_label="Company",
                        dst_label="Company", predicate="acquired"),
        ))
        payload = support_entry_payload(
            pattern, 3, {1: ["Beta", "Gamma"], 0: ["Alpha"]}
        )
        # Variables stringify (JSON object keys) and sort; node order
        # within an image is preserved.
        assert payload == {
            "pattern": [[0, 1, "Company", "Company", "acquired"]],
            "embeddings": 3,
            "images": {"0": ["Alpha"], "1": ["Beta", "Gamma"]},
        }
        assert support_entry_from_payload(payload) == (
            pattern, 3, {0: ["Alpha"], 1: ["Beta", "Gamma"]},
        )

    @settings(max_examples=50, deadline=None)
    @given(
        pattern=_patterns,
        embeddings=st.integers(min_value=0, max_value=100),
        images=st.dictionaries(
            st.integers(min_value=0, max_value=3),
            st.lists(_node_text, min_size=1, max_size=4, unique=True),
            max_size=4,
        ),
    )
    def test_support_entry_roundtrip(self, pattern, embeddings, images):
        payload = support_entry_payload(pattern, embeddings, images)
        decoded = support_entry_from_payload(payload)
        assert decoded == (pattern, embeddings, images)


# ---------------------------------------------------------------------------
# stats counters
# ---------------------------------------------------------------------------

class TestComputeStats:
    def test_counters_accumulate_and_jobs_reset_step_trace(self):
        stats = ComputeStats()
        stats.start_job()
        stats.record_round(messages=5, nbytes=100)
        stats.record_round(messages=2, nbytes=40)
        stats.record_step(messages=1, nbytes=10)
        stats.record_path_search()
        snapshot = stats.to_dict()
        assert snapshot == {
            "jobs": 1,
            "supersteps": 2,
            "messages": 8,
            "cross_shard_bytes": 150,
            "path_searches": 1,
            "last_messages_per_step": [5, 2],
        }
        stats.start_job()
        assert stats.to_dict()["last_messages_per_step"] == []
        # Cumulative counters survive the job boundary.
        assert stats.to_dict()["supersteps"] == 2
        assert stats.to_dict()["jobs"] == 2


# ---------------------------------------------------------------------------
# shard executor ops
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def shard():
    service = NousService(
        kb=KnowledgeBase(),
        config=NousConfig(
            window_size=100, min_support=2, lda_iterations=10,
            retrain_every=0, seed=3,
        ),
        service_config=ServiceConfig(auto_start=False),
    )
    assert service.ingest_facts(FACTS, date="2015-06-01").ok
    yield service
    service.close()


def _step(shard, op, params=None, num_shards=1, index=0):
    response = shard.compute_step(
        ComputeRequest(
            op=op, shard=index, num_shards=num_shards, params=params or {}
        ).to_wire()
    )
    return ComputeResponse.from_wire(response)


class TestExecutorOps:
    def test_graph_info_lists_vertices_and_extracted_keys(self, shard):
        response = _step(shard, "graph_info")
        assert response.result["vertices"] == sorted(
            {s for s, _p, _o in FACTS} | {o for _s, _p, o in FACTS}
        )
        assert {
            tuple(key) for key in response.result["extracted"]
        } == set(FACTS)
        assert "entities" not in response.result
        assert response.kg_version == shard.kg_version

    def test_graph_info_documents_flag_ships_descriptions(self, shard):
        response = _step(shard, "graph_info", {"documents": True})
        entities = dict(
            (entity, description)
            for entity, description in response.result["entities"]
        )
        assert set(entities) >= {s for s, _p, _o in FACTS}

    def test_degrees_match_the_partition_graph(self, shard):
        graph = shard.nous.kb.to_property_graph()
        response = _step(shard, "degrees")
        assert response.result["out_deg"] == {
            str(v): graph.out_degree(v)
            for v in graph.vertices()
            if graph.out_degree(v)
        }
        assert response.result["deg"] == {
            str(v): graph.degree(v) for v in graph.vertices()
        }
        assert response.result["srcs"] == sorted(response.result["out_deg"])
        assert response.result["incident"] == sorted(response.result["deg"])

    def test_expand_returns_incident_edges_once(self, shard):
        response = _step(shard, "expand", {"vertices": ["Alpha"]})
        keys = [
            (e["src"], e["label"], e["dst"]) for e in response.result["edges"]
        ]
        assert keys == [
            ("Alpha", "acquired", "Beta"),
            ("Delta", "acquired", "Alpha"),
        ]
        # A frontier listing both endpoints must not duplicate the edge.
        both = _step(shard, "expand", {"vertices": ["Alpha", "Beta"]})
        assert len(both.result["edges"]) == len(
            {(e["src"], e["label"], e["dst"]) for e in both.result["edges"]}
        )

    def test_expand_skip_omits_already_shipped_edges(self, shard):
        response = _step(
            shard, "expand", {"vertices": ["Beta"], "skip": ["Alpha"]}
        )
        keys = {
            (e["src"], e["label"], e["dst"]) for e in response.result["edges"]
        }
        assert keys == {("Beta", "acquired", "Gamma")}

    def test_contrib_sums_shares_over_out_edges(self, shard):
        response = _step(
            shard, "contrib", {"shares": {"Alpha": 0.5, "Gamma": 0.25}}
        )
        assert response.result["contrib"] == {"Beta": 0.5, "Delta": 0.25}

    def test_min_labels_offer_component_minimum(self, shard):
        labels = {v: v for v in ("Alpha", "Beta", "Gamma", "Delta")}
        response = _step(shard, "min_labels", {"labels": labels})
        # Every neighbour of Alpha (the cycle's minimum) is offered it.
        assert response.result["messages"]["Beta"] == "Alpha"
        assert response.result["messages"]["Delta"] == "Alpha"

    def test_resolve_links_exact_mentions(self, shard):
        response = _step(shard, "resolve", {"mentions": ["Alpha", "Beta"]})
        assert response.result["entities"] == ["Alpha", "Beta"]

    def test_edge_dump_ships_the_whole_partition(self, shard):
        graph = shard.nous.kb.to_property_graph()
        response = _step(shard, "edge_dump")
        assert len(response.result["edges"]) == graph.num_edges
        assert response.result["vertices"] == sorted(
            str(v) for v in graph.vertices()
        )

    def test_malformed_request_raises_config_error(self, shard):
        with pytest.raises(ConfigError):
            shard.compute_step({"op": "nope", "shard": 0, "num_shards": 1})


class TestMineEmbeddingsOp:
    """The three phases of ``mine_embeddings`` against a real shard."""

    def test_census_reports_window_and_miner_settings(self, shard):
        miner = shard.nous.dynamic.miner
        response = _step(shard, "mine_embeddings", {"phase": "census"})
        assert response.result == {
            "vertices": ["Alpha", "Beta", "Delta", "Gamma"],
            "min_support": 2,
            "max_edges": miner.max_edges,
            "window_edges": len(FACTS),
            "last_timestamp": float(shard.nous.last_timestamp),
        }
        assert response.kg_version == shard.kg_version

    def test_local_ships_support_state_and_boundary_edges(self, shard):
        miner = shard.nous.dynamic.miner
        response = _step(
            shard, "mine_embeddings",
            {"phase": "local", "boundary": ["Alpha"]},
        )
        # Aggregate support state: exactly the miner's, via the codec.
        assert response.result["patterns"] == [
            support_entry_payload(pattern, count, images)
            for pattern, count, images in miner.support_state()
        ]
        assert response.result["patterns"], "window should have patterns"
        # Boundary edges: the window instances incident to Alpha, each
        # tagged with a distinct shard-local edge id.
        shipped = [
            instance_edge_from_payload(p) for p in response.result["edges"]
        ]
        assert {
            (e.src, e.predicate, e.dst) for _eid, e in shipped
        } == {("Alpha", "acquired", "Beta"), ("Delta", "acquired", "Alpha")}
        assert len({eid for eid, _e in shipped}) == len(shipped)

    def test_local_with_empty_boundary_ships_no_edges(self, shard):
        response = _step(
            shard, "mine_embeddings", {"phase": "local", "boundary": []}
        )
        assert response.result["edges"] == []

    def test_expand_skip_keeps_each_edge_on_the_wire_once(self, shard):
        local = _step(
            shard, "mine_embeddings",
            {"phase": "local", "boundary": ["Alpha"]},
        )
        shipped = [e["eid"] for e in local.result["edges"]]
        response = _step(
            shard, "mine_embeddings",
            {"phase": "expand", "vertices": ["Beta"], "skip": shipped},
        )
        keys = {
            (e["src"], e["predicate"], e["dst"])
            for e in response.result["edges"]
        }
        # Alpha-acquired->Beta is incident to Beta but already shipped.
        assert keys == {("Beta", "acquired", "Gamma")}

    def test_phases_constant_matches_executor(self, shard):
        assert MINE_PHASES == ("census", "local", "expand")
        with pytest.raises(ConfigError, match="mine_embeddings phase"):
            _step(shard, "mine_embeddings", {"phase": "bogus"})
