"""Distributed compute vs the monolith: the superstep contract.

The coordinator's jobs must agree with the single-graph reference
implementations on the *merged* graph, for any partitioning:

- **Analytics** — cluster :meth:`pagerank` / :meth:`components` /
  :meth:`degree_centrality` against :mod:`repro.graph.algorithms` on a
  monolith holding the same facts, N ∈ {1..4} (hypothesis corpora whose
  subjects route to different shards, so edges genuinely split).
- **Cross-shard path search** — :class:`DistributedPathSearch` against
  a :class:`CoherentPathSearch` over the monolith's topic-annotated
  graph, with a lossless beam so tie-ordering cannot leak into the
  comparison: the *sets* of ``(route, coherence)`` must be equal,
  including routes whose edges live on different shards (invisible to
  every per-shard search — the regime this subsystem exists for).
- **Query surface** — ``pagerank`` / ``connected components`` /
  ``degree centrality`` query texts answer byte-identically on a
  cluster and a monolith, and the cluster's merged-result cache serves
  repeats without re-running the compute job.

Process-mode runs cover the ``/v1/shard/compute`` wire route end to
end; they need ``PYTHONHASHSEED`` pinned (the CI compute job pins 0).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import NousConfig, NousService, ServiceConfig
from repro.api.cluster.service import ShardedNousService
from repro.compute import DistributedPathSearch
from repro.errors import QAError, VertexNotFoundError
from repro.graph.algorithms import connected_components, pagerank
from repro.kb.knowledge_base import KnowledgeBase
from repro.qa.lda import LdaModel
from repro.qa.pathsearch import CoherentPathSearch
from repro.qa.topics import assign_topic_vectors

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Each process-mode example spawns worker subprocesses; fewer examples
# keep wall clock sane (the local runs pin the logic at full depth, the
# process runs only need to cover the wire transport).
_PROCESS_SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _require_pinned_hashseed():
    """Cross-interpreter identity comparisons (worker subprocesses pin
    their hash seed, the monolith runs in this interpreter) need this
    process pinned too — the CI compute job sets PYTHONHASHSEED=0."""
    if os.environ.get("PYTHONHASHSEED", "random") == "random":
        pytest.skip(
            "cross-interpreter identity comparisons need PYTHONHASHSEED set"
        )

# Alphabetic names: the LDA tokenizer drops digit-bearing tokens, and
# an all-numeric entity alphabet would leave it nothing to fit.
_ENTITIES = [
    "Alpha", "Bravo", "Charlie", "Delta",
    "Echo", "Foxtrot", "Golf", "Hotel",
]
_PREDICATES = ["relA", "relB", "relC"]

#: Every corpus carries this backbone so a multi-hop route always
#: exists; drawn edges add shortcuts, branches and cycles around it.
#: Subjects are distinct entities, so subject-routing scatters the
#: chain's edges across shards — the boundary-spanning regime.
_BACKBONE = [
    ("Alpha", "relA", "Bravo"),
    ("Bravo", "relA", "Charlie"),
    ("Charlie", "relA", "Delta"),
]

graph_corpus = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_ENTITIES) - 1),
        st.integers(min_value=0, max_value=len(_ENTITIES) - 1),
        st.integers(min_value=0, max_value=len(_PREDICATES) - 1),
    ),
    min_size=0,
    max_size=10,
)


def _facts(edges):
    facts = list(_BACKBONE)
    for s, o, p in edges:
        if s == o:
            continue
        facts.append((_ENTITIES[s], _PREDICATES[p], _ENTITIES[o]))
    return facts


def _config() -> NousConfig:
    # Small LDA and a lossless beam: every completed route within the
    # hop budget survives on both sides, so set comparison is exact.
    return NousConfig(
        window_size=10_000, min_support=2, lda_iterations=10,
        retrain_every=0, seed=3, max_hops=3, beam_width=64,
    )


def _monolith(facts) -> NousService:
    service = NousService(
        kb=KnowledgeBase(),
        config=_config(),
        service_config=ServiceConfig(auto_start=False),
    )
    assert service.ingest_facts(facts, date="2015-06-01").ok
    return service


def _cluster(facts, num_shards, shard_mode="local") -> ShardedNousService:
    cluster = ShardedNousService(
        num_shards=num_shards,
        config=_config(),
        service_config=ServiceConfig(auto_start=False),
        shard_mode=shard_mode,
        kb_spec="empty",
    )
    assert cluster.ingest_facts(facts, date="2015-06-01").ok
    return cluster


def _reference_search(mono: NousService) -> CoherentPathSearch:
    """The monolith's topic-annotated search, lossless-beam variant —
    built exactly like ``Nous._topic_annotated_graph`` so the LDA fit
    (sorted doc ids, seeded rng) is byte-identical to the cluster's
    union-document fit."""
    config = _config()
    kb = mono.nous.kb
    documents = {
        entity: kb.description(entity) or entity.replace("_", " ")
        for entity in kb.entities()
    }
    topics = LdaModel(
        n_topics=config.n_topics,
        n_iterations=config.lda_iterations,
        seed=config.seed,
    ).fit(documents)
    graph = kb.to_property_graph()
    assign_topic_vectors(graph, topics)
    return CoherentPathSearch(
        graph, max_hops=config.max_hops, beam_width=config.beam_width
    )


def _distributed_search(cluster: ShardedNousService) -> DistributedPathSearch:
    config = _config()
    return DistributedPathSearch(
        cluster.compute_coordinator(),
        n_topics=config.n_topics,
        lda_iterations=config.lda_iterations,
        seed=config.seed,
        max_hops=config.max_hops,
        beam_width=config.beam_width,
    )


def _route_set(paths):
    return {(tuple(p.nodes), round(p.coherence, 9)) for p in paths}


# ---------------------------------------------------------------------------
# cross-shard path search
# ---------------------------------------------------------------------------

class TestPathSearchEquivalence:
    @_SETTINGS
    @given(edges=graph_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_route_sets_match_monolith(self, edges, num_shards):
        self._check(edges, num_shards, "local")

    @_PROCESS_SETTINGS
    @given(edges=graph_corpus, num_shards=st.integers(min_value=2, max_value=3))
    def test_route_sets_match_monolith_process_shards(self, edges, num_shards):
        _require_pinned_hashseed()
        self._check(edges, num_shards, "process")

    def _check(self, edges, num_shards, shard_mode):
        facts = _facts(edges)
        mono = _monolith(facts)
        cluster = _cluster(facts, num_shards, shard_mode)
        try:
            reference = _reference_search(mono)
            distributed = _distributed_search(cluster)
            # k past any plausible route count: no top-k cut, so the
            # comparison is over *all* completed routes.
            assert _route_set(
                distributed.top_k_paths("Alpha", "Delta", k=50)
            ) == _route_set(reference.top_k_paths("Alpha", "Delta", k=50))
        finally:
            mono.close()
            cluster.close()

    def test_boundary_spanning_route_is_found(self):
        """The three backbone edges route to three *different* shards at
        N=4 (pinned below) — the whole route is invisible to every
        per-shard search, yet the distributed search walks it."""
        facts = list(_BACKBONE)
        cluster = _cluster(facts, 4)
        try:
            homes = {
                cluster.router.shard_for_entity(s) for s, _p, _o in facts
            }
            assert len(homes) > 1, "fixture no longer spans shards"
            paths = _distributed_search(cluster).top_k_paths(
                "Alpha", "Delta", k=3
            )
            assert [str(n) for n in paths[0].nodes] == [
                "Alpha", "Bravo", "Charlie", "Delta",
            ]
        finally:
            cluster.close()

    def test_relationship_constraint_filters_routes(self):
        facts = list(_BACKBONE) + [("Alpha", "relB", "Delta")]
        cluster = _cluster(facts, 3)
        try:
            search = _distributed_search(cluster)
            constrained = search.top_k_paths(
                "Alpha", "Delta", k=10, relationship="relB"
            )
            assert constrained
            assert all(
                any(edge.label == "relB" for edge in path.edges)
                for path in constrained
            )
        finally:
            cluster.close()

    def test_absent_endpoints_raise_structured_errors(self):
        cluster = _cluster(list(_BACKBONE), 2)
        try:
            search = _distributed_search(cluster)
            with pytest.raises(VertexNotFoundError):
                search.top_k_paths("Alpha", "Nowhere", k=3)
            with pytest.raises(QAError):
                search.top_k_paths("Alpha", "Alpha", k=3)
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# analytics jobs
# ---------------------------------------------------------------------------

class TestAnalyticsEquivalence:
    @_SETTINGS
    @given(edges=graph_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_jobs_match_reference_algorithms(self, edges, num_shards):
        self._check(edges, num_shards, "local")

    @_PROCESS_SETTINGS
    @given(edges=graph_corpus, num_shards=st.integers(min_value=2, max_value=3))
    def test_jobs_match_reference_algorithms_process_shards(
        self, edges, num_shards
    ):
        self._check(edges, num_shards, "process")

    def _check(self, edges, num_shards, shard_mode):
        facts = _facts(edges)
        mono = _monolith(facts)
        cluster = _cluster(facts, num_shards, shard_mode)
        try:
            graph = mono.nous.kb.to_property_graph()
            coordinator = cluster.compute_coordinator()

            reference_ranks = {
                str(v): score for v, score in pagerank(graph).items()
            }
            ranks = coordinator.pagerank()
            assert set(ranks) == set(reference_ranks)
            for vertex, score in reference_ranks.items():
                assert ranks[vertex] == pytest.approx(score, abs=1e-9)

            reference_parts = _partitions(
                {str(v): str(c) for v, c in connected_components(graph).items()}
            )
            assert _partitions(coordinator.components()) == reference_parts

            assert coordinator.degree_centrality() == {
                str(v): graph.degree(v) for v in graph.vertices()
            }
        finally:
            mono.close()
            cluster.close()


def _partitions(labels):
    groups = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return frozenset(frozenset(members) for members in groups.values())


# ---------------------------------------------------------------------------
# query surface + result cache
# ---------------------------------------------------------------------------

ANALYTICS_QUERIES = [
    "pagerank",
    "show pagerank top 5",
    "connected components",
    "degree centrality",
    "most connected entities top 3",
]


class TestAnalyticsQuerySurface:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_envelopes_byte_identical_to_monolith(self, num_shards):
        facts = _facts([(0, 4, 0), (4, 5, 1), (5, 0, 2), (6, 7, 0)])
        mono = _monolith(facts)
        cluster = _cluster(facts, num_shards)
        try:
            for text in ANALYTICS_QUERIES:
                expected = mono.query(text)
                actual = cluster.query(text)
                assert actual.ok and expected.ok, text
                assert actual.kind == expected.kind, text
                assert actual.payload == expected.payload, text
                assert actual.rendered == expected.rendered, text
        finally:
            mono.close()
            cluster.close()

    def test_result_cache_skips_repeat_compute_jobs(self):
        cluster = _cluster(list(_BACKBONE), 2)
        try:
            first = cluster.query("pagerank top 5")
            assert first.ok
            jobs_after_first = cluster.cluster_info()["compute"]["jobs"]
            assert jobs_after_first >= 1
            repeat = cluster.query("pagerank top 5")
            assert repeat.payload == first.payload
            # Served from the composite-stamp cache: no new compute job.
            assert cluster.cluster_info()["compute"]["jobs"] == jobs_after_first
            # A KG mutation moves the stamp and re-runs the job.
            assert cluster.ingest_facts(
                [("Foxtrot", "relB", "Alpha")], date="2015-06-02"
            ).ok
            refreshed = cluster.query("pagerank top 5")
            assert refreshed.ok
            assert cluster.cluster_info()["compute"]["jobs"] > jobs_after_first
            assert refreshed.payload != first.payload
        finally:
            cluster.close()

    def test_compute_counters_surface_under_cluster_stats(self):
        cluster = _cluster(list(_BACKBONE), 2)
        try:
            assert cluster.query("why is Alpha related to Delta").ok
            stats = cluster.statistics()
            assert stats.ok
            compute = stats.payload["cluster"]["compute"]
            assert compute["path_searches"] >= 1
            assert compute["jobs"] >= 1
            assert compute["supersteps"] >= 1
            assert compute["cross_shard_bytes"] > 0
            assert compute["last_messages_per_step"]
        finally:
            cluster.close()
