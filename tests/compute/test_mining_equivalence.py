"""Distributed pattern mining vs the monolith: the exactness contract.

:class:`DistributedMiner` must agree with a single
:class:`~repro.mining.streaming.StreamingPatternMiner` holding the same
union window, for any partitioning:

- **Support equivalence** — exact MNI supports *and* embedding counts
  per pattern, N ∈ {1..4} local and N ∈ {2..3} process (hypothesis
  corpora whose subjects route to different shards, so embeddings
  genuinely straddle boundaries — the regime the old support-table
  summation got wrong in both directions).
- **Ownership property** — every union-window embedding is counted by
  exactly one source: summed per-shard local counts never exceed the
  monolith's, and the mixed-enumeration pass supplies precisely the
  difference.
- **Trending query surface** — ``show trending patterns`` envelopes are
  payload-identical to the monolith's across two successive windows, so
  the transition classes (rising / falling / stable) that compare
  against the previous report agree too.
- **Expand-phase depth** — at ``max_pattern_edges=3`` a mixed embedding
  can contain an edge *not* incident to any boundary vertex; those need
  the expand rounds, which the default 2-edge regime never runs.

Process-mode runs cover the ``/v1/shard/compute`` wire route end to
end; they need ``PYTHONHASHSEED`` pinned (the CI compute job pins 0).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import NousConfig, NousService, ServiceConfig
from repro.api.cluster.service import ShardedNousService
from repro.compute import DistributedMiner
from repro.compute.protocol import (
    MINE_PHASE_CENSUS,
    MINE_PHASE_LOCAL,
    OP_MINE_EMBEDDINGS,
    support_entry_from_payload,
)
from repro.errors import ClusterError
from repro.kb.knowledge_base import KnowledgeBase

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_PROCESS_SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _require_pinned_hashseed():
    if os.environ.get("PYTHONHASHSEED", "random") == "random":
        pytest.skip(
            "cross-interpreter identity comparisons need PYTHONHASHSEED set"
        )


_ENTITIES = [
    "Alpha", "Bravo", "Charlie", "Delta",
    "Echo", "Foxtrot", "Golf", "Hotel",
]
_PREDICATES = ["funds", "advises"]

#: Two parallel hub structures: distinct subjects route the funding
#: edges to different shards while both point at one hub, so the
#: 2-edge patterns through the hubs straddle shard boundaries and the
#: per-hub images (Alpha+Bravo, Charlie+Delta) push supports to the
#: min_support=2 threshold only when images union correctly.
_BACKBONE = [
    ("Alpha", "funds", "Golf"),
    ("Bravo", "funds", "Golf"),
    ("Golf", "advises", "Echo"),
    ("Charlie", "funds", "Hotel"),
    ("Delta", "funds", "Hotel"),
    ("Hotel", "advises", "Foxtrot"),
]

mining_corpus = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_ENTITIES) - 1),
        st.integers(min_value=0, max_value=len(_ENTITIES) - 1),
        st.integers(min_value=0, max_value=len(_PREDICATES) - 1),
    ),
    min_size=0,
    max_size=8,
)


def _facts(edges):
    facts = list(_BACKBONE)
    for s, o, p in edges:
        if s == o:
            continue
        facts.append((_ENTITIES[s], _PREDICATES[p], _ENTITIES[o]))
    return facts


def _config(max_pattern_edges=2) -> NousConfig:
    return NousConfig(
        window_size=10_000, min_support=2, lda_iterations=10,
        retrain_every=0, seed=3, max_pattern_edges=max_pattern_edges,
    )


def _monolith(facts, config) -> NousService:
    service = NousService(
        kb=KnowledgeBase(),
        config=config,
        service_config=ServiceConfig(auto_start=False),
    )
    assert service.ingest_facts(facts, date="2015-06-01").ok
    return service


def _cluster(facts, num_shards, shard_mode="local",
             config=None) -> ShardedNousService:
    cluster = ShardedNousService(
        num_shards=num_shards,
        config=config or _config(),
        service_config=ServiceConfig(auto_start=False),
        shard_mode=shard_mode,
        kb_spec="empty",
    )
    assert cluster.ingest_facts(facts, date="2015-06-01").ok
    return cluster


def _reference_tables(mono: NousService):
    """The monolith miner's exact per-pattern supports and counts."""
    supports, counts = {}, {}
    for pattern, count, images in mono.nous.dynamic.miner.support_state():
        counts[pattern] = count
        supports[pattern] = min(
            len(images[var]) for var in pattern.variables()
        )
    return supports, counts


def _local_counts(cluster: ShardedNousService):
    """Summed per-shard embedding counts, straight off the wire (an
    empty boundary ships no edges — just the aggregate tables)."""
    coord = cluster.compute_coordinator()
    coord.begin_job()
    num_shards = coord.num_shards
    local = coord._round(
        OP_MINE_EMBEDDINGS,
        {
            i: {"phase": MINE_PHASE_LOCAL, "boundary": []}
            for i in range(num_shards)
        },
    )
    counts = {}
    for index in range(num_shards):
        for entry in local[index]["patterns"]:
            pattern, count, _images = support_entry_from_payload(entry)
            counts[pattern] = counts.get(pattern, 0) + count
    return counts


# ---------------------------------------------------------------------------
# support + embedding-count equivalence
# ---------------------------------------------------------------------------

class TestMiningEquivalence:
    @_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_supports_match_monolith(self, edges, num_shards):
        self._check(edges, num_shards, "local", max_pattern_edges=2)

    @_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=2, max_value=4))
    def test_supports_match_monolith_three_edge_patterns(
        self, edges, num_shards
    ):
        # max_edges=3: mixed embeddings can include edges away from the
        # boundary, so this regime exercises the expand rounds.
        self._check(edges, num_shards, "local", max_pattern_edges=3)

    @_PROCESS_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=2, max_value=3))
    def test_supports_match_monolith_process_shards(self, edges, num_shards):
        _require_pinned_hashseed()
        self._check(edges, num_shards, "process", max_pattern_edges=2)

    def _check(self, edges, num_shards, shard_mode, max_pattern_edges):
        facts = _facts(edges)
        config = _config(max_pattern_edges)
        mono = _monolith(facts, config)
        cluster = _cluster(facts, num_shards, shard_mode, config)
        try:
            supports, counts = _reference_tables(mono)
            outcome = cluster.distributed_supports()
            assert outcome.supports == supports
            assert outcome.embeddings == counts
            assert outcome.min_support == config.min_support
            assert outcome.window_edges == len(facts)
        finally:
            mono.close()
            cluster.close()

    def test_zero_shards_rejected(self):
        cluster = _cluster(list(_BACKBONE), 2)
        try:
            coordinator = cluster.compute_coordinator()
            coordinator.num_shards = 0
            with pytest.raises(ClusterError, match="zero shards"):
                DistributedMiner(coordinator).mine()
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# ownership: every embedding counted by exactly one source
# ---------------------------------------------------------------------------

class TestEmbeddingOwnership:
    @_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=2, max_value=4))
    def test_local_plus_mixed_partitions_the_embedding_set(
        self, edges, num_shards
    ):
        facts = _facts(edges)
        config = _config()
        mono = _monolith(facts, config)
        cluster = _cluster(facts, num_shards, config=config)
        try:
            _supports, mono_counts = _reference_tables(mono)
            local_counts = _local_counts(cluster)
            outcome = cluster.distributed_supports()
            # No shard double-counts: summed local counts never exceed
            # the monolith's, and the mixed pass supplies exactly the
            # rest — together, exactly-once per embedding.
            for pattern, total in mono_counts.items():
                assert local_counts.get(pattern, 0) <= total, pattern
            assert outcome.embeddings == mono_counts
        finally:
            mono.close()
            cluster.close()

    def test_straddling_fixture_needs_the_mixed_pass(self):
        # Pin that the backbone really exercises the cross-shard path
        # at N=3 (Delta routes away from the other subjects): some
        # embedding is invisible to every local miner.
        facts = list(_BACKBONE)
        config = _config()
        mono = _monolith(facts, config)
        cluster = _cluster(facts, 3, config=config)
        try:
            homes = {cluster.router.shard_for_entity(s) for s, _p, _o in facts}
            assert len(homes) > 1, "fixture no longer spans shards"
            _supports, mono_counts = _reference_tables(mono)
            local_counts = _local_counts(cluster)
            assert sum(local_counts.values()) < sum(mono_counts.values()), (
                "no embedding straddles shards; the fixture lost its point"
            )
            assert cluster.distributed_supports().embeddings == mono_counts
        finally:
            mono.close()
            cluster.close()


# ---------------------------------------------------------------------------
# trending query surface across windows (transition classes included)
# ---------------------------------------------------------------------------

_FOLLOW_UP = [
    ("Echo", "funds", "Golf"),
    ("Foxtrot", "funds", "Hotel"),
]


class TestTrendingSurfaceEquivalence:
    @_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=1, max_value=4))
    def test_trending_payloads_identical_across_windows(
        self, edges, num_shards
    ):
        self._check(edges, num_shards, "local")

    @_PROCESS_SETTINGS
    @given(edges=mining_corpus, num_shards=st.integers(min_value=2, max_value=3))
    def test_trending_payloads_identical_process_shards(
        self, edges, num_shards
    ):
        _require_pinned_hashseed()
        self._check(edges, num_shards, "process")

    def _check(self, edges, num_shards, shard_mode):
        facts = _facts(edges)
        mono = _monolith(facts, _config())
        cluster = _cluster(facts, num_shards, shard_mode)
        try:
            # First window, then a second after more facts: the second
            # report's rising/falling/stable classes compare against the
            # first, so equality here pins the transition state too.
            for extra in (None, _FOLLOW_UP):
                if extra is not None:
                    assert mono.ingest_facts(extra, date="2015-06-02").ok
                    assert cluster.ingest_facts(extra, date="2015-06-02").ok
                expected = mono.query("show trending patterns")
                actual = cluster.query("show trending patterns")
                assert actual.ok and expected.ok
                assert actual.kind == expected.kind
                assert actual.payload == expected.payload
                assert actual.rendered == expected.rendered
        finally:
            mono.close()
            cluster.close()
