"""Dead workers mid-superstep: structured failure or self-heal.

A compute job is a sequence of stateless rounds, so a worker SIGKILLed
*between* rounds (the coordinator's ``on_round`` hook is exactly that
seam) exercises the failure contract:

- **Without durability** (no ``data_dir``): the next step's
  :class:`ClusterError` propagates as-is — a structured, catchable
  error, never a hang or a silently partial answer.  The cluster's
  *query* surface degrades the same way the scatter does: the path
  augmentation is dropped, the merged per-shard answer still returns.
- **With durability**: the coordinator's recover hook respawns the
  worker (snapshot + WAL replay restores the exact pre-crash
  partition), re-runs the failed round verbatim, and the job completes
  with the same result an unharmed cluster produces.

Process shards only (there is no process to kill in local mode); the
suite skips without a pinned ``PYTHONHASHSEED`` like every
cross-interpreter fixture (the CI compute job pins 0).
"""

from __future__ import annotations

import os

import pytest

from repro import NousConfig, ServiceConfig
from repro.api.cluster.service import ShardedNousService
from repro.errors import ClusterError

pytestmark = pytest.mark.skipif(
    os.environ.get("PYTHONHASHSEED", "random") == "random",
    reason="worker subprocesses need a pinned PYTHONHASHSEED "
    "(the CI compute job pins 0)",
)

FACTS = [
    ("Alpha", "relA", "Bravo"),
    ("Bravo", "relA", "Charlie"),
    ("Charlie", "relA", "Delta"),
    ("Delta", "relB", "Alpha"),
]


def _config() -> NousConfig:
    return NousConfig(
        window_size=100, min_support=2, lda_iterations=10,
        retrain_every=0, seed=3, max_hops=3, beam_width=16,
    )


def _cluster(data_dir=None) -> ShardedNousService:
    kwargs = {}
    if data_dir is not None:
        kwargs = {"data_dir": data_dir, "restart_backoff": 0.05}
    cluster = ShardedNousService(
        num_shards=2,
        config=_config(),
        service_config=ServiceConfig(auto_start=False, max_batch=1),
        shard_mode="process",
        kb_spec="empty",
        **kwargs,
    )
    assert cluster.ingest_facts(FACTS, date="2015-06-01").ok
    return cluster


def _kill_after_round(cluster, round_ordinal=1):
    """An ``on_round`` hook that SIGKILLs worker 0 once, between rounds."""
    state = {"fired": False}

    def hook(completed_round):
        if completed_round == round_ordinal and not state["fired"]:
            state["fired"] = True
            worker = cluster._manager.workers[0]
            worker.process.kill()
            worker.process.wait(timeout=10)

    return hook, state


class TestDeadWorkerWithoutDurability:
    def test_mining_job_raises_structured_cluster_error(self):
        # Kill between the census and local rounds of the distributed
        # embedding enumeration: the trending path must fail with a
        # structured error, never a hang or a silent partial support
        # table (a partial table would quietly undercount — the exact
        # failure mode this subsystem replaced).
        cluster = _cluster()
        try:
            hook, state = _kill_after_round(cluster)
            with pytest.raises(ClusterError):
                cluster.distributed_supports(on_round=hook)
            assert state["fired"]
            assert 0 in cluster.dead_shards()
        finally:
            cluster.close()

    def test_job_raises_structured_cluster_error(self):
        cluster = _cluster()
        try:
            hook, state = _kill_after_round(cluster)
            coordinator = cluster.compute_coordinator(on_round=hook)
            assert coordinator.recover is None  # no data_dir, no heal
            with pytest.raises(ClusterError):
                coordinator.pagerank()
            assert state["fired"]
            assert 0 in cluster.dead_shards()
        finally:
            cluster.close()

    def test_path_query_degrades_to_per_shard_merge(self):
        cluster = _cluster()
        try:
            # Warm nothing: kill a worker outright, then ask a path
            # question.  The scatter's partial tolerance answers from
            # the survivor and the distributed augmentation (which
            # cannot run without shard 0) degrades silently.
            worker = cluster._manager.workers[0]
            worker.process.kill()
            worker.process.wait(timeout=10)
            envelope = cluster.query("why is Charlie related to Delta")
            assert envelope.ok
        finally:
            cluster.close()


class TestDeadWorkerWithDurability:
    def test_job_self_heals_and_completes(self, tmp_path):
        reference_cluster = _cluster()
        try:
            reference = reference_cluster.compute_coordinator().pagerank()
        finally:
            reference_cluster.close()

        cluster = _cluster(data_dir=str(tmp_path / "cluster"))
        try:
            hook, state = _kill_after_round(cluster)
            coordinator = cluster.compute_coordinator(on_round=hook)
            assert coordinator.recover is not None
            ranks = coordinator.pagerank()
            assert state["fired"], "fault was never injected"
            # The respawned worker replayed its WAL and the re-run round
            # answered identically: the healed job equals the unharmed one.
            assert set(ranks) == set(reference)
            for vertex, score in reference.items():
                assert ranks[vertex] == pytest.approx(score, abs=1e-9)
            assert cluster.dead_shards() == []
            assert cluster.cluster_info()["shard_restarts"][0] == 1
        finally:
            cluster.close()

    def test_mining_job_self_heals_and_stays_exact(self, tmp_path):
        reference_cluster = _cluster()
        try:
            reference = reference_cluster.distributed_supports()
        finally:
            reference_cluster.close()

        cluster = _cluster(data_dir=str(tmp_path / "cluster"))
        try:
            hook, state = _kill_after_round(cluster)
            outcome = cluster.distributed_supports(on_round=hook)
            assert state["fired"], "fault was never injected"
            # The respawned worker replayed its WAL (window state
            # included) and the re-run round answered identically: the
            # healed enumeration equals the unharmed one, support for
            # support and embedding count for embedding count.
            assert outcome.supports == reference.supports
            assert outcome.embeddings == reference.embeddings
            assert outcome.window_edges == reference.window_edges
            assert cluster.dead_shards() == []
            assert cluster.cluster_info()["shard_restarts"][0] == 1
        finally:
            cluster.close()

    def test_distributed_path_search_survives_mid_search_kill(self, tmp_path):
        cluster = _cluster(data_dir=str(tmp_path / "cluster"))
        try:
            hook, state = _kill_after_round(cluster, round_ordinal=2)
            coordinator = cluster.compute_coordinator(on_round=hook)
            from repro.compute import DistributedPathSearch

            config = _config()
            search = DistributedPathSearch(
                coordinator,
                n_topics=config.n_topics,
                lda_iterations=config.lda_iterations,
                seed=config.seed,
                max_hops=config.max_hops,
                beam_width=config.beam_width,
            )
            paths = search.top_k_paths("Alpha", "Delta", k=3)
            assert state["fired"], "fault was never injected"
            assert paths
            assert [str(n) for n in paths[0].nodes] == [
                "Alpha", "Bravo", "Charlie", "Delta",
            ]
            assert cluster.dead_shards() == []
        finally:
            cluster.close()
