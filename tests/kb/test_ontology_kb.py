"""Ontology, alias dictionary and KnowledgeBase facade tests."""

import pytest

from repro.errors import KBError, UnknownPredicateError, UnknownTypeError
from repro.kb import AliasDictionary, KnowledgeBase, Ontology, build_drone_kb
from repro.kb.aliases import normalize_alias
from repro.kb.drone_kb import build_ontology


class TestOntology:
    @pytest.fixture
    def ontology(self):
        return build_ontology()

    def test_taxonomy_chain(self, ontology):
        assert ontology.is_a("Company", "Organization")
        assert ontology.is_a("Company", "Agent")
        assert ontology.is_a("Company", Ontology.ROOT)
        assert not ontology.is_a("Company", "Location")

    def test_ancestors(self, ontology):
        assert ontology.ancestors("City") == ["Location", "Thing"]

    def test_unknown_type_raises(self, ontology):
        with pytest.raises(UnknownTypeError):
            ontology.ancestors("Spaceship")
        with pytest.raises(UnknownTypeError):
            ontology.add_type("X", parent="Spaceship")

    def test_lca(self, ontology):
        assert ontology.least_common_ancestor("Company", "Agency") == "Organization"
        assert ontology.least_common_ancestor("Company", "City") == "Thing"
        assert ontology.least_common_ancestor("Person", "Person") == "Person"

    def test_predicate_signature(self, ontology):
        sig = ontology.predicate("headquarteredIn")
        assert sig.domain == "Organization"
        assert sig.range_ == "Location"

    def test_unknown_predicate_raises(self, ontology):
        with pytest.raises(UnknownPredicateError):
            ontology.predicate("flibbertigibbet")

    def test_signature_allows(self, ontology):
        assert ontology.signature_allows("headquarteredIn", "Company", "City")
        assert not ontology.signature_allows("headquarteredIn", "City", "City")
        # None types pass (extraction may not know them)
        assert ontology.signature_allows("headquarteredIn", None, "City")

    def test_signature_rejects_unknown_type(self, ontology):
        assert not ontology.signature_allows("headquarteredIn", "Spaceship", None)

    def test_symmetric_flag(self, ontology):
        assert ontology.predicate("competitorOf").symmetric
        assert not ontology.predicate("acquired").symmetric


class TestAliasDictionary:
    def test_normalize(self):
        assert normalize_alias("The DJI") == "dji"
        assert normalize_alias("DJI's") == "dji"
        assert normalize_alias("  Accel   Partners ") == "accel partners"

    def test_candidates_with_priors(self):
        d = AliasDictionary()
        d.add("Phantom", "Phantom_3", count=3)
        d.add("Phantom", "Phantom_Movie", count=1)
        candidates = d.candidates("the Phantom")
        assert candidates[0][0] == "Phantom_3"
        assert candidates[0][1] == pytest.approx(0.75)
        assert sum(p for _, p in candidates) == pytest.approx(1.0)

    def test_unknown_mention(self):
        assert AliasDictionary().candidates("whatever") == []

    def test_aliases_of(self):
        d = AliasDictionary()
        d.add("DJI", "DJI")
        d.add("Da-Jiang Innovations", "DJI")
        assert d.aliases_of("DJI") == {"dji", "da-jiang innovations"}

    def test_merge(self):
        a, b = AliasDictionary(), AliasDictionary()
        a.add("X", "E1")
        b.add("X", "E2")
        a.merge(b)
        assert {e for e, _ in a.candidates("X")} == {"E1", "E2"}

    def test_empty_alias_ignored(self):
        d = AliasDictionary()
        d.add("the", "E1")  # normalises to empty
        assert len(d) == 0


class TestKnowledgeBase:
    @pytest.fixture
    def kb(self):
        return build_drone_kb()

    def test_entities_and_types(self, kb):
        assert kb.entity_type("DJI") == "Company"
        assert kb.entity_type("Shenzhen") == "City"
        assert "DJI" in kb.entities_of_type("Organization")  # via taxonomy

    def test_facts(self, kb):
        facts = kb.store.match(subject="DJI", predicate="manufactures")
        assert {t.object for t in facts} == {"Phantom_3", "Inspire_1"}
        assert all(t.curated for t in facts)

    def test_add_fact_registers_predicate_and_entities(self):
        kb = KnowledgeBase()
        kb.add_fact("a", "newPred", "b")
        assert kb.ontology.has_predicate("newPred")
        assert kb.has_entity("a") and kb.has_entity("b")

    def test_entity_context_reflects_neighborhood(self, kb):
        context = kb.entity_context("DJI")
        assert context["shenzhen"] > 0
        assert context["company"] > 0  # own type
        assert "phantom" in context

    def test_to_property_graph(self, kb):
        graph = kb.to_property_graph()
        assert graph.has_vertex("DJI")
        assert graph.vertex_props("DJI")["type"] == "Company"
        edges = graph.edges_between("DJI", "Shenzhen")
        assert edges[0].label == "headquarteredIn"
        assert edges[0].props["curated"]

    def test_graph_confidence_filter(self, kb):
        kb.add_fact("DJI", "uses", "Karma_Drone", confidence=0.2, curated=False)
        graph = kb.to_property_graph(min_confidence=0.5)
        assert graph.edges_between("DJI", "Karma_Drone") == []

    def test_graph_exclude_extracted(self, kb):
        kb.add_fact("DJI", "uses", "Karma_Drone", confidence=0.9, curated=False)
        graph = kb.to_property_graph(include_extracted=False)
        assert graph.edges_between("DJI", "Karma_Drone") == []

    def test_gazetteer_labels(self, kb):
        gazetteer = kb.gazetteer()
        assert gazetteer["dji"] == "ORG"
        assert gazetteer["shenzhen"] == "LOCATION"
        assert gazetteer["frank wang"] == "PERSON"
        assert gazetteer["phantom 3"] == "PRODUCT"

    def test_alias_candidates_ambiguous(self, kb):
        candidates = kb.aliases.candidates("Phantom")
        assert any(e == "Phantom_3" for e, _ in candidates)

    def test_roundtrip_tsv(self, kb):
        kb.add_fact(
            "DJI", "uses", "Karma_Drone", confidence=0.55, source="wsj", curated=False
        )
        text = kb.dump_tsv()
        loaded = KnowledgeBase.load_tsv(text, ontology=build_ontology())
        assert loaded.num_facts == kb.num_facts
        assert loaded.entity_type("DJI") == "Company"
        fact = loaded.store.get("DJI", "uses", "Karma_Drone")
        assert fact.confidence == pytest.approx(0.55)
        assert not fact.curated
        assert loaded.aliases.candidates("Da-Jiang Innovations")[0][0] == "DJI"

    def test_load_tsv_rejects_garbage(self):
        with pytest.raises(KBError):
            KnowledgeBase.load_tsv("Z\tbad\tline")

    def test_descriptions_present(self, kb):
        assert "Shenzhen" in kb.description("DJI")

    def test_kb_alias_index_excludes_ambiguous(self, kb):
        kb.add_entity("Phantom_Movie", "Artifact", aliases=["Phantom"])
        index = kb.kb_alias_index()
        assert "phantom" not in index
        assert index.get("da-jiang innovations") == "DJI"


class TestGraphViewMirror:
    """The incrementally-maintained graph_view() must always equal a
    fresh to_property_graph() materialisation."""

    def _assert_mirror_matches_fresh(self, kb):
        mirror = kb.graph_view()
        fresh = kb.to_property_graph()
        assert set(mirror.vertices()) == set(fresh.vertices())
        assert sorted(
            (e.src, e.label, e.dst) for e in mirror.edges()
        ) == sorted((e.src, e.label, e.dst) for e in fresh.edges())
        mirror.check_index_invariants()

    def test_facts_added_after_first_view_appear(self):
        kb = KnowledgeBase()
        kb.add_fact("A", "likes", "B")
        kb.graph_view()  # materialise, then mutate
        kb.add_fact("B", "likes", "C")
        kb.add_entity("C", "Company")
        self._assert_mirror_matches_fresh(kb)
        assert kb.graph_view().vertex_props("C")["type"] == "Company"

    def test_confidence_upgrade_updates_edge_in_place(self):
        kb = KnowledgeBase()
        kb.add_fact("A", "likes", "B", confidence=0.4, curated=False)
        view = kb.graph_view()
        kb.add_fact("A", "likes", "B", confidence=0.9, curated=False)
        (edge,) = view.edges_between("A", "B")
        assert edge.props["confidence"] == pytest.approx(0.9)
        assert view.num_edges == 1

    def test_remove_fact_drops_edges_and_orphan_vertices(self):
        kb = KnowledgeBase()
        kb.add_fact("A", "likes", "B")
        kb.add_fact("B", "likes", "C")
        kb.graph_view()
        version = kb.version
        assert kb.remove_fact("A", "likes", "B")
        assert kb.version > version
        assert not kb.remove_fact("A", "likes", "B")  # already gone
        self._assert_mirror_matches_fresh(kb)
        assert not kb.graph_view().has_vertex("A")  # orphaned endpoint
        assert kb.graph_view().has_vertex("B")      # still in a fact

    def test_entities_of_type_uses_index(self):
        kb = build_drone_kb()
        before = kb.entities_of_type("Company")
        kb.add_entity("NewCo", "Company")
        after = kb.entities_of_type("Company")
        assert after == before | {"NewCo"}
        assert "DJI" in kb.entities_of_type("Organization")  # via taxonomy
