"""Triple store index and pattern-query tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb import Triple, TripleStore


@pytest.fixture
def store():
    s = TripleStore()
    s.add(Triple("DJI", "manufactures", "Phantom_3"))
    s.add(Triple("DJI", "headquarteredIn", "Shenzhen"))
    s.add(Triple("Amazon", "acquired", "Kiva_Systems"))
    s.add(Triple("Accel", "investsIn", "DJI"))
    return s


class TestAddRemove:
    def test_add_and_contains(self, store):
        assert ("DJI", "manufactures", "Phantom_3") in store
        assert len(store) == 4

    def test_duplicate_add_no_change(self, store):
        assert not store.add(Triple("DJI", "manufactures", "Phantom_3", confidence=1.0))
        assert len(store) == 4

    def test_higher_confidence_wins(self):
        s = TripleStore()
        s.add(Triple("a", "p", "b", confidence=0.4, curated=False))
        assert s.add(Triple("a", "p", "b", confidence=0.9, curated=False))
        assert s.get("a", "p", "b").confidence == 0.9

    def test_lower_confidence_rejected(self):
        s = TripleStore()
        s.add(Triple("a", "p", "b", confidence=0.9))
        assert not s.add(Triple("a", "p", "b", confidence=0.1))
        assert s.get("a", "p", "b").confidence == 0.9

    def test_remove(self, store):
        assert store.remove("DJI", "manufactures", "Phantom_3")
        assert ("DJI", "manufactures", "Phantom_3") not in store
        assert store.match(subject="DJI", predicate="manufactures") == []

    def test_remove_missing_returns_false(self, store):
        assert not store.remove("x", "y", "z")


class TestPatternQueries:
    def test_match_subject(self, store):
        facts = store.match(subject="DJI")
        assert {t.predicate for t in facts} == {"manufactures", "headquarteredIn"}

    def test_match_predicate(self, store):
        facts = store.match(predicate="acquired")
        assert len(facts) == 1
        assert facts[0].subject == "Amazon"

    def test_match_object(self, store):
        facts = store.match(object="DJI")
        assert facts[0].subject == "Accel"

    def test_match_subject_predicate(self, store):
        facts = store.match(subject="DJI", predicate="headquarteredIn")
        assert facts[0].object == "Shenzhen"

    def test_match_predicate_object(self, store):
        facts = store.match(predicate="investsIn", object="DJI")
        assert facts[0].subject == "Accel"

    def test_match_subject_object(self, store):
        facts = store.match(subject="Amazon", object="Kiva_Systems")
        assert facts[0].predicate == "acquired"

    def test_match_exact(self, store):
        assert len(store.match("DJI", "manufactures", "Phantom_3")) == 1
        assert store.match("DJI", "manufactures", "nope") == []

    def test_match_all(self, store):
        assert len(store.match()) == 4

    def test_objects_subjects_helpers(self, store):
        assert store.objects("DJI", "manufactures") == {"Phantom_3"}
        assert store.subjects("investsIn", "DJI") == {"Accel"}

    def test_about_and_neighbors(self, store):
        about = store.about("DJI")
        assert len(about) == 3  # 2 outgoing + 1 incoming
        assert store.neighbors("DJI") == {"Phantom_3", "Shenzhen", "Accel"}

    def test_degree(self, store):
        assert store.degree("DJI") == 3
        assert store.degree("unknown") == 0

    def test_entities_predicates(self, store):
        assert "DJI" in store.entities()
        assert "acquired" in store.predicates()


class TestStoreProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.sampled_from(["p", "q"]),
                st.sampled_from(["a", "b", "c", "d"]),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_match_consistent_with_membership(self, keys):
        store = TripleStore()
        for s, p, o in keys:
            store.add(Triple(s, p, o))
        unique = set(keys)
        assert len(store) == len(unique)
        for s, p, o in unique:
            assert (s, p, o) in store
            assert len(store.match(s, p, o)) == 1
        # index consistency: every indexed answer is a stored fact
        for s, p, o in unique:
            assert o in store.objects(s, p)
            assert s in store.subjects(p, o)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["p", "q"]),
                st.sampled_from(["a", "b", "c"]),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_remove_restores_emptiness(self, keys):
        store = TripleStore()
        for s, p, o in keys:
            store.add(Triple(s, p, o))
        for s, p, o in set(keys):
            store.remove(s, p, o)
        assert len(store) == 0
        assert store.match() == []
