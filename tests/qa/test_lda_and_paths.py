"""LDA, topic assignment and coherence-guided path search tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, QAError, VertexNotFoundError
from repro.graph import PropertyGraph
from repro.qa import (
    CoherentPathSearch,
    LdaModel,
    assign_topic_vectors,
    bfs_path_ranker,
    js_divergence,
    unguided_top_k,
)
from repro.qa.topics import TOPIC_PROP, vertex_topics


def two_topic_corpus(n_per_group=8, words=40, seed=1):
    rng = np.random.default_rng(seed)
    drones = "drone flight rotor pilot airspace altitude gimbal uav".split()
    finance = "funding venture capital investor equity valuation round ipo".split()
    docs = {}
    for i in range(n_per_group):
        docs[f"drone_{i}"] = " ".join(rng.choice(drones, size=words))
        docs[f"fin_{i}"] = " ".join(rng.choice(finance, size=words))
    return docs


class TestLda:
    @pytest.fixture(scope="class")
    def fitted(self):
        docs = two_topic_corpus()
        return LdaModel(n_topics=2, n_iterations=80, seed=5).fit(docs), docs

    def test_theta_rows_sum_to_one(self, fitted):
        topics, _ = fitted
        theta = topics.theta()
        np.testing.assert_allclose(theta.sum(axis=1), 1.0, rtol=1e-9)

    def test_phi_rows_sum_to_one(self, fitted):
        topics, _ = fitted
        phi = topics.phi()
        np.testing.assert_allclose(phi.sum(axis=1), 1.0, rtol=1e-9)

    def test_groups_separate(self, fitted):
        """Docs with disjoint vocabularies must land on different topics."""
        topics, docs = fitted
        theta = topics.theta()
        drone_rows = [i for i, d in enumerate(topics.doc_ids) if d.startswith("drone")]
        fin_rows = [i for i, d in enumerate(topics.doc_ids) if d.startswith("fin")]
        drone_major = {int(np.argmax(theta[i])) for i in drone_rows}
        fin_major = {int(np.argmax(theta[i])) for i in fin_rows}
        assert len(drone_major) == 1
        assert len(fin_major) == 1
        assert drone_major != fin_major

    def test_top_words_topical(self, fitted):
        topics, _ = fitted
        all_top = set(topics.top_words(0, 5)) | set(topics.top_words(1, 5))
        assert "drone" in all_top or "flight" in all_top
        assert "funding" in all_top or "capital" in all_top

    def test_deterministic(self):
        docs = two_topic_corpus()
        t1 = LdaModel(n_topics=2, n_iterations=20, seed=9).fit(docs)
        t2 = LdaModel(n_topics=2, n_iterations=20, seed=9).fit(docs)
        np.testing.assert_array_equal(t1.doc_topic, t2.doc_topic)

    def test_doc_distribution_lookup(self, fitted):
        topics, _ = fitted
        dist = topics.doc_distribution("drone_0")
        assert dist.shape == (2,)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            LdaModel(n_topics=1)
        with pytest.raises(ConfigError):
            LdaModel(n_iterations=0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigError):
            LdaModel().fit({"d": "a b"})  # all tokens shorter than 3 chars


class TestTopicAssignment:
    def test_assign_vectors(self):
        docs = two_topic_corpus(n_per_group=4)
        topics = LdaModel(n_topics=2, n_iterations=30, seed=3).fit(docs)
        graph = PropertyGraph()
        graph.add_vertex("drone_0")
        graph.add_vertex("not_fitted")
        fitted = assign_topic_vectors(graph, topics)
        assert fitted == 1
        assert vertex_topics(graph, "drone_0").shape == (2,)
        uniform = vertex_topics(graph, "not_fitted")
        np.testing.assert_allclose(uniform, [0.5, 0.5])

    def test_js_divergence_properties(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
        assert js_divergence(p, q) == js_divergence(q, p)
        assert 0.0 <= js_divergence(p, q) <= 1.0

    def test_js_handles_zeros(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(1.0)


def topic_vec(*values):
    return np.asarray(values, dtype=float)


def build_two_route_graph():
    """source -> target via a topically-coherent intermediate (drone) and
    via an incoherent one (celebrity gossip).  Both length 2."""
    g = PropertyGraph()
    drone = topic_vec(0.9, 0.05, 0.05)
    gossip = topic_vec(0.05, 0.9, 0.05)
    g.add_vertex("Windermere", **{TOPIC_PROP: topic_vec(0.7, 0.1, 0.2)})
    g.add_vertex("Drones", **{TOPIC_PROP: drone})
    g.add_vertex("Celebrity", **{TOPIC_PROP: gossip})
    g.add_vertex("AerialPhotos", **{TOPIC_PROP: topic_vec(0.8, 0.1, 0.1)})
    g.add_edge("Windermere", "Drones", "uses")
    g.add_edge("Drones", "AerialPhotos", "enables")
    g.add_edge("Windermere", "Celebrity", "mentionedWith")
    g.add_edge("Celebrity", "AerialPhotos", "photographedBy")
    return g


class TestCoherentPathSearch:
    def test_prefers_coherent_route(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g, max_hops=3, beam_width=4)
        paths = search.top_k_paths("Windermere", "AerialPhotos", k=2)
        assert paths
        assert paths[0].nodes == ["Windermere", "Drones", "AerialPhotos"]
        assert paths[0].coherence < paths[-1].coherence or len(paths) == 1

    def test_relationship_constraint(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g, max_hops=3)
        paths = search.top_k_paths(
            "Windermere", "AerialPhotos", k=3, relationship="mentionedWith"
        )
        assert paths
        assert all(
            any(e.label == "mentionedWith" for e in p.edges) for p in paths
        )

    def test_k_limits_results(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g, max_hops=3)
        paths = search.top_k_paths("Windermere", "AerialPhotos", k=1)
        assert len(paths) == 1

    def test_max_hops_respected(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g, max_hops=1)
        assert search.top_k_paths("Windermere", "AerialPhotos", k=3) == []

    def test_unknown_vertices_raise(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g)
        with pytest.raises(VertexNotFoundError):
            search.top_k_paths("Windermere", "Mars")

    def test_same_source_target_rejected(self):
        g = build_two_route_graph()
        with pytest.raises(QAError):
            CoherentPathSearch(g).top_k_paths("Drones", "Drones")

    def test_config_validation(self):
        g = build_two_route_graph()
        with pytest.raises(QAError):
            CoherentPathSearch(g, max_hops=0)
        with pytest.raises(QAError):
            CoherentPathSearch(g, beam_width=0)

    def test_stats_populated(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g)
        search.top_k_paths("Windermere", "AerialPhotos")
        assert search.stats.nodes_expanded > 0
        assert search.stats.paths_completed >= 1

    def test_describe_renders_directions(self):
        g = build_two_route_graph()
        search = CoherentPathSearch(g)
        paths = search.top_k_paths("Windermere", "AerialPhotos", k=1)
        text = paths[0].describe()
        assert "Windermere" in text and "uses" in text

    def test_paths_are_simple(self):
        g = build_two_route_graph()
        g.add_edge("AerialPhotos", "Windermere", "backlink")
        search = CoherentPathSearch(g, max_hops=4)
        for path in search.top_k_paths("Windermere", "AerialPhotos", k=5):
            assert len(set(path.nodes)) == len(path.nodes)


class TestBaselines:
    def test_bfs_finds_shortest(self):
        g = build_two_route_graph()
        paths, stats = bfs_path_ranker(g, "Windermere", "AerialPhotos", k=2)
        assert paths
        assert all(p.length == 2 for p in paths)
        assert stats.nodes_expanded > 0

    def test_unguided_ranks_by_coherence(self):
        g = build_two_route_graph()
        paths, _ = unguided_top_k(g, "Windermere", "AerialPhotos", k=2)
        assert paths[0].nodes == ["Windermere", "Drones", "AerialPhotos"]

    def test_guided_cheaper_than_unguided_on_wide_graph(self):
        """On a bushy graph the beam should touch far fewer edges."""
        g = PropertyGraph()
        on_topic = topic_vec(0.9, 0.1)
        off_topic = topic_vec(0.1, 0.9)
        g.add_vertex("s", **{TOPIC_PROP: on_topic})
        g.add_vertex("t", **{TOPIC_PROP: on_topic})
        # one coherent 2-hop route
        g.add_vertex("mid", **{TOPIC_PROP: on_topic})
        g.add_edge("s", "mid", "r")
        g.add_edge("mid", "t", "r")
        # many incoherent distractor branches
        for i in range(30):
            g.add_vertex(f"noise{i}", **{TOPIC_PROP: off_topic})
            g.add_edge("s", f"noise{i}", "r")
            for j in range(5):
                g.add_vertex(f"noise{i}_{j}", **{TOPIC_PROP: off_topic})
                g.add_edge(f"noise{i}", f"noise{i}_{j}", "r")
        search = CoherentPathSearch(g, max_hops=3, beam_width=3)
        guided = search.top_k_paths("s", "t", k=1)
        assert guided and guided[0].nodes == ["s", "mid", "t"]
        _, unguided_stats = unguided_top_k(g, "s", "t", k=1, max_hops=3)
        assert search.stats.edges_considered < unguided_stats.edges_considered

    def test_baselines_validate_vertices(self):
        g = build_two_route_graph()
        with pytest.raises(VertexNotFoundError):
            bfs_path_ranker(g, "nope", "AerialPhotos")
        with pytest.raises(QAError):
            unguided_top_k(g, "Drones", "Drones")
