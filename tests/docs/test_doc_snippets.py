"""Docs stay honest: every fenced shell/python snippet in README.md and
docs/API.md is smoke-run against a live ``nous serve`` instance.

Conventions the docs follow:

- ``bash`` blocks run under ``bash -euo pipefail``, ``python`` blocks
  under ``python -c``, both from the repo root with ``src`` on
  ``PYTHONPATH``.  Other fence languages (``json``, ``text``) are
  illustrations, not programs.
- A block preceded (within two lines) by ``<!-- docs-smoke: skip -->``
  is not runnable in a sandbox (e.g. the foreground ``serve`` command
  itself, or ``pip install``) and is skipped.
- Snippets that talk to a server assume ``http://127.0.0.1:8420`` —
  the port this harness serves the 12-article demo KG on.

The error-code table in docs/API.md is additionally checked
field-by-field against ``repro.api.http.HTTP_STATUS_BY_CODE``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api.http import HTTP_STATUS_BY_CODE

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = [
    "README.md",
    "docs/API.md",
    "docs/SHARDING.md",
    "docs/PERSISTENCE.md",
    "docs/COMPUTE.md",
    "docs/PERFORMANCE.md",
    "docs/TENANCY.md",
]
DOCS_PORT = 8420
DOCS_URL = f"http://127.0.0.1:{DOCS_PORT}"
SKIP_MARKER = "docs-smoke: skip"
SNIPPET_TIMEOUT = 180.0

_FENCE_RE = re.compile(r"^```(\w*)\s*$")


def _extract_snippets(relpath):
    """(relpath, lineno, lang, code) for every runnable fenced block."""
    lines = (REPO_ROOT / relpath).read_text().splitlines()
    snippets = []
    in_fence = False
    lang = ""
    start = 0
    buf = []
    for i, line in enumerate(lines, start=1):
        match = _FENCE_RE.match(line.strip())
        if not in_fence and match:
            in_fence, lang, start, buf = True, match.group(1).lower(), i, []
        elif in_fence and line.strip() == "```":
            in_fence = False
            if lang in ("bash", "sh", "shell", "python", "py"):
                preceding = lines[max(0, start - 3):start - 1]
                skip = any(SKIP_MARKER in p for p in preceding)
                if not skip:
                    snippets.append((relpath, start, lang, "\n".join(buf)))
        elif in_fence:
            buf.append(line)
    return snippets


SNIPPETS = [s for path in DOC_FILES for s in _extract_snippets(path)]


def _snippet_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.fixture(scope="module")
def live_server():
    """``nous serve`` on the port the docs hardcode."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.query.cli", "serve",
            "--articles", "12", "--seed", "3",
            "--port", str(DOCS_PORT), "--quiet",
        ],
        cwd=REPO_ROOT,
        env=_snippet_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                stderr = proc.stderr.read().decode(errors="replace")
                if "Address already in use" in stderr:
                    pytest.skip(f"port {DOCS_PORT} is busy on this machine")
                raise RuntimeError(f"nous serve died:\n{stderr}")
            try:
                with urllib.request.urlopen(
                    f"{DOCS_URL}/v1/healthz", timeout=2.0
                ) as response:
                    if json.load(response).get("ok"):
                        break
            except (urllib.error.URLError, OSError):
                time.sleep(0.2)
        else:
            raise RuntimeError("nous serve never became healthy")
        yield DOCS_URL
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15.0)


@pytest.mark.parametrize(
    "relpath,lineno,lang,code",
    SNIPPETS,
    ids=[f"{path}:{lineno}" for path, lineno, _lang, _code in SNIPPETS],
)
def test_snippet_runs(live_server, relpath, lineno, lang, code):
    if lang in ("bash", "sh", "shell"):
        argv = ["bash", "-euo", "pipefail", "-c", code]
    else:
        argv = [sys.executable, "-c", code]
    result = subprocess.run(
        argv,
        cwd=REPO_ROOT,
        env=_snippet_env(),
        capture_output=True,
        text=True,
        timeout=SNIPPET_TIMEOUT,
    )
    assert result.returncode == 0, (
        f"{relpath}:{lineno} ({lang}) exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )


def test_docs_cover_every_file():
    covered = {path for path, _l, _la, _c in SNIPPETS}
    assert covered == set(DOC_FILES)


def test_api_md_status_table_matches_code():
    """The error-code table in docs/API.md is exactly
    HTTP_STATUS_BY_CODE — neither side may drift."""
    text = (REPO_ROOT / "docs/API.md").read_text()
    rows = re.findall(r"^\| `([\w.]+)` \| (\d{3}) \|", text, re.MULTILINE)
    documented = {code: int(status) for code, status in rows}
    assert documented == HTTP_STATUS_BY_CODE
