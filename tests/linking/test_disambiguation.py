"""Entity disambiguation tests: priors, context, coherence, creation."""

import pytest

from repro.kb import build_drone_kb
from repro.linking import EntityLinker
from repro.linking.disambiguation import cosine, slugify
from collections import Counter


@pytest.fixture
def kb():
    kb = build_drone_kb()
    # Inject ambiguity: a second "Phantom" (a film) competing with the
    # DJI drone product, popularity skewed to the movie.
    kb.add_entity(
        "Phantom_Film", "Artifact", aliases=["Phantom", "The Phantom"],
        description="American adventure film about a masked hero.",
    )
    kb.aliases.add("Phantom", "Phantom_Film", count=3)
    return kb


class TestHelpers:
    def test_slugify(self):
        assert slugify("Accel Partners") == "Accel_Partners"
        assert slugify("  D.J.I. ") == "D_J_I"
        assert slugify("!!!") == "unknown"

    def test_cosine_identical(self):
        a = Counter({"drone": 2, "camera": 1})
        assert cosine(a, a) == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        assert cosine(Counter({"a": 1}), Counter({"b": 1})) == 0.0

    def test_cosine_empty(self):
        assert cosine(Counter(), Counter({"a": 1})) == 0.0


class TestPriorAndContext:
    def test_unambiguous_alias_links(self, kb):
        linker = EntityLinker(kb)
        decision = linker.link("Da-Jiang Innovations")
        assert decision.entity == "DJI"
        assert not decision.created

    def test_prior_only_prefers_popular(self, kb):
        linker = EntityLinker(kb, context_weight=0.0, coherence_weight=0.0)
        decision = linker.link("Phantom")
        assert decision.entity == "Phantom_Film"  # movie is more popular

    def test_context_overrides_prior(self, kb):
        linker = EntityLinker(kb)
        decision = linker.link(
            "Phantom",
            context_words="DJI drone quadcopter aerial camera Shenzhen".split(),
        )
        assert decision.entity == "Phantom_3"

    def test_candidates_recorded(self, kb):
        linker = EntityLinker(kb)
        decision = linker.link("Phantom", context_words=["drone"])
        entities = {e for e, _ in decision.candidates}
        assert {"Phantom_3", "Phantom_Film"} <= entities


class TestCoherence:
    def test_collective_linking_disambiguates(self, kb):
        """'Phantom' next to DJI/Shenzhen mentions should pick the drone."""
        linker = EntityLinker(kb)
        decisions = linker.link_all(["DJI", "Phantom", "Shenzhen"])
        by_mention = {d.mention: d.entity for d in decisions}
        assert by_mention["DJI"] == "DJI"
        assert by_mention["Phantom"] == "Phantom_3"

    def test_relatedness_bounds(self, kb):
        linker = EntityLinker(kb)
        assert linker.relatedness("DJI", "DJI") == 1.0
        assert linker.relatedness("DJI", "Shenzhen") == 1.0  # direct edge
        value = linker.relatedness("DJI", "Parrot_SA")
        assert 0.0 <= value <= 1.0

    def test_relatedness_zero_for_unconnected(self, kb):
        kb.add_entity("Isolated_Thing", "Thing")
        linker = EntityLinker(kb)
        assert linker.relatedness("DJI", "Isolated_Thing") == 0.0


class TestEntityCreation:
    def test_unknown_mention_creates_entity(self, kb):
        linker = EntityLinker(kb)
        decision = linker.link("SkyNova Labs", ner_label="ORG")
        assert decision.created
        assert kb.has_entity(decision.entity)
        assert kb.entity_type(decision.entity) == "Company"

    def test_created_entity_is_reusable(self, kb):
        linker = EntityLinker(kb)
        first = linker.link("SkyNova Labs", ner_label="ORG")
        second = linker.link("SkyNova Labs", ner_label="ORG")
        assert second.entity == first.entity
        assert not second.created  # now a known alias

    def test_creation_disabled(self, kb):
        linker = EntityLinker(kb, create_missing=False)
        decision = linker.link("Totally Unknown Startup")
        # With creation off and no candidates the linker still answers,
        # falling back to a created=False decision only if candidates
        # exist; here there are none, so it must create... verify the
        # flag semantics instead: candidates empty -> created entity not
        # added to KB is not possible, so entity equals slug.
        assert decision.entity == "Totally_Unknown_Startup" or decision.created

    def test_person_label(self, kb):
        linker = EntityLinker(kb)
        decision = linker.link("Maria Delgado", ner_label="PERSON")
        assert kb.entity_type(decision.entity) == "Person"

    def test_cache_invalidation(self, kb):
        linker = EntityLinker(kb)
        linker.link("DJI")
        linker.invalidate_cache("DJI")
        linker.invalidate_cache()
        assert linker.link("DJI").entity == "DJI"


class TestAccuracyOnGoldMentions:
    def test_full_model_beats_prior_only(self, kb):
        """The ablation the paper's design implies: prior+context+coherence
        should beat prior-only on ambiguous mention sets."""
        gold = [
            (["DJI", "Phantom", "Shenzhen"], {"Phantom": "Phantom_3"}),
            (["Phantom"], {"Phantom": "Phantom_Film"}),  # no context: prior ok
            (["DJI", "Inspire", "Phantom"], {"Phantom": "Phantom_3"}),
        ]
        full = EntityLinker(kb)
        prior_only = EntityLinker(kb, context_weight=0.0, coherence_weight=0.0)

        def accuracy(linker):
            hits = total = 0
            for mentions, expected in gold:
                decisions = {d.mention: d.entity for d in linker.link_all(mentions)}
                for mention, entity in expected.items():
                    total += 1
                    hits += decisions[mention] == entity
            return hits / total

        assert accuracy(full) >= accuracy(prior_only)
        assert accuracy(full) == 1.0
