"""Predicate mapping (distant supervision) and full triple mapper tests."""

import pytest

from repro.kb import build_drone_kb
from repro.linking import PredicateMapper, TripleMapper
from repro.linking.predicate_mapping import normalize_relation
from repro.nlp import NlpPipeline
from repro.nlp.pipeline import RawTriple


@pytest.fixture
def kb():
    return build_drone_kb()


class TestNormalizeRelation:
    def test_lemmatises_verb(self):
        assert normalize_relation("raised from") == "raise from"
        assert normalize_relation("acquired") == "acquire"

    def test_srl_relation_passthrough(self):
        assert normalize_relation("raise:A2-SOURCE") == "raise:a2-source"
        assert normalize_relation("acquired:AM-PRICE") == "acquire:am-price"

    def test_empty(self):
        assert normalize_relation("") == ""


class TestSeedMapping:
    def test_acquire_maps(self, kb):
        mapper = PredicateMapper(kb)
        result = mapper.map_relation("acquired", "Company", "Company")
        assert result.predicate == "acquired"

    def test_srl_source_role_maps_to_fundedby(self, kb):
        mapper = PredicateMapper(kb)
        result = mapper.map_relation("raise:a2-source", "Company", "Company")
        assert result.predicate == "fundedBy"

    def test_signature_filters(self, kb):
        mapper = PredicateMapper(kb)
        # "acquired" demands Company x Company; a City object must not map.
        assert mapper.map_relation("acquired", "Company", "City") is None

    def test_unknown_relation(self, kb):
        mapper = PredicateMapper(kb)
        assert mapper.map_relation("hovered above") is None

    def test_use_maps_to_uses_technology(self, kb):
        mapper = PredicateMapper(kb)
        result = mapper.map_relation("uses", "Company", "Technology")
        assert result.predicate == "usesTechnology"

    def test_coverage_metric(self, kb):
        mapper = PredicateMapper(kb)
        coverage = mapper.coverage(["acquired", "hovered above", "launch"])
        assert coverage == pytest.approx(2 / 3)


class TestDistantSupervisionExpansion:
    def test_expansion_adopts_precise_pattern(self, kb):
        mapper = PredicateMapper(kb, min_pattern_count=3, min_pattern_precision=0.6)
        # "snapped up" is not a seed; create raw triples whose pairs are
        # known acquisitions in the KB.
        kb.add_fact("Google", "acquired", "Kiva_Systems")  # extra alignment
        raws = [
            RawTriple("Amazon", "snapped up", "Kiva Systems", confidence=0.8),
            RawTriple("Amazon", "snapped up", "Kiva Systems", confidence=0.8),
            RawTriple("Google", "snapped up", "Kiva Systems", confidence=0.8),
        ]
        entity_of = {"Amazon": "Amazon", "Kiva Systems": "Kiva_Systems",
                     "Google": "Google"}
        adopted = mapper.expand_from_corpus(raws, entity_of)
        assert "snap up" in [p for ps in adopted.values() for p in ps] or \
               "snapped up" in [p for ps in adopted.values() for p in ps]
        assert mapper.map_relation("snapped up", "Company", "Company") is not None

    def test_expansion_respects_min_count(self, kb):
        mapper = PredicateMapper(kb, min_pattern_count=5)
        raws = [RawTriple("Amazon", "gobbled", "Kiva Systems", confidence=0.8)]
        adopted = mapper.expand_from_corpus(
            raws, {"Amazon": "Amazon", "Kiva Systems": "Kiva_Systems"}
        )
        assert adopted == {}

    def test_expansion_ignores_unaligned(self, kb):
        mapper = PredicateMapper(kb, min_pattern_count=1)
        raws = [RawTriple("Nobody", "vaporized", "Nothing", confidence=0.8)] * 4
        assert mapper.expand_from_corpus(raws, {}) == {}


class TestTripleMapper:
    def make_raw(self, s, r, o, s_label="ORG", o_label=None, negated=False,
                 confidence=0.8):
        return RawTriple(
            subject=s, relation=r, object=o, confidence=confidence,
            subject_label=s_label, object_label=o_label, negated=negated,
        )

    def test_maps_acquisition(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("Amazon", "acquired", "Kiva Systems", o_label="ORG")]
        )
        assert not rejected
        triple = mapped[0]
        assert triple.subject == "Amazon"
        assert triple.predicate == "acquired"
        assert triple.object == "Kiva_Systems"
        assert 0 < triple.prior_confidence() <= 1

    def test_money_object_stays_literal(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("DJI", "raised", "$75 million", o_label="MONEY")]
        )
        assert not rejected
        assert mapped[0].predicate == "raisedFunding"
        assert mapped[0].object == "$75 million"
        assert mapped[0].object_is_literal

    def test_negated_rejected(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("Amazon", "acquired", "Kiva Systems",
                           o_label="ORG", negated=True)]
        )
        assert not mapped
        assert rejected[0].reason == "negated"

    def test_unmapped_relation_rejected(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("Amazon", "pondered about", "Kiva Systems", o_label="ORG")]
        )
        assert rejected[0].reason == "unmapped-relation"

    def test_literal_object_for_entity_predicate_rejected(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("Amazon", "acquired", "$775 million", o_label="MONEY")]
        )
        assert rejected and rejected[0].reason == "signature"

    def test_self_loop_rejected(self, kb):
        mapper = TripleMapper(kb)
        mapped, rejected = mapper.map_document(
            [self.make_raw("DJI", "acquired", "Da-Jiang Innovations", o_label="ORG")]
        )
        assert rejected and rejected[0].reason == "self-loop"

    def test_new_entity_created_for_unknown_org(self, kb):
        mapper = TripleMapper(kb)
        mapped, _ = mapper.map_document(
            [self.make_raw("SkyLift Cargo", "partnered with", "DJI", o_label="ORG")]
        )
        assert mapped
        assert kb.has_entity(mapped[0].subject)
        assert mapper.stats.created_entities >= 1

    def test_stats_counted(self, kb):
        mapper = TripleMapper(kb)
        mapper.map_document([
            self.make_raw("Amazon", "acquired", "Kiva Systems", o_label="ORG"),
            self.make_raw("Amazon", "hovered", "Kiva Systems", o_label="ORG"),
        ])
        assert mapper.stats.mapped == 1
        assert mapper.stats.rejected["unmapped-relation"] == 1
        assert mapper.stats.total() == 2

    def test_end_to_end_with_nlp(self, kb):
        """Sentence -> raw triples -> mapped canonical triples."""
        pipeline = NlpPipeline(gazetteer=kb.gazetteer())
        raws = pipeline.extract_triples(
            "Amazon acquired Kiva Systems for $775 million in 2012."
        )
        mapper = TripleMapper(kb)
        mapped, _ = mapper.map_document(raws, context_words=["acquisition"])
        keys = {(m.subject, m.predicate, m.object) for m in mapped}
        assert ("Amazon", "acquired", "Kiva_Systems") in keys
        assert any(p == "acquiredFor" for _, p, _ in keys)
