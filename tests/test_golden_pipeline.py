"""End-to-end golden regression test.

Ingests a fixed seeded corpus (40 articles, seed 11) in a subprocess
with ``PYTHONHASHSEED=0`` — hash iteration order can break ties in
collective linking and beam search, so the pipeline is only bit-stable
under a pinned hash seed — and compares the resulting metrics against
pinned golden values: accepted-triple counts, trending output, and one
explanatory path answer.

If an index/batching/caching refactor changes any of these numbers, this
test fails loudly instead of letting results drift silently.  When a
change is *intended* (e.g. an extraction improvement), regenerate with::

    PYTHONHASHSEED=0 PYTHONPATH=src python tests/golden_driver.py

and update ``GOLDEN`` below, explaining the drift in the commit message.

The driver also runs the same query set through a cache-enabled and a
cache-disabled engine twice; ``cache_consistent`` pins that enabling the
result cache does not change any answer.
"""

import json
import os
import subprocess
import sys

import pytest

# Regenerated for ISSUE 2: the driver now goes through NousService, so
# the corpus takes the ingest_batch path (one collective linking pass).
# accepted/raw/fact counts and the trending output are identical to the
# sequential seed values; num_entities moved 136 -> 138 because
# collective linking mints two additional zero-fact mention entities,
# which in turn shifts the LDA topic fit and the (same-path) coherence
# score 0.208112 -> 0.411789.
GOLDEN = {
    "accepted_total": 83,
    "rejected_confidence_total": 0,
    "raw_triples_total": 228,
    "num_facts": 194,
    "num_entities": 138,
    "window_edges": 83,
    "closed_frequent_count": 25,
    "top_patterns": [
        "(?0:Company)-[acquired]->(?1:Company) (?0:Company)-[acquiredFor]->(?2:Thing)|4",
        "(?0:Company)-[acquired]->(?1:Company) (?0:Company)-[raisedFunding]->(?2:Thing)|2",
        "(?0:Company)-[acquired]->(?1:Company) (?1:Company)-[acquired]->(?2:Company)|3",
        "(?0:Company)-[acquired]->(?1:Company) (?1:Company)-[fundedBy]->(?2:Company)|2",
        "(?0:Company)-[acquired]->(?1:Company) (?1:Company)-[raisedFunding]->(?2:Thing)|3",
    ],
    "top_path_nodes": ["Windermere", "AirTech_2", "DJI", "Drone_Industry"],
    "top_path_coherence": 0.411789,
    "cache_consistent": True,
}

# ISSUE 4: the same corpus through a 3-shard ShardedNousService — pins
# document routing, every per-query-class merge, and the composite-
# version merged-result cache.  Totals that must be partition-invariant
# (accepted documents, merged fact count, window size) equal the
# monolith's; num_entities counts per-shard minted duplicates.
# ISSUE 9: trending moved from support-table summation to the
# distributed embedding enumeration, so the merged closed-frequent
# output now equals the monolith's exactly (pre-PR-9 the summation pin
# was 26 patterns with drifted supports — embeddings spanning shard
# boundaries were invisible and per-shard MNI minima summed instead of
# unioning node images).
GOLDEN_SHARDED = {
    "accepted_total": 83,
    "documents_routed": [9, 17, 14],
    "num_facts": 194,
    "num_entities": 155,
    "window_edges": 83,
    "closed_frequent_count": GOLDEN["closed_frequent_count"],
    "top_patterns": GOLDEN["top_patterns"],
    "top_path_nodes": ["Windermere", "AirTech_2", "DJI", "Drone_Industry"],
    # Equals the monolith's coherence for the same route: the
    # distributed cross-shard path search fits topics over the union
    # document set and searches the merged region, so the hybrid merge
    # keeps its monolith-exact score over the per-shard approximations
    # (which fitted topics over partial entity sets: 0.473563 pre-PR-7).
    "top_path_coherence": GOLDEN["top_path_coherence"],
    "cut_edges": 25,
    "cache_consistent": True,
}


@pytest.fixture(scope="module")
def golden_metrics():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    driver = os.path.join(repo_root, "tests", "golden_driver.py")
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, driver],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, f"driver failed:\n{proc.stderr}"
    return json.loads(proc.stdout)


class TestGoldenPipeline:
    def test_accepted_triple_counts_pinned(self, golden_metrics):
        for key in (
            "accepted_total",
            "rejected_confidence_total",
            "raw_triples_total",
            "num_facts",
            "num_entities",
        ):
            assert golden_metrics[key] == GOLDEN[key], (
                f"{key}: got {golden_metrics[key]}, pinned {GOLDEN[key]}"
            )

    def test_trending_output_pinned(self, golden_metrics):
        assert golden_metrics["window_edges"] == GOLDEN["window_edges"]
        assert (
            golden_metrics["closed_frequent_count"]
            == GOLDEN["closed_frequent_count"]
        )
        assert golden_metrics["top_patterns"] == GOLDEN["top_patterns"]

    def test_explanatory_path_answer_pinned(self, golden_metrics):
        assert golden_metrics["top_path_nodes"] == GOLDEN["top_path_nodes"]
        assert (
            golden_metrics["top_path_coherence"]
            == pytest.approx(GOLDEN["top_path_coherence"], abs=1e-6)
        )

    def test_cache_does_not_change_results(self, golden_metrics):
        assert golden_metrics["cache_consistent"] is True
        assert golden_metrics["cache_hits"] > 0

    def test_queue_drained_in_one_deterministic_batch(self, golden_metrics):
        # The driver pins the service path: whole corpus, one drain.
        assert golden_metrics["batches_drained"] == 1

    def test_cold_start_matches_uninterrupted_run(self, golden_metrics):
        # ISSUE 6: half the corpus, snapshot, restart from disk, rest of
        # the corpus — byte-identical to a service that never stopped.
        assert golden_metrics["cold_start_consistent"] is True


class TestGoldenShardedPipeline:
    """The N=3 scatter-gather pipeline, pinned output by output."""

    def test_routing_and_totals_pinned(self, golden_metrics):
        sharded = golden_metrics["sharded"]
        for key in ("accepted_total", "documents_routed", "num_facts",
                    "num_entities", "window_edges", "cut_edges"):
            assert sharded[key] == GOLDEN_SHARDED[key], (
                f"{key}: got {sharded[key]}, pinned {GOLDEN_SHARDED[key]}"
            )

    def test_partition_invariant_totals_match_monolith(self, golden_metrics):
        # Documents accepted, merged fact count and total window size
        # must not depend on how the corpus was partitioned.
        sharded = golden_metrics["sharded"]
        assert sharded["accepted_total"] == golden_metrics["accepted_total"]
        assert sharded["num_facts"] == golden_metrics["num_facts"]
        assert sharded["window_edges"] == golden_metrics["window_edges"]

    def test_merged_trending_pinned(self, golden_metrics):
        sharded = golden_metrics["sharded"]
        assert (
            sharded["closed_frequent_count"]
            == GOLDEN_SHARDED["closed_frequent_count"]
        )
        assert sharded["top_patterns"] == GOLDEN_SHARDED["top_patterns"]

    def test_merged_path_answer_pinned(self, golden_metrics):
        sharded = golden_metrics["sharded"]
        assert sharded["top_path_nodes"] == GOLDEN_SHARDED["top_path_nodes"]
        assert sharded["top_path_coherence"] == pytest.approx(
            GOLDEN_SHARDED["top_path_coherence"], abs=1e-6
        )

    def test_merged_cache_consistent(self, golden_metrics):
        sharded = golden_metrics["sharded"]
        assert sharded["cache_consistent"] is True
        assert sharded["cache_hits"] > 0
