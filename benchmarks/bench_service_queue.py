"""SERVICE QUEUE: async micro-batched ingestion vs the raw hot paths.

ISSUE 2's acceptance gates, on the synthetic world corpus:

1. **Queue overhead** — submitting every document individually through
   ``NousService.submit`` (background drainer, micro-batches of
   ``max_batch``) must land within ``QUEUE_OVERHEAD_GATE`` (default
   1.3x) of calling ``Nous.ingest_batch`` directly on the whole corpus.
2. **Amortisation preserved** — the queue must stay at least
   ``SPEEDUP_GATE`` (default 2x) faster than the seed per-document
   ``ingest`` loop: single-document callers transparently ride the
   batched path.

Result equivalence (accepted facts, KB size, window content) is
asserted alongside the timings.
"""

from __future__ import annotations

import os
import time

from conftest import record_bench

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    NousService,
    ServiceConfig,
    build_drone_kb,
    generate_corpus,
)

QUEUE_SEED = 7
N_ARTICLES = 120
# Shared CI runners are noisy; the CI smoke step relaxes both gates via
# env vars while result-equivalence checks stay strict.
SPEEDUP_GATE = float(os.environ.get("BENCH_SPEEDUP_GATE", "2.0"))
QUEUE_OVERHEAD_GATE = float(os.environ.get("BENCH_QUEUE_OVERHEAD_GATE", "1.3"))
CONFIG = dict(
    window_size=100,
    min_support=2,
    lda_iterations=10,
    retrain_every=40,
    seed=QUEUE_SEED,
)
# 80 splits the 120-doc corpus into two genuine micro-batches while the
# deferred busy-period retrain keeps the overhead comfortably in-gate.
SERVICE_CONFIG = ServiceConfig(max_batch=80, max_delay=0.01)


def _fresh_corpus():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=QUEUE_SEED)
    )
    return kb, articles


def _timed_sequential():
    kb, articles = _fresh_corpus()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    t0 = time.perf_counter()
    results = nous.ingest_corpus(articles)
    return time.perf_counter() - t0, nous, results


def _timed_direct_batch():
    kb, articles = _fresh_corpus()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    t0 = time.perf_counter()
    results = nous.ingest_batch(articles)
    return time.perf_counter() - t0, nous, results


def _timed_queue():
    kb, articles = _fresh_corpus()
    service = NousService(
        kb=kb, config=NousConfig(**CONFIG), service_config=SERVICE_CONFIG
    )
    try:
        t0 = time.perf_counter()
        tickets = service.submit_many(articles)
        service.flush(timeout=300.0)
        elapsed = time.perf_counter() - t0
        envelopes = [t.result(timeout=0) for t in tickets]
    finally:
        service.close()
    return elapsed, service, envelopes


def test_queue_within_gate_of_direct_batch_and_faster_than_seed():
    # Best-of-2 fresh runs per path: ingestion mutates state, so each
    # run needs its own system; the min damps scheduler noise.
    runs_seq = [_timed_sequential() for _ in range(2)]
    runs_direct = [_timed_direct_batch() for _ in range(2)]
    runs_queue = [_timed_queue() for _ in range(2)]
    t_seq, nous_seq, results_seq = min(runs_seq, key=lambda r: r[0])
    t_direct, nous_direct, results_direct = min(runs_direct, key=lambda r: r[0])
    t_queue, service, envelopes = min(runs_queue, key=lambda r: r[0])

    overhead = t_queue / t_direct
    speedup = t_seq / t_queue
    print(
        f"\nqueue ingestion ({N_ARTICLES} articles): "
        f"sequential {t_seq * 1000:.0f} ms  direct-batch {t_direct * 1000:.0f} ms  "
        f"queue {t_queue * 1000:.0f} ms  "
        f"(overhead vs batch {overhead:.2f}x, speedup vs seq {speedup:.1f}x, "
        f"{service.batches_drained} drains)"
    )
    record_bench(
        "service_queue",
        articles=N_ARTICLES,
        sequential_s=round(t_seq, 4),
        direct_batch_s=round(t_direct, 4),
        queue_s=round(t_queue, 4),
        overhead_vs_batch=round(overhead, 3),
        speedup_vs_sequential=round(speedup, 3),
        batches_drained=service.batches_drained,
        overhead_gate=QUEUE_OVERHEAD_GATE,
        speedup_gate=SPEEDUP_GATE,
    )

    # Equivalence of outcomes, not just speed.
    assert all(env.ok for env in envelopes)
    assert len(envelopes) == len(results_direct) == len(results_seq)
    assert (
        sum(env.payload["raw_triples"] for env in envelopes)
        == sum(r.raw_triples for r in results_direct)
    )
    accepted_queue = sum(env.payload["accepted"] for env in envelopes)
    accepted_direct = sum(r.accepted for r in results_direct)
    accepted_seq = sum(r.accepted for r in results_seq)
    # Micro-batch retrain timing may shift a handful of borderline
    # confidences, exactly like direct batching vs the sequential loop.
    assert abs(accepted_queue - accepted_direct) <= max(3, accepted_direct // 20)
    assert abs(accepted_queue - accepted_seq) <= max(3, accepted_seq // 20)
    assert (
        abs(service.nous.kb.num_facts - nous_direct.kb.num_facts)
        <= max(3, nous_direct.kb.num_facts // 20)
    )
    assert service.nous.dynamic.window.window_size > 0
    assert service.nous.dynamic.miner.window_size > 0
    # Micro-batching actually happened (not one-doc-at-a-time drains).
    assert service.batches_drained < N_ARTICLES / 4

    assert overhead <= QUEUE_OVERHEAD_GATE, (
        f"queue {overhead:.2f}x slower than direct ingest_batch "
        f"(gate {QUEUE_OVERHEAD_GATE}x)"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"queue only {speedup:.2f}x faster than per-document ingest "
        f"(gate {SPEEDUP_GATE}x)"
    )


def test_single_document_latency_bounded_by_max_delay():
    kb, articles = _fresh_corpus()
    service = NousService(
        kb=kb,
        config=NousConfig(**CONFIG),
        service_config=ServiceConfig(max_batch=64, max_delay=0.02),
    )
    try:
        t0 = time.perf_counter()
        response = service.ingest(articles[0], timeout=30.0)
        latency = time.perf_counter() - t0
    finally:
        service.close()
    assert response.ok
    print(f"\nsingle-document queue latency: {latency * 1000:.0f} ms")
    record_bench(
        "service_queue_latency", single_doc_latency_s=round(latency, 4)
    )
    # Generous bound: batching delay + one tiny drain; catches
    # regressions where a lone document waits for a batch that never
    # fills (or a forgotten flush path).
    assert latency < 5.0
