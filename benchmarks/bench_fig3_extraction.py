"""FIG3: dated triples extracted from WSJ-style sentences.

Figure 3 of the paper is a table of (date, subject, relation, object)
rows produced by the extraction stage.  This bench regenerates such rows
from the paper's own example sentences, measures extraction throughput,
and — because the synthetic corpus has gold triples — reports the
precision/recall the demo paper never quantified.
"""

from __future__ import annotations

import pytest

from repro import CorpusConfig, build_drone_kb, generate_corpus
from repro.nlp import NlpPipeline, parse_date

PAPER_SENTENCES = [
    ("2015-05-06", "DJI raised $75 million from Accel Partners in May 2015."),
    ("2012-03-19", "Amazon acquired Kiva Systems for $775 million in 2012."),
    ("2015-02-26", "3D Robotics raised $50 million in February 2015."),
    ("2016-06-07", "Windermere uses drones to capture aerial photos of real estate listings."),
    ("2016-06-21", "The FAA approved new rules for commercial drones in June 2016."),
]


@pytest.fixture(scope="module")
def pipeline():
    kb = build_drone_kb()
    return NlpPipeline(gazetteer=kb.gazetteer())


def test_figure3_rows(pipeline):
    """Regenerate Figure 3: dated triple rows from news sentences."""
    print("\ndate        | subject | relation | object")
    rows = 0
    for date_text, sentence in PAPER_SENTENCES:
        triples = pipeline.extract_triples(
            sentence, doc_date=parse_date(date_text)
        )
        for t in triples:
            print(f"{str(t.date):11s} | {t.subject} | {t.relation} | {t.object}")
            rows += 1
            assert t.date is not None
    assert rows >= len(PAPER_SENTENCES)  # at least one triple per sentence


def test_extraction_recall_on_gold(pipeline):
    """Measured recall of gold subject-object pairs on clean WSJ articles."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=60, seed=13, crawl_fraction=0.0)
    )
    gold_pipeline = NlpPipeline(gazetteer=kb.gazetteer())
    hits = total = 0
    for article in articles:
        triples = gold_pipeline.extract_triples(
            article.text, doc_date=article.date
        )
        pairs = {(t.subject.lower(), t.object.lower()) for t in triples}
        for s, _p, o in article.gold_triples:
            total += 1
            s_name = s.replace("_", " ").lower()
            o_name = o.replace("_", " ").lower()
            if any(s_name in ps and (o_name in po or po in o_name)
                   for ps, po in pairs if po):
                hits += 1
    recall = hits / total
    print(f"\ngold-pair recall on clean articles: {recall:.2%} ({hits}/{total})")
    assert recall > 0.45


def test_crawl_noise_hurts_extraction(pipeline):
    """Shape: noisy crawl articles yield lower-confidence extractions."""
    kb = build_drone_kb()
    clean = generate_corpus(kb, CorpusConfig(n_articles=40, seed=3, crawl_fraction=0.0))
    kb2 = build_drone_kb()
    noisy = generate_corpus(
        kb2, CorpusConfig(n_articles=40, seed=3, crawl_fraction=1.0, crawl_noise=1.0)
    )
    def mean_conf(articles, gazetteer):
        pipe = NlpPipeline(gazetteer=gazetteer)
        confs = [
            t.confidence
            for a in articles
            for t in pipe.extract_triples(a.text, doc_date=a.date)
        ]
        return sum(confs) / len(confs), len(confs)

    clean_conf, n_clean = mean_conf(clean, kb.gazetteer())
    noisy_conf, n_noisy = mean_conf(noisy, kb2.gazetteer())
    print(f"\nclean confidence {clean_conf:.3f} ({n_clean} triples) "
          f"vs crawl {noisy_conf:.3f} ({n_noisy} triples)")
    assert clean_conf >= noisy_conf - 0.02


def test_benchmark_extraction_throughput(benchmark, pipeline):
    """Benchmark: sentences/second through the full NLP stack."""
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=30, seed=5))
    texts = [a.text for a in articles]

    def extract_all():
        return sum(len(pipeline.extract_triples(t)) for t in texts)

    total = benchmark(extract_all)
    assert total > 0
