"""DISTRIBUTED COMPUTE: boundary exchange vs shipping the partitions.

The superstep protocol's reason to exist, priced in bytes on the wire.
A coherent cross-shard path search runs as BSP frontier expansion: one
``expand`` round per hop, each shard answering with only the *owned*
edges incident to the frontier, so every merged-graph edge crosses the
wire at most once per search.  The alternative — what a router without
the protocol would do — is ``ship_everything``: pull every shard's full
partition and rebuild the merged graph centrally, paying for the
replicated curated base once **per shard**.

Gates (both measured through the same :class:`ComputeStats` byte
accounting the ``/v1/stats`` counters use):

1. The BSP search moves fewer bytes than ship-everything at N=2 *and*
   N=4.
2. The margin **widens** from N=2 to N=4: replication cost scales with
   the cluster, boundary exchange does not.

The run also reports the distributed PageRank job's bytes at both
widths (no gate — analytics rounds ship ``{vertex: score}`` maps whose
size tracks iteration count, not partition size).
"""

from __future__ import annotations

import os

from conftest import record_bench

from repro import NousConfig, ServiceConfig, ShardedNousService
from repro.compute import (
    ComputeCoordinator,
    ComputeStats,
    DistributedPathSearch,
)

N_SMALL = 2
N_LARGE = 4
N_NODES = 120
SOURCE, TARGET = "Node_A", "Node_D"
# Shared CI runners are noisy, but bytes-on-wire is deterministic; the
# env override exists only for ad-hoc experimentation.
MARGIN_GATE = float(os.environ.get("BENCH_COMPUTE_MARGIN_GATE", "1.0"))

CONFIG = NousConfig(
    window_size=10_000, min_support=2, lda_iterations=10,
    retrain_every=0, seed=7, max_hops=4, beam_width=8,
)

_DIGIT_NAMES = "ABCDEFGHIJ"


def _node(i: int) -> str:
    # Letter names keep the LDA tokenizer fed (digit-bearing tokens are
    # dropped): 0 -> Node_A, 17 -> Node_B_H, ...
    return "Node_" + "_".join(_DIGIT_NAMES[int(d)] for d in str(i))


def _facts():
    """A deterministic ring + chord graph over ``N_NODES`` entities:
    distinct subjects scatter the edges across shards, the chords give
    the frontier real branching to expand."""
    facts = []
    for i in range(N_NODES):
        facts.append((_node(i), "linksTo", _node((i + 1) % N_NODES)))
        facts.append((_node(i), "jumpsTo", _node((i * 7 + 3) % N_NODES)))
    return facts


def _measure(num_shards):
    cluster = ShardedNousService(
        num_shards=num_shards,
        config=CONFIG,
        service_config=ServiceConfig(auto_start=False),
        kb_spec="drone",  # replicated curated base: the shipping cost
    )
    try:
        assert cluster.ingest_facts(_facts(), date="2015-06-01").ok

        # Private stats per measurement: the cluster's own shared
        # counters must not leak unrelated traffic into the comparison.
        bsp_stats = ComputeStats()
        search = DistributedPathSearch(
            ComputeCoordinator(cluster.shards, stats=bsp_stats),
            n_topics=CONFIG.n_topics,
            lda_iterations=CONFIG.lda_iterations,
            seed=CONFIG.seed,
            max_hops=CONFIG.max_hops,
            beam_width=CONFIG.beam_width,
        )
        paths = search.top_k_paths(SOURCE, TARGET, k=3)
        bsp = bsp_stats.to_dict()

        ship_stats = ComputeStats()
        ComputeCoordinator(cluster.shards, stats=ship_stats).ship_everything()
        ship = ship_stats.to_dict()

        pr_stats = ComputeStats()
        ComputeCoordinator(cluster.shards, stats=pr_stats).pagerank()
        pr = pr_stats.to_dict()
    finally:
        cluster.close()
    assert paths, "bench fixture lost its route"
    return {
        "shards": num_shards,
        "bsp_bytes": bsp["cross_shard_bytes"],
        "bsp_supersteps": bsp["supersteps"],
        "bsp_messages": bsp["messages"],
        "ship_bytes": ship["cross_shard_bytes"],
        "pagerank_bytes": pr["cross_shard_bytes"],
        "pagerank_supersteps": pr["supersteps"],
        "margin": ship["cross_shard_bytes"] / bsp["cross_shard_bytes"],
    }


def test_boundary_exchange_beats_shipping_everything():
    small = _measure(N_SMALL)
    large = _measure(N_LARGE)

    for run in (small, large):
        print(
            f"\nN={run['shards']}: path-search BSP "
            f"{run['bsp_bytes']:,} bytes over {run['bsp_supersteps']} "
            f"supersteps ({run['bsp_messages']} boundary messages) vs "
            f"ship-everything {run['ship_bytes']:,} bytes "
            f"-> margin {run['margin']:.2f}x"
        )
        print(
            f"      pagerank job: {run['pagerank_bytes']:,} bytes over "
            f"{run['pagerank_supersteps']} supersteps"
        )
    widening = large["margin"] / small["margin"]
    print(f"margin widening N={N_SMALL} -> N={N_LARGE}: {widening:.3f}x")

    record_bench(
        "compute",
        nodes=N_NODES,
        facts=2 * N_NODES,
        small=small,
        large=large,
        margin_widening=round(widening, 4),
    )

    # Gate 1: the protocol beats shipping the partitions at both widths.
    assert small["bsp_bytes"] < small["ship_bytes"], small
    assert large["bsp_bytes"] < large["ship_bytes"], large
    # Gate 2: the margin widens as the cluster grows — replication cost
    # scales with N, boundary exchange does not.
    assert large["margin"] > small["margin"] * MARGIN_GATE, (
        f"margin did not widen: N={N_SMALL} {small['margin']:.2f}x vs "
        f"N={N_LARGE} {large['margin']:.2f}x"
    )


if __name__ == "__main__":
    test_boundary_exchange_beats_shipping_everything()
