"""ABL-LINK (§3.3 design choice): AIDA-variant disambiguation ablation.

The paper chose AIDA (prior + context + coherence) "due to its high
accuracy".  This bench constructs ambiguous gold mention sets over the
drone KB and compares disambiguation accuracy of the full model against
prior-only and context-only ablations; latency of collective linking is
benchmarked.
"""

from __future__ import annotations

import pytest

from repro.kb import build_drone_kb
from repro.linking import EntityLinker


@pytest.fixture(scope="module")
def ambiguous_kb():
    kb = build_drone_kb()
    # Ambiguity 1: "Phantom" — DJI drone vs a film (film more popular).
    kb.add_entity("Phantom_Film", "Artifact", aliases=["Phantom"],
                  description="American adventure film about a masked hero "
                              "starring actors and a dramatic plot.")
    kb.aliases.add("Phantom", "Phantom_Film", count=3)
    # Ambiguity 2: "Solo" — 3DR drone vs a movie character.
    kb.add_entity("Solo_Character", "Artifact", aliases=["Solo"],
                  description="Fictional space smuggler from a film saga.")
    kb.aliases.add("Solo", "Solo_Character", count=3)
    # Ambiguity 3: "Inspire" — DJI drone vs a generic verb-noun brand.
    kb.add_entity("Inspire_Magazine", "Artifact", aliases=["Inspire"],
                  description="A lifestyle publication about creativity.")
    kb.aliases.add("Inspire", "Inspire_Magazine", count=2)
    return kb


GOLD_CASES = [
    # (mentions in one document, context words, {mention: gold entity})
    (["DJI", "Phantom", "Shenzhen"], "drone camera quadcopter".split(),
     {"Phantom": "Phantom_3"}),
    (["3D Robotics", "Solo"], "drone autopilot consumer".split(),
     {"Solo": "Solo_Drone"}),
    (["DJI", "Inspire"], "professional drone camera".split(),
     {"Inspire": "Inspire_1"}),
    (["Phantom"], [], {"Phantom": "Phantom_Film"}),   # bare prior wins
    (["Solo"], [], {"Solo": "Solo_Character"}),
    (["Amazon", "Kiva Systems"], "acquisition warehouse robots".split(),
     {"Amazon": "Amazon", "Kiva Systems": "Kiva_Systems"}),
]


def accuracy(linker: EntityLinker) -> float:
    hits = total = 0
    for mentions, context, gold in GOLD_CASES:
        decisions = {
            d.mention: d.entity
            for d in linker.link_all(mentions, context_words=context)
        }
        for mention, entity in gold.items():
            total += 1
            hits += decisions[mention] == entity
    return hits / total


def test_ablation_accuracy(ambiguous_kb):
    full = EntityLinker(ambiguous_kb)
    prior_only = EntityLinker(ambiguous_kb, context_weight=0.0, coherence_weight=0.0)
    context_only = EntityLinker(ambiguous_kb, prior_weight=0.0, coherence_weight=0.0)
    no_coherence = EntityLinker(ambiguous_kb, coherence_weight=0.0)

    scores = {
        "full (prior+context+coherence)": accuracy(full),
        "no coherence": accuracy(no_coherence),
        "prior only": accuracy(prior_only),
        "context only": accuracy(context_only),
    }
    print("\ndisambiguation accuracy:")
    for name, score in scores.items():
        print(f"  {name:32s} {score:.2%}")
    assert scores["full (prior+context+coherence)"] >= scores["prior only"]
    assert scores["full (prior+context+coherence)"] >= scores["context only"]
    assert scores["full (prior+context+coherence)"] >= 0.8


def test_collective_beats_independent(ambiguous_kb):
    """Linking a document's mentions together must not hurt, and should
    fix ambiguous mentions with co-mention evidence."""
    linker = EntityLinker(ambiguous_kb)
    together = {
        d.mention: d.entity
        for d in linker.link_all(["DJI", "Phantom", "Shenzhen"])
    }
    assert together["Phantom"] == "Phantom_3"
    alone = linker.link("Phantom")
    assert alone.entity == "Phantom_Film"  # popularity wins without context


def test_benchmark_collective_linking(benchmark, ambiguous_kb):
    linker = EntityLinker(ambiguous_kb)
    mentions = ["DJI", "Phantom", "Shenzhen", "Amazon", "Kiva Systems"]
    decisions = benchmark(lambda: linker.link_all(mentions))
    assert len(decisions) == len(mentions)
