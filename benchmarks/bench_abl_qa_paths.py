"""ABL-QA (§3.6 design choice): coherence-guided search vs baselines.

The paper augments path ranking with an LDA-based coherence metric and
a per-hop look-ahead.  This bench plants coherent and incoherent routes
in a topic-labelled graph and compares: answer coherence, and search
cost (edges considered) of guided beam search vs BFS and exhaustive
enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import PropertyGraph
from repro.qa import CoherentPathSearch, bfs_path_ranker, unguided_top_k
from repro.qa.topics import TOPIC_PROP


def planted_graph(n_branches=25, depth=3, seed=3):
    """Source/target in topic A; one on-topic route; many off-topic
    branches that BFS/DFS must wade through."""
    rng = np.random.default_rng(seed)
    g = PropertyGraph()
    on = np.array([0.85, 0.1, 0.05])
    off = np.array([0.05, 0.85, 0.10])
    g.add_vertex("s", **{TOPIC_PROP: on})
    g.add_vertex("t", **{TOPIC_PROP: on})
    previous = "s"
    for i in range(depth - 1):
        node = f"on_{i}"
        g.add_vertex(node, **{TOPIC_PROP: on + rng.normal(0, 0.01, 3).clip(-0.04, 0.04)})
        g.add_edge(previous, node, "rel")
        previous = node
    g.add_edge(previous, "t", "rel")
    for b in range(n_branches):
        node = f"off_{b}"
        g.add_vertex(node, **{TOPIC_PROP: off})
        g.add_edge("s", node, "rel")
        for d in range(depth):
            child = f"off_{b}_{d}"
            g.add_vertex(child, **{TOPIC_PROP: off})
            g.add_edge(node, child, "rel")
            node = child
        # off-topic branches also reach the target (incoherent answers)
        g.add_edge(node, "t", "rel")
    return g


@pytest.fixture(scope="module")
def graph():
    return planted_graph()


def test_guided_answer_is_coherent(graph):
    search = CoherentPathSearch(graph, max_hops=4, beam_width=4)
    paths = search.top_k_paths("s", "t", k=3)
    assert paths
    best = paths[0]
    print(f"\nguided best: coherence={best.coherence:.3f} {best.describe()}")
    assert all(node.startswith(("s", "on_", "t")) for node in best.nodes), (
        "guided search must stay on the coherent route"
    )


def test_guided_cost_below_exhaustive(graph):
    search = CoherentPathSearch(graph, max_hops=4, beam_width=4)
    guided_paths = search.top_k_paths("s", "t", k=1)
    guided_cost = search.stats.edges_considered
    exhaustive_paths, ex_stats = unguided_top_k(graph, "s", "t", k=1, max_hops=4)
    bfs_paths, bfs_stats = bfs_path_ranker(graph, "s", "t", k=1, max_hops=4)
    print(f"\nedges considered: guided={guided_cost}, "
          f"bfs={bfs_stats.edges_considered}, "
          f"exhaustive={ex_stats.edges_considered}")
    assert guided_paths and exhaustive_paths and bfs_paths
    assert guided_cost < ex_stats.edges_considered / 2
    # and the guided answer is at least as coherent as BFS's
    assert guided_paths[0].coherence <= bfs_paths[0].coherence + 1e-9


def test_lookahead_ablation(graph):
    """Look-ahead should not hurt answer coherence."""
    with_la = CoherentPathSearch(graph, max_hops=4, beam_width=3, look_ahead=True)
    without_la = CoherentPathSearch(graph, max_hops=4, beam_width=3, look_ahead=False)
    p_with = with_la.top_k_paths("s", "t", k=1)
    p_without = without_la.top_k_paths("s", "t", k=1)
    assert p_with
    print(f"\ncoherence with look-ahead:    {p_with[0].coherence:.3f}")
    if p_without:
        print(f"coherence without look-ahead: {p_without[0].coherence:.3f}")
        assert p_with[0].coherence <= p_without[0].coherence + 0.05


def test_beam_width_sweep(graph):
    """Wider beams cost more but never return worse answers."""
    rows = []
    for width in (2, 4, 8, 16):
        search = CoherentPathSearch(graph, max_hops=4, beam_width=width)
        paths = search.top_k_paths("s", "t", k=1)
        rows.append((width, search.stats.edges_considered,
                     paths[0].coherence if paths else float("nan")))
    print("\nbeam width sweep (width, edges, coherence):")
    for row in rows:
        print(f"  {row[0]:3d} {row[1]:6d} {row[2]:.3f}")
    costs = [r[1] for r in rows]
    assert costs == sorted(costs), "cost should grow with beam width"


def test_benchmark_guided_search(benchmark, graph):
    search = CoherentPathSearch(graph, max_hops=4, beam_width=4)
    paths = benchmark(lambda: search.top_k_paths("s", "t", k=3))
    assert paths


def test_benchmark_exhaustive_search(benchmark, graph):
    paths_and_stats = benchmark(
        lambda: unguided_top_k(graph, "s", "t", k=3, max_hops=4)
    )
    assert paths_and_stats[0]
