"""HTTP GATEWAY: wire overhead and concurrent-load correctness.

ISSUE 3's acceptance gates:

1. **Latency** — p50 query latency through the gateway (keep-alive
   ``ClientSession``, result cache disabled so both sides recompute)
   must stay within ``HTTP_LATENCY_GATE`` (default 3x) of calling
   ``NousService.query`` in-process on the same query mix.
2. **Concurrency** — ``N_CLIENTS`` (8) threads of sustained ingest+query
   traffic, with standing-query subscribers streaming NDJSON the whole
   time: zero failed envelopes, zero dropped or interleaved frames
   (pinned by replaying every added/removed delta on top of the
   baseline row set and comparing against a fresh evaluation), and no
   deadlock of the micro-batch drainer.
"""

from __future__ import annotations

import os
import statistics
import threading
import time

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    ServiceConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.wire import decode_payload, delta_rows, row_key

from conftest import record_bench

SEED = 7
N_ARTICLES = 120
# Shared CI runners are noisy; CI relaxes via env var.
HTTP_LATENCY_GATE = float(os.environ.get("BENCH_HTTP_LATENCY_GATE", "3.0"))
N_CLIENTS = 8
ROUNDS = 5

# Known KB companies: relationship (path-search) queries dominate the
# mix so the p50 lands on a query whose compute, not transport, is the
# cost — exactly the regime a gateway must not distort.
_PAIRS = [
    ("DJI", "Amazon"), ("DJI", "GoPro"), ("Amazon", "Google"),
    ("GoPro", "Qualcomm"), ("DJI", "Google"), ("Amazon", "GoPro"),
    ("Qualcomm", "DJI"), ("Google", "GoPro"), ("Amazon", "Qualcomm"),
    ("DJI", "Intel"), ("Google", "Qualcomm"), ("Intel", "Amazon"),
]
QUERIES = (
    [f"how is {a} related to {b}" for a, b in _PAIRS]
    + [f"tell me about {e}" for e in ("DJI", "Amazon", "GoPro", "Google")]
    + [f"what's new with {e}" for e in ("DJI", "Amazon")]
    + ["match (?a:Company)-[acquired]->(?b:Company)"]
)
SUBSCRIBE_QUERY = "match (?a:Company)-[acquired]->(?b:Company)"


def _build_service() -> NousService:
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=N_ARTICLES, seed=SEED))
    generate_descriptions(kb, seed=SEED)
    service = NousService(
        kb=kb,
        config=NousConfig(window_size=300, seed=SEED),
        # Cache off: both measurement paths recompute every query, so
        # the ratio isolates transport + framing overhead.
        service_config=ServiceConfig(enable_cache=False, max_delay=0.01),
    )
    service.submit_many(articles)
    service.flush()
    return service


def _p50(samples):
    return statistics.median(samples)


def test_http_query_p50_within_gate_of_in_process():
    service = _build_service()
    try:
        with NousGateway(service) as gateway:
            # Warmup: topic graph, path guidance memos, JIT-ish caches.
            for text in QUERIES:
                assert service.query(text).ok

            in_process = []
            for text in QUERIES:
                t0 = time.perf_counter()
                assert service.query(text).ok
                in_process.append(time.perf_counter() - t0)

            with ClientSession(gateway.url, timeout=60.0) as client:
                over_http = []
                for text in QUERIES:
                    t0 = time.perf_counter()
                    assert client.query(text).ok
                    over_http.append(time.perf_counter() - t0)

        p50_local, p50_http = _p50(in_process), _p50(over_http)
        ratio = p50_http / p50_local
        print(
            f"\nquery p50 ({len(QUERIES)} distinct queries, cache off): "
            f"in-process {p50_local * 1000:.2f} ms  "
            f"http {p50_http * 1000:.2f} ms  ({ratio:.2f}x)"
        )
        record_bench(
            "http_gateway",
            p50_in_process_s=round(p50_local, 5),
            p50_http_s=round(p50_http, 5),
            ratio=round(ratio, 3),
            gate=HTTP_LATENCY_GATE,
        )
        assert ratio <= HTTP_LATENCY_GATE, (
            f"HTTP p50 {ratio:.2f}x in-process "
            f"(gate {HTTP_LATENCY_GATE}x)"
        )
    finally:
        service.close()


def test_concurrent_load_with_streaming_subscribers():
    service = _build_service()
    try:
        with NousGateway(
            service, GatewayConfig(heartbeat_interval=0.2)
        ) as gateway:
            # Baseline rows at subscribe time, computed while the graph
            # is quiescent: deltas replay on top of this.
            baseline = delta_rows(
                "pattern",
                decode_payload(
                    "pattern",
                    service.query(SUBSCRIBE_QUERY).raise_for_error().payload,
                ),
            )
            sub_client = ClientSession(gateway.url, timeout=60.0)
            streams = [
                sub_client.subscribe(
                    SUBSCRIBE_QUERY,
                    heartbeat=0.2,
                    include_heartbeats=True,
                    timeout=60.0,
                )
                for _ in range(2)
            ]
            frame_logs = [[] for _ in streams]
            readers = [
                threading.Thread(
                    target=lambda s=stream, log=log: log.extend(s),
                    daemon=True,
                )
                for stream, log in zip(streams, frame_logs)
            ]
            for reader in readers:
                reader.start()

            errors, oks = [], []

            def worker(worker_id):
                try:
                    with ClientSession(gateway.url, timeout=60.0) as session:
                        for round_no in range(ROUNDS):
                            # Every worker also moves the standing query.
                            text = (
                                f"DJI acquired ZephyrWorks_{worker_id} in "
                                f"June 2016. Amazon announced a new drone "
                                f"program {worker_id}-{round_no}."
                            )
                            envelope = session.ingest(
                                text,
                                doc_id=f"load-{worker_id}-{round_no}",
                                date="2016-06-10",
                                source="bench",
                            )
                            oks.append(envelope.ok)
                            oks.append(session.query("tell me about DJI").ok)
                            oks.append(
                                session.query(SUBSCRIBE_QUERY).ok
                            )
                except Exception as exc:  # noqa: BLE001 - assert below
                    errors.append(exc)

            t0 = time.perf_counter()
            workers = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(N_CLIENTS)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=300.0)
            elapsed = time.perf_counter() - t0
            assert not any(t.is_alive() for t in workers), "worker deadlock"
            assert not errors, errors
            assert all(oks) and len(oks) == N_CLIENTS * ROUNDS * 3

            # Let the drainer finish, subscriptions refresh, and the
            # streams deliver their tail before disconnecting.
            service.flush(timeout=120.0)
            deadline = time.monotonic() + 10.0
            expected = delta_rows(
                "pattern",
                decode_payload(
                    "pattern",
                    service.query(SUBSCRIBE_QUERY).raise_for_error().payload,
                ),
            )

            def replayed(frames):
                rows = dict(baseline)
                for frame in frames:
                    if frame.get("event") != "update":
                        continue
                    for row in frame["removed"]:
                        rows.pop(row_key(row), None)
                    for row in frame["added"]:
                        rows[row_key(row)] = row
                return rows

            while time.monotonic() < deadline:
                if all(
                    set(replayed(log)) == set(expected) for log in frame_logs
                ):
                    break
                time.sleep(0.1)
            for stream in streams:
                stream.close()
            for reader in readers:
                reader.join(timeout=10.0)
            sub_client.close()

        total_frames = 0
        for log in frame_logs:
            # Framing integrity: every line parsed into a frame dict
            # with a known event type (an interleaved or torn frame
            # would have failed JSON parsing in the reader thread).
            assert log and log[0]["event"] == "subscribed"
            events = {frame["event"] for frame in log}
            assert events <= {"subscribed", "update", "heartbeat", "bye"}
            assert any(frame["event"] == "update" for frame in log)
            # Zero dropped frames: baseline + all deltas == fresh rows.
            assert set(replayed(log)) == set(expected)
            total_frames += len(log)

        print(
            f"\nconcurrent load: {N_CLIENTS} clients x {ROUNDS} rounds "
            f"(ingest+2 queries) in {elapsed:.1f}s, "
            f"{service.batches_drained} drains, "
            f"{total_frames} NDJSON frames across {len(streams)} "
            f"subscribers, {len(expected) - len(baseline)} pattern rows "
            f"appeared under load"
        )
        record_bench(
            "http_gateway_concurrency",
            clients=N_CLIENTS,
            rounds=ROUNDS,
            elapsed_s=round(elapsed, 3),
            batches_drained=service.batches_drained,
            ndjson_frames=total_frames,
            subscribers=len(streams),
        )
        assert service.subscription_count == 0  # all detached cleanly
    finally:
        service.close()
