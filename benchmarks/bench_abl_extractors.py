"""ABL-EXTRACT (§4 demo feature 1): "Develop custom relation extractors
and illustrate the trade-off from various heuristics."

The demonstration's first feature is exploring extractor-heuristic
trade-offs.  We measure gold-pair recall and triple volume for four
pipeline variants on the same article stream: OpenIE only, +SRL frames,
+coreference, and the full configuration — and confirm the expected
trade-off shape (each heuristic adds recall; SRL adds precise role
structure; coref recovers pronoun/nominal subjects).
"""

from __future__ import annotations

import pytest

from repro import CorpusConfig, build_drone_kb, generate_corpus
from repro.nlp import NlpPipeline


@pytest.fixture(scope="module")
def corpus():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=60, seed=17, crawl_fraction=0.0)
    )
    return kb, articles


def gold_recall(pipeline, articles):
    hits = total = 0
    n_triples = 0
    for article in articles:
        triples = pipeline.extract_triples(article.text, doc_date=article.date)
        n_triples += len(triples)
        pairs = {(t.subject.lower(), t.object.lower()) for t in triples}
        for s, _p, o in article.gold_triples:
            total += 1
            s_name = s.replace("_", " ").lower()
            o_name = o.replace("_", " ").lower()
            if any(s_name in ps and (o_name in po or po in o_name)
                   for ps, po in pairs if po):
                hits += 1
    return hits / total, n_triples


def test_heuristic_tradeoffs(corpus):
    kb, articles = corpus
    gazetteer = kb.gazetteer()
    variants = {
        "openie only": NlpPipeline(gazetteer=gazetteer, use_srl=False,
                                   use_coref=False),
        "openie + srl": NlpPipeline(gazetteer=gazetteer, use_srl=True,
                                    use_coref=False),
        "openie + coref": NlpPipeline(gazetteer=gazetteer, use_srl=False,
                                      use_coref=True),
        "full": NlpPipeline(gazetteer=gazetteer),
    }
    rows = {}
    print("\nextractor heuristic trade-off (recall / extracted triples):")
    for name, pipeline in variants.items():
        recall, volume = gold_recall(pipeline, articles)
        rows[name] = (recall, volume)
        print(f"  {name:16s} recall={recall:.2%}  triples={volume}")

    # Shape assertions: srl adds triples (role decomposition);
    # nothing beats the full configuration on recall.
    assert rows["openie + srl"][1] > rows["openie only"][1]
    best = max(r for r, _ in rows.values())
    assert rows["full"][0] == pytest.approx(best, abs=1e-9)


def test_gazetteer_heuristic_matters(corpus):
    """NER grounded in the KB's aliases lifts extraction confidence."""
    _kb, articles = corpus
    kb2 = build_drone_kb()
    with_gaz = NlpPipeline(gazetteer=kb2.gazetteer())
    without_gaz = NlpPipeline(gazetteer=None)

    def mean_confidence(pipeline):
        confs = [
            t.confidence
            for a in articles[:25]
            for t in pipeline.extract_triples(a.text, doc_date=a.date)
        ]
        return sum(confs) / len(confs)

    gaz_conf = mean_confidence(with_gaz)
    no_gaz_conf = mean_confidence(without_gaz)
    print(f"\nmean confidence with gazetteer {gaz_conf:.3f} "
          f"vs without {no_gaz_conf:.3f}")
    assert gaz_conf >= no_gaz_conf


def test_min_confidence_gate_tradeoff(corpus):
    """Raising the extraction gate trades recall for precision proxy."""
    kb, articles = corpus
    gazetteer = kb.gazetteer()
    recalls = []
    for gate in (0.0, 0.6, 0.9):
        pipeline = NlpPipeline(gazetteer=gazetteer, min_confidence=gate)
        recall, volume = gold_recall(pipeline, articles[:30])
        recalls.append((gate, recall, volume))
    print("\nconfidence-gate sweep (gate, recall, volume):")
    for gate, recall, volume in recalls:
        print(f"  {gate:.1f}  {recall:.2%}  {volume}")
    volumes = [v for _, _, v in recalls]
    assert volumes == sorted(volumes, reverse=True), "volume must shrink"
    assert recalls[0][1] >= recalls[-1][1], "recall cannot rise with the gate"


def test_benchmark_full_vs_light_pipeline(benchmark, corpus):
    kb, articles = corpus
    pipeline = NlpPipeline(gazetteer=kb.gazetteer())
    texts = [a.text for a in articles[:15]]
    total = benchmark(
        lambda: sum(len(pipeline.extract_triples(t)) for t in texts)
    )
    assert total > 0
