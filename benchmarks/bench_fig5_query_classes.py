"""FIG5: the five NL-like query classes, each translated to a graph
algorithm and measured.

Figure 5 of the paper lists five classes of natural-language-like
queries "transparently translated to execute distributed algorithms for
subgraph pattern mining, entity-based queries or complex graph
queries".  One benchmark per class regenerates the artifact: query text
in, algorithm out, with per-class latency (pytest-benchmark's table is
the figure's quantitative counterpart).
"""

from __future__ import annotations

import pytest

from repro.query import QueryEngine, parse_query
from repro.query.model import (
    EntityQuery,
    ExplanatoryQuery,
    PatternQuery,
    RelationshipQuery,
    TrendingQuery,
)

QUERIES = {
    "trending": ("show trending patterns", TrendingQuery),
    "entity": ("tell me about DJI", EntityQuery),
    "relationship": ("how is DJI related to Amazon", RelationshipQuery),
    "explanatory": ("why does Windermere use drones", ExplanatoryQuery),
    "pattern": ("match (?a:Company)-[acquired]->(?b:Company)", PatternQuery),
}


@pytest.fixture(scope="module")
def engine(built_system):
    return QueryEngine(built_system)


def test_all_classes_parse_to_distinct_types():
    seen = set()
    for text, expected in QUERIES.values():
        query = parse_query(text)
        assert isinstance(query, expected)
        seen.add(type(query))
    assert len(seen) == 5


def test_all_classes_return_results(engine):
    print()
    for name, (text, _expected) in QUERIES.items():
        result = engine.execute_text(text)
        print(f"{name:13s} {result.elapsed_ms:8.1f} ms  "
              f"{result.result_count:4d} results   {text!r}")
        assert result.kind in name or name in result.kind
        assert result.result_count >= 1, f"{name} query returned nothing"


@pytest.mark.parametrize("name", list(QUERIES))
def test_benchmark_query_class(benchmark, engine, name):
    text, _expected = QUERIES[name]
    query = parse_query(text)
    result = benchmark(lambda: engine.execute(query))
    assert result.result_count >= 1
