"""RECOVERY: snapshot + WAL replay vs re-running NLP extraction.

ISSUE 6's performance claim for the durability layer: starting a
durable service back up from its data directory must be cheap, because
recovery replays *effect records* — which facts were accepted, which
entities/aliases were minted, how trust moved — instead of re-running
the expensive part of ingestion (NLP extraction, collective entity
linking, confidence scoring).  Concretely:

1. **Cold-start speed** — constructing a ``NousService`` over an
   existing data directory (restore the last snapshot, replay the WAL
   suffix it does not cover) must be at least ``RECOVERY_GATE``
   (default 2.0x) faster than re-ingesting the same corpus from raw
   text, batch-aligned.
2. **Equivalence** — the recovered service lands on the exact composite
   stamp the original died at, and a fresh re-extraction over the same
   corpus agrees (same interpreter, so hash ordering matches).

The durable run uses the production cadence (``snapshot_every``), which
is what bounds the replay suffix: with 18 micro-batches and a snapshot
every 5, recovery restores the batch-15 snapshot and replays 3 WAL
records.  Both timed sections start from the same freshly built
curated-KB world, so the (identical) engine-construction cost appears
on both sides of the ratio; what the gate actually measures is that
restoring state + replaying effects beats re-deriving them from text.
Restore cost scales with the *window* (the miner's incremental state is
rebuilt by re-adding the snapshotted window edges through the live
listener wiring), extraction cost with the *corpus* — which is exactly
the asymmetry a long-running stream relies on.

Run me: ``PYTHONPATH=src python -m pytest -q -s
benchmarks/bench_recovery.py`` (the CI ``durability`` job smokes this
with a relaxed gate and uploads the ``BENCH_*.json`` trajectory
artifact).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import record_bench

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    ServiceConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)

BENCH_SEED = 7
N_ARTICLES = 360
BATCH = 20
SNAPSHOT_EVERY = 5  # 18 batches -> snapshots at 5/10/15, 3-record suffix
RECOVERY_GATE = float(os.environ.get("BENCH_RECOVERY_GATE", "2.0"))
CONFIG = dict(
    window_size=150,
    min_support=2,
    lda_iterations=10,
    retrain_every=0,
    seed=BENCH_SEED,
)


def _fresh_world():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=BENCH_SEED)
    )
    generate_descriptions(kb, seed=BENCH_SEED)
    return kb, articles


def _service(kb, data_dir=None, snapshot_every=0):
    return NousService(
        kb=kb,
        config=NousConfig(**CONFIG),
        service_config=ServiceConfig(
            auto_start=False, max_batch=BATCH, snapshot_every=snapshot_every
        ),
        data_dir=data_dir,
    )


def _ingest(service, articles):
    for start in range(0, len(articles), BATCH):
        service.submit_many(articles[start : start + BATCH])
        service.flush()


def test_recovery_beats_reextraction():
    data_dir = tempfile.mkdtemp(prefix="nous-bench-recovery-")
    try:
        kb, articles = _fresh_world()
        original = _service(
            kb, data_dir=data_dir, snapshot_every=SNAPSHOT_EVERY
        )
        _ingest(original, articles)
        stamp = original.kg_version
        num_facts = original.nous.kb.num_facts
        original.close()
        wal_records = sum(
            1 for _ in open(os.path.join(data_dir, "wal.jsonl"))
        )

        # (a) durable cold start: snapshot restore + WAL-suffix replay.
        recover_kb, _ = _fresh_world()
        t0 = time.perf_counter()
        recovered = _service(recover_kb, data_dir=data_dir)
        recover_s = time.perf_counter() - t0
        assert recovered.kg_version == stamp
        assert recovered.nous.kb.num_facts == num_facts
        recovered.close()

        # (b) re-extraction baseline: same corpus through the full NLP
        # path, batch-aligned with the original run.
        extract_kb, extract_articles = _fresh_world()
        t0 = time.perf_counter()
        fresh = _service(extract_kb)
        _ingest(fresh, extract_articles)
        extract_s = time.perf_counter() - t0
        assert fresh.kg_version == stamp
        assert fresh.nous.kb.num_facts == num_facts
        fresh.close()

        speedup = extract_s / recover_s
        suffix = wal_records - SNAPSHOT_EVERY * (
            (N_ARTICLES // BATCH) // SNAPSHOT_EVERY
        )
        print("\n=== recovery benchmark ===")
        print(f"articles                 : {N_ARTICLES} (batch {BATCH})")
        print(f"WAL records              : {wal_records} "
              f"({suffix} past the last snapshot)")
        print(f"re-extraction ingest     : {extract_s:8.2f} s")
        print(f"snapshot + WAL recovery  : {recover_s:8.2f} s")
        print(f"recovery speedup         : {speedup:8.2f}x  "
              f"(gate >= {RECOVERY_GATE:.2f}x)")
        print(f"recovered stamp          : {stamp} (exact match)")

        record_bench(
            "recovery",
            articles=N_ARTICLES,
            batch=BATCH,
            snapshot_every=SNAPSHOT_EVERY,
            wal_records=wal_records,
            extract_s=round(extract_s, 4),
            recover_s=round(recover_s, 4),
            speedup=round(speedup, 3),
            gate=RECOVERY_GATE,
            kg_version=stamp,
            num_facts=num_facts,
        )

        assert speedup >= RECOVERY_GATE, (
            f"snapshot + WAL recovery was only {speedup:.2f}x faster than "
            f"re-extraction (gate {RECOVERY_GATE:.2f}x)"
        )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    test_recovery_beats_reextraction()
