"""FIG7: patterns discovered from streaming updates to the KG.

Figure 7 shows frequent patterns learnt "from streams of articles
obtained from multiple websites", changing as the stream evolves.  The
synthetic world's regimes (funding boom -> deployments -> consolidation)
drive exactly that drift; the bench replays the stream window by window
and asserts the pattern turnover shape, measuring report latency.
"""

from __future__ import annotations

import pytest

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
)


@pytest.fixture(scope="module")
def streamed_reports():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb,
        CorpusConfig(n_articles=240, seed=3, crawl_fraction=0.4,
                     n_extra_companies=16),
    )
    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=120, min_support=4,
                          retrain_every=0, seed=3),
    )
    reports = []
    batch = 40
    for start in range(0, len(articles), batch):
        for article in articles[start : start + batch]:
            nous.ingest(article.text, doc_id=article.doc_id,
                        date=article.date, source=article.source)
        reports.append(nous.trending())
    return nous, reports


def test_patterns_drift_across_windows(streamed_reports):
    """Early windows: funding/launch patterns; late: acquisitions."""
    _nous, reports = streamed_reports
    def singles(report):
        return {p.describe() for p, _ in report.closed_frequent if p.size == 1}

    early = singles(reports[0]) | singles(reports[1])
    late = singles(reports[-1]) | singles(reports[-2])
    print(f"\nearly patterns: {sorted(early)}")
    print(f"late patterns:  {sorted(late)}")
    assert any("raisedFunding" in p or "fundedBy" in p or "launched" in p
               for p in early)
    assert any("acquired" in p for p in late)
    assert early != late, "stream drift must change the frequent set"


def test_transitions_reported(streamed_reports):
    """Windows report births and deaths of patterns (Figure 7 events)."""
    _nous, reports = streamed_reports
    births = sum(len(r.newly_frequent) for r in reports)
    deaths = sum(len(r.newly_infrequent) for r in reports)
    print(f"\npattern births: {births}, deaths: {deaths}")
    assert births > 0
    assert deaths > 0


def test_multi_source_stream(streamed_reports):
    """Figure 7's caption: updates learnt from multiple websites."""
    nous, _reports = streamed_reports
    sources = {
        t.source for t in nous.kb.store if not t.curated
    }
    print(f"\nsources contributing extracted facts: {sorted(sources)}")
    assert len(sources) >= 2


def test_reconstruction_on_expiry(streamed_reports):
    """When a 2-edge pattern dies, its frequent sub-patterns survive."""
    _nous, reports = streamed_reports
    reconstructed = [
        (lost, survivors)
        for r in reports
        for lost, survivors in r.newly_infrequent
        if lost.size >= 2 and survivors
    ]
    print(f"\nreconstruction events: {len(reconstructed)}")
    assert reconstructed, "expected at least one reconstruction event"


def test_benchmark_window_report(benchmark, streamed_reports):
    nous, _reports = streamed_reports
    report = benchmark(nous.trending)
    assert report.window_edges > 0
