"""PROCESS SHARDS: multi-process ingest vs the in-process cluster.

ISSUE 5's acceptance gate, on the synthetic world corpus at N=4 shards:

1. **Process-parallel ingest** — a ``ShardedNousService`` in
   ``shard_mode="process"`` (one ``nous serve`` worker subprocess per
   shard, documents travelling over the wire envelopes) must ingest the
   corpus at least ``PROCESS_GATE`` (default 1.0x) as fast as the same
   cluster with in-process shards.
2. **Equivalence** — identical accepted-fact totals and document
   counts on both paths (partitioning and transport must not change
   what was accepted).

This is the first benchmark in the repo that can beat the *GIL*, not
just the algorithm: the in-process cluster already wins ~3x against a
monolith because per-shard miner/linking work is superlinear in window
and batch size, but its four drainer threads still share one
interpreter.  Process shards do the same reduced work on four cores at
once; what they pay back is wire overhead — one HTTP round trip per
routed document plus ticket polling — which the batch submit endpoint
(``/v1/shard/submit``, one request per shard sub-batch) keeps small.
Worker startup (interpreter + curated world build) is deliberately
excluded from the timed section: it is a deploy-time cost, not an
ingest-throughput cost.

Run me: ``PYTHONPATH=src python -m pytest -q -s
benchmarks/bench_process_shards.py`` (the CI ``process-shards`` job
smokes this with a relaxed gate and uploads the ``BENCH_*.json``
trajectory artifact).
"""

from __future__ import annotations

import os
import time

from conftest import record_bench

from repro import (
    CorpusConfig,
    NousConfig,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)

BENCH_SEED = 7
N_ARTICLES = 120
N_SHARDS = 4
KB_SPEC = f"world:{N_ARTICLES}:{BENCH_SEED}"
_CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
# With a second core available, multi-process ingest must be >= the
# in-process cluster (the whole point of escaping the GIL).  On a
# single-core host there is no parallelism to win, so the default gate
# degrades to a wire-overhead bound: the envelope hops may cost at most
# ~25% against in-process shards doing identical work.  CI relaxes
# further via env var while the equivalence checks stay strict.
PROCESS_GATE = float(
    os.environ.get("BENCH_PROCESS_GATE", "1.0" if _CORES >= 2 else "0.75")
)
CONFIG = dict(
    window_size=500,
    min_support=2,
    max_pattern_edges=3,
    lda_iterations=10,
    retrain_every=0,
    seed=BENCH_SEED,
)


def _fresh_articles():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=BENCH_SEED)
    )
    generate_descriptions(kb, seed=BENCH_SEED)
    return articles


def _timed_cluster(shard_mode):
    """Build a fresh N-shard cluster in the given mode, time only the
    ingest (submit_many + flush + ticket collection)."""
    articles = _fresh_articles()
    cluster = ShardedNousService(
        num_shards=N_SHARDS,
        config=NousConfig(**CONFIG),
        service_config=ServiceConfig(
            auto_start=True, max_batch=N_ARTICLES, max_delay=0.01
        ),
        shard_mode=shard_mode,
        kb_spec=KB_SPEC,
    )
    try:
        t0 = time.perf_counter()
        tickets = cluster.submit_many(articles)
        cluster.flush()
        envelopes = [t.result(timeout=60) for t in tickets]
        elapsed = time.perf_counter() - t0
        assert all(env.ok for env in envelopes)
        accepted = sum(env.payload["accepted"] for env in envelopes)
        documents = cluster.documents_ingested
        routed = list(cluster.documents_routed)
    finally:
        cluster.close()
    return elapsed, accepted, documents, routed


def test_process_shard_ingest_at_least_matches_in_process_cluster():
    # Best-of-2 fresh runs per path: ingestion mutates state, so each
    # run needs its own cluster; the min damps scheduler noise.
    runs_local = [_timed_cluster("local") for _ in range(2)]
    runs_process = [_timed_cluster("process") for _ in range(2)]
    t_local, acc_local, docs_local, routed_local = min(
        runs_local, key=lambda r: r[0]
    )
    t_process, acc_process, docs_process, routed_process = min(
        runs_process, key=lambda r: r[0]
    )

    speedup = t_local / t_process
    print(
        f"\nin-process x{N_SHARDS} cluster:  {t_local:.3f}s "
        f"({acc_local} accepted facts, {docs_local} docs)"
    )
    print(
        f"process   x{N_SHARDS} cluster:  {t_process:.3f}s "
        f"({acc_process} accepted facts, {docs_process} docs)"
    )
    print(
        f"speedup:                {speedup:.2f}x "
        f"(gate {PROCESS_GATE}x on {_CORES} core(s))"
    )
    print(f"documents per shard:    {routed_process}")
    record_bench(
        "process_shards",
        articles=N_ARTICLES,
        shards=N_SHARDS,
        cores=_CORES,
        local_cluster_s=round(t_local, 4),
        process_cluster_s=round(t_process, 4),
        speedup=round(speedup, 3),
        gate=PROCESS_GATE,
        documents_per_shard=routed_process,
    )

    # equivalence: transport must not change what was accepted
    assert docs_local == docs_process == N_ARTICLES
    assert routed_local == routed_process, (
        "routing diverged between modes: "
        f"local {routed_local}, process {routed_process}"
    )
    assert acc_local == acc_process, (
        f"accepted facts diverged: local {acc_local}, "
        f"process {acc_process}"
    )

    assert speedup >= PROCESS_GATE, (
        f"multi-process ingest speedup {speedup:.2f}x below gate "
        f"{PROCESS_GATE}x (in-process {t_local:.3f}s vs process "
        f"{t_process:.3f}s)"
    )


if __name__ == "__main__":
    test_process_shard_ingest_at_least_matches_in_process_cluster()
