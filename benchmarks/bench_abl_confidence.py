"""ABL-CONF (§3.4 design choice): BPR link prediction vs trust-only.

"Simply adding noisy facts to the knowledge graph will destroy its
purpose" — the paper adds a BPR link-prediction score on top of source
trust.  This bench corrupts true KG facts and measures how well each
signal separates true from corrupted triples (ranking AUC), plus
training/scoring cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CorpusConfig, build_drone_kb, generate_corpus
from repro.confidence import BprLinkPredictor, SourceTrust
from repro.kb.triples import Triple


@pytest.fixture(scope="module")
def kg_with_structure():
    """Drone KB + synthetic world facts: enough edges per predicate for
    the factor models to learn from."""
    kb = build_drone_kb()
    generate_corpus(kb, CorpusConfig(n_articles=1, seed=21, n_extra_companies=30))
    return kb


def kg_facts(kb):
    """Facts of the predicates the bench evaluates on."""
    return sorted(
        (t for t in kb.store if t.predicate in
         {"manufactures", "foundedBy", "headquarteredIn", "ceoOf", "productOf"}),
        key=lambda t: t.key(),
    )


def test_bpr_beats_trust_only_auc(kg_with_structure):
    """§3.4's actual protocol: an incoming triple is scored against the
    *prior state of the KG*.  Train on the KG, then rank true incoming
    triples (re-assertions of KG facts) against corrupted ones."""
    kb = kg_with_structure
    rng = np.random.default_rng(2)
    facts = kg_facts(kb)
    model = BprLinkPredictor(n_factors=12, n_epochs=60, seed=4).fit(facts)
    negatives = model.corrupt(facts, rng)
    scoreable_pos = [
        t for t in facts if model.can_score(t.subject, t.predicate, t.object)
    ]
    assert scoreable_pos and negatives
    bpr_auc = model.auc(scoreable_pos, negatives)

    # Trust-only ablation: every fact from the same source scores the
    # same -> AUC is chance.
    trust = SourceTrust()
    def trust_auc(positives, negs):
        pos = [trust.trust(t.source) for t in positives]
        neg = [trust.trust(t.source) for t in negs]
        wins = sum(1 for p in pos for n in neg if p > n)
        ties = sum(1 for p in pos for n in neg if p == n)
        return (wins + 0.5 * ties) / (len(pos) * len(neg))

    t_auc = trust_auc(scoreable_pos, negatives)
    print(f"\nAUC separating true vs corrupted incoming triples:")
    print(f"  BPR link prediction : {bpr_auc:.3f}")
    print(f"  source trust only   : {t_auc:.3f}")
    assert bpr_auc > 0.8
    assert bpr_auc > t_auc + 0.2


def test_combined_beats_components_on_noisy_stream(kg_with_structure):
    """Shape: geometric blend ranks true facts above corrupted ones at
    least as well as the best single component."""
    kb = kg_with_structure
    rng = np.random.default_rng(7)
    facts = kg_facts(kb)
    model = BprLinkPredictor(n_factors=12, n_epochs=60, seed=4).fit(facts)
    negatives = model.corrupt(facts, rng)
    positives = [
        t for t in facts if model.can_score(t.subject, t.predicate, t.object)
    ]

    trust = SourceTrust()
    def combined(t: Triple, source: str) -> float:
        lp = model.score(t.subject, t.predicate, t.object)
        return (lp * trust.trust(source)) ** 0.5

    pos = [combined(t, "wsj") for t in positives]
    neg = [combined(t, "dronewire.example") for t in negatives]
    wins = sum(1 for p in pos for n in neg if p > n)
    ties = sum(1 for p in pos for n in neg if p == n)
    auc = (wins + 0.5 * ties) / (len(pos) * len(neg))
    print(f"\ncombined (BPR x trust) AUC with source skew: {auc:.3f}")
    assert auc > 0.75


def test_benchmark_bpr_training(benchmark, kg_with_structure):
    kb = kg_with_structure
    facts = list(kb.store)
    model = benchmark.pedantic(
        lambda: BprLinkPredictor(n_factors=12, n_epochs=30, seed=4).fit(facts),
        rounds=3, iterations=1,
    )
    assert model.models


def test_benchmark_bpr_scoring(benchmark, kg_with_structure):
    kb = kg_with_structure
    model = BprLinkPredictor(n_factors=12, n_epochs=30, seed=4).fit(kb.store)
    score = benchmark(lambda: model.score("DJI", "manufactures", "Phantom_3"))
    assert 0 <= score <= 1
