"""BATCH: batched ingestion + incremental indexes vs the seed hot path.

Four experiments on the synthetic world corpus:

1. **Batched ingestion** — ``Nous.ingest_batch`` (one collective linking
   pass, one end-of-batch retrain, doomed window facts skip the miner)
   against the seed per-document ``ingest`` loop, same corpus and
   config.  Result equivalence is asserted alongside the timing.
2. **Indexed pattern queries** — the shared incremental graph view plus
   label/(vertex, label) indexes against the seed path, which rebuilt
   the full property graph per query and scanned the edge list for every
   candidate predicate.
3. **Query-result cache** — repeated queries on an unchanged KG served
   from the version-stamped cache against recomputation.
4. **Parallel extraction** (ISSUE 8) — ``extract_workers=4`` fanning the
   NLP stage across a spawn pool vs the serial batch path.  Byte-equal
   results always; the >=2x docs/sec gate only binds where >= 4 cores
   exist to win (single-core hosts gate pool *overhead* instead).
"""

from __future__ import annotations

import os
import time

from conftest import record_bench
from typing import Dict, Hashable, List, Tuple

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
)
from repro.query import PatternMatcher, QueryEngine, parse_pattern
from repro.query.pattern_match import QueryPatternEdge

BATCH_SEED = 7
N_ARTICLES = 120
# The PR's acceptance gate is >=2x.  Shared CI runners are noisy, so the
# CI smoke step relaxes the gate via this env var (result-equivalence
# checks stay strict there); local/nightly runs keep the full 2.0.
SPEEDUP_GATE = float(os.environ.get("BENCH_SPEEDUP_GATE", "2.0"))
_CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
EXTRACT_WORKERS = 4
# Fanning the *extraction stage* across 4 processes must be >= 2x
# docs/sec where 4 cores exist (the stage is what parallelises; the
# end-to-end batch keeps its serial linking/mining share and is
# recorded ungated).  A single-core host cannot show any speedup — four
# workers time-slice one core and every chunk round-trips a pickle —
# so the gate there only bounds gross pathology.
PARALLEL_GATE = float(
    os.environ.get(
        "BENCH_PARALLEL_GATE", "2.0" if _CORES >= EXTRACT_WORKERS else "0.1"
    )
)
CONFIG = dict(
    window_size=100,
    min_support=2,
    lda_iterations=10,
    retrain_every=40,
    seed=BATCH_SEED,
)

PATTERN_TEXTS = [
    "(?a:Company)-[acquired]->(?b:Company)",
    "(?a:Company)-[partnerOf]->(?b:Company)",
    "(?c:Company)-[foundedBy]->(?p:Person), (?c:Company)-[headquarteredIn]->(?l:Location)",
    "(?a:Company)-[raisedFunding]->(?m)",
    "(?x)-[usesTechnology]->(?y)",
]


def _fresh_corpus():
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=BATCH_SEED)
    )
    return kb, articles


class _SeedScanMatcher(PatternMatcher):
    """The seed's candidate generation: label-filtered edge-list scans."""

    def _candidate_pairs(
        self, edge: QueryPatternEdge, bindings: Dict[str, Hashable]
    ) -> List[Tuple[Hashable, Hashable]]:
        src_bound = bindings.get(edge.src)
        dst_bound = bindings.get(edge.dst)
        pairs: List[Tuple[Hashable, Hashable]] = []
        if src_bound is not None:
            graph_edges = (
                e for e in self.graph.out_edges(src_bound)
                if e.label == edge.predicate
            )
        elif dst_bound is not None:
            graph_edges = (
                e for e in self.graph.in_edges(dst_bound)
                if e.label == edge.predicate
            )
        else:
            # seed find_edges: scan every edge in the graph
            graph_edges = (
                e for e in self.graph.edges() if e.label == edge.predicate
            )
        for graph_edge in graph_edges:
            if dst_bound is not None and graph_edge.dst != dst_bound:
                continue
            if src_bound is not None and graph_edge.src != src_bound:
                continue
            if not self._type_ok(graph_edge.src, edge.src_type):
                continue
            if not self._type_ok(graph_edge.dst, edge.dst_type):
                continue
            pairs.append((graph_edge.src, graph_edge.dst))
        return pairs


def _timed_ingest(batched: bool):
    """Build a fresh system, ingest the corpus, return (seconds, nous, results)."""
    kb, articles = _fresh_corpus()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    ingest = nous.ingest_batch if batched else nous.ingest_corpus
    t0 = time.perf_counter()
    results = ingest(articles)
    return time.perf_counter() - t0, nous, results


def test_batched_ingestion_speedup():
    # Best-of-2 fresh runs per path: ingestion mutates state, so each
    # run needs its own system; the min damps scheduler noise on shared
    # CI runners.
    runs_seq = [_timed_ingest(batched=False) for _ in range(2)]
    runs_bat = [_timed_ingest(batched=True) for _ in range(2)]
    t_sequential, nous_seq, results_seq = min(runs_seq, key=lambda r: r[0])
    t_batched, nous_bat, results_bat = min(runs_bat, key=lambda r: r[0])

    speedup = t_sequential / t_batched
    print(
        f"\ningestion ({N_ARTICLES} articles): sequential {t_sequential * 1000:.0f} ms"
        f"  batched {t_batched * 1000:.0f} ms  speedup {speedup:.1f}x"
    )
    record_bench(
        "batch_ingest",
        articles=N_ARTICLES,
        sequential_s=round(t_sequential, 4),
        batched_s=round(t_batched, 4),
        speedup=round(speedup, 3),
        gate=SPEEDUP_GATE,
    )

    # Equivalence of outcomes, not just speed.
    assert len(results_bat) == len(results_seq)
    assert sum(r.raw_triples for r in results_bat) == sum(
        r.raw_triples for r in results_seq
    )
    assert nous_bat.kb.num_facts == nous_seq.kb.num_facts
    assert nous_bat.dynamic.window.window_size == nous_seq.dynamic.window.window_size
    assert nous_bat.dynamic.miner.window_size == nous_seq.dynamic.miner.window_size
    accepted_seq = sum(r.accepted for r in results_seq)
    accepted_bat = sum(r.accepted for r in results_bat)
    # Mid-stream retrains may shift a handful of borderline confidences.
    assert abs(accepted_bat - accepted_seq) <= max(3, accepted_seq // 20)

    assert speedup >= SPEEDUP_GATE, f"batched ingestion only {speedup:.2f}x faster"


def test_indexed_pattern_query_speedup():
    kb, articles = _fresh_corpus()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    nous.ingest_batch(articles)
    patterns = [parse_pattern(text) for text in PATTERN_TEXTS]
    rounds = 10

    # Seed path: materialise the full KB property graph per query, then
    # match via edge-list scans.
    t0 = time.perf_counter()
    seed_counts = []
    for _ in range(rounds):
        for pattern in patterns:
            graph = nous.kb.to_property_graph()
            matcher = _SeedScanMatcher(graph, ontology=nous.kb.ontology)
            seed_counts.append(len(matcher.match(pattern, limit=50)))
    t_seed = time.perf_counter() - t0

    # Indexed path: shared incremental view + label indexes (result cache
    # off, so the measurement is the lookup itself).
    engine = QueryEngine(nous, enable_cache=False)
    t0 = time.perf_counter()
    indexed_counts = []
    for _ in range(rounds):
        for text in PATTERN_TEXTS:
            result = engine.execute_text(f"match {text}")
            indexed_counts.append(result.result_count)
    t_indexed = time.perf_counter() - t0

    speedup = t_seed / t_indexed
    print(
        f"\npattern queries ({rounds}x{len(patterns)}): seed {t_seed * 1000:.0f} ms"
        f"  indexed {t_indexed * 1000:.0f} ms  speedup {speedup:.1f}x"
    )
    record_bench(
        "indexed_pattern_query",
        seed_s=round(t_seed, 4),
        indexed_s=round(t_indexed, 4),
        speedup=round(speedup, 3),
        gate=SPEEDUP_GATE,
    )
    assert indexed_counts == seed_counts, "indexed path changed results"
    assert any(count > 0 for count in indexed_counts)
    assert speedup >= SPEEDUP_GATE, f"indexed pattern lookups only {speedup:.2f}x faster"


def test_parallel_extraction_docs_per_sec():
    rounds = 3

    # -- stage throughput: the same _extract_batch seam both paths use.
    kb, articles = _fresh_corpus()
    serial_nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    t_serial = min(
        _timed(lambda: serial_nous._extract_batch(articles))
        for _ in range(rounds)
    )

    kb_pool, articles_pool = _fresh_corpus()
    pooled_nous = Nous(
        kb=kb_pool,
        config=NousConfig(extract_workers=EXTRACT_WORKERS, **CONFIG),
    )
    # Spawn + per-worker pipeline build is a one-time cost paid at
    # service start, not per batch: warm the pool before the clock.
    pooled_nous._extract_batch(articles_pool[:EXTRACT_WORKERS])
    t_pool = min(
        _timed(lambda: pooled_nous._extract_batch(articles_pool))
        for _ in range(rounds)
    )

    docs_serial = N_ARTICLES / t_serial
    docs_pool = N_ARTICLES / t_pool
    speedup = docs_pool / docs_serial

    # -- end-to-end: full batches through both engines, byte-compared.
    t0 = time.perf_counter()
    results_serial = serial_nous.ingest_batch(articles)
    e2e_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    results_pool = pooled_nous.ingest_batch(articles_pool)
    e2e_pool = time.perf_counter() - t0

    print(
        f"\nparallel extraction ({N_ARTICLES} articles, "
        f"{EXTRACT_WORKERS} workers, {_CORES} core(s)):\n"
        f"stage      serial {docs_serial:.0f} docs/s  "
        f"pooled {docs_pool:.0f} docs/s  speedup {speedup:.2f}x "
        f"(gate {PARALLEL_GATE}x)\n"
        f"end-to-end serial {N_ARTICLES / e2e_serial:.0f} docs/s  "
        f"pooled {N_ARTICLES / e2e_pool:.0f} docs/s"
    )
    record_bench(
        "parallel_extraction",
        articles=N_ARTICLES,
        extract_workers=EXTRACT_WORKERS,
        cores=_CORES,
        stage_serial_s=round(t_serial, 4),
        stage_pooled_s=round(t_pool, 4),
        stage_serial_docs_per_s=round(docs_serial, 2),
        stage_pooled_docs_per_s=round(docs_pool, 2),
        e2e_serial_docs_per_s=round(N_ARTICLES / e2e_serial, 2),
        e2e_pooled_docs_per_s=round(N_ARTICLES / e2e_pool, 2),
        speedup=round(speedup, 3),
        gate=PARALLEL_GATE,
    )

    # Byte-identity is the contract, not approximate equivalence: the
    # pool only changes *where* extraction ran, never what it returned.
    assert [
        (r.doc_id, r.raw_triples, r.accepted, r.rejected_confidence)
        for r in results_pool
    ] == [
        (r.doc_id, r.raw_triples, r.accepted, r.rejected_confidence)
        for r in results_serial
    ]
    assert pooled_nous.kb.num_facts == serial_nous.kb.num_facts
    assert pooled_nous.kb.version == serial_nous.kb.version
    pooled_nous.close()

    assert speedup >= PARALLEL_GATE, (
        f"pooled extraction {speedup:.2f}x serial docs/sec "
        f"(gate {PARALLEL_GATE}x on {_CORES} core(s))"
    )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_query_result_cache_speedup():
    kb, articles = _fresh_corpus()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    nous.ingest_batch(articles)
    nous._topic_annotated_graph()  # warm LDA so both passes measure queries
    texts = [
        "tell me about DJI",
        "tell me about Amazon",
        "what's new about DJI",
        "match (?a:Company)-[acquired]->(?b:Company)",
        "how is GoPro related to DJI",
    ]
    engine = QueryEngine(nous, enable_cache=True)
    rounds = 5

    t0 = time.perf_counter()
    cold = [engine.execute_text(t) for t in texts]
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = [engine.execute_text(t) for t in texts * rounds]
    t_warm_per_round = (time.perf_counter() - t0) / rounds

    speedup = t_cold / t_warm_per_round
    print(
        f"\nquery cache ({len(texts)} queries): cold {t_cold * 1000:.1f} ms"
        f"  warm {t_warm_per_round * 1000:.1f} ms/round  speedup {speedup:.1f}x"
    )
    record_bench(
        "query_result_cache",
        cold_s=round(t_cold, 4),
        warm_per_round_s=round(t_warm_per_round, 4),
        speedup=round(speedup, 3),
        gate=SPEEDUP_GATE,
    )
    assert all(not r.cached for r in cold)
    assert all(r.cached for r in warm)
    for cold_result, warm_result in zip(cold, warm):
        assert warm_result.rendered == cold_result.rendered
        assert warm_result.result_count == cold_result.result_count
    assert speedup >= SPEEDUP_GATE, f"cache hits only {speedup:.2f}x faster"
