"""Shared fixtures for the benchmark suite.

Expensive artifacts (built systems, corpora) are session-scoped so each
bench module measures only its own experiment.
"""

from __future__ import annotations

import pytest

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)

BENCH_SEED = 7
BENCH_ARTICLES = 120


@pytest.fixture(scope="session")
def bench_corpus_kb():
    """(kb, articles) pair for construction-oriented benches."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=BENCH_ARTICLES, seed=BENCH_SEED)
    )
    generate_descriptions(kb, seed=BENCH_SEED)
    return kb, articles


@pytest.fixture(scope="session")
def built_system(bench_corpus_kb):
    """A fully-ingested Nous system for query-oriented benches."""
    kb, articles = bench_corpus_kb
    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=300, min_support=3,
                          lda_iterations=40, seed=BENCH_SEED),
    )
    nous.ingest_corpus(articles)
    # warm the topic graph so query benches measure queries, not LDA
    nous._topic_annotated_graph()
    return nous
