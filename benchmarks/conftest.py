"""Shared fixtures for the benchmark suite.

Expensive artifacts (built systems, corpora) are session-scoped so each
bench module measures only its own experiment.

This module also owns the **benchmark trajectory artifacts**: every
bench calls :func:`record_bench` with its measured numbers, which lands
one ``BENCH_<name>.json`` file per bench in ``$BENCH_ARTIFACT_DIR``
(default: the working directory).  CI uploads those files from every
bench smoke step (``actions/upload-artifact``), so the perf trajectory
is recorded per commit instead of scrolling away in logs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)

BENCH_SEED = 7
BENCH_ARTICLES = 120

#: Where record_bench writes its JSON files.
BENCH_ARTIFACT_ENV = "BENCH_ARTIFACT_DIR"


def record_bench(name: str, **metrics):
    """Write one bench's measured numbers to ``BENCH_<name>.json``.

    Called by the bench itself right after it prints its report —
    *before* its gates assert, so a failing gate still leaves the
    measurement on disk for the trajectory.  Values must be JSON-safe
    (numbers, strings, lists, dicts).
    """
    directory = os.environ.get(BENCH_ARTIFACT_ENV, ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    payload = {"bench": name, "recorded_unix": round(time.time(), 3)}
    payload.update(metrics)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] wrote {path}")
    return path


@pytest.fixture(scope="session")
def bench_corpus_kb():
    """(kb, articles) pair for construction-oriented benches."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=BENCH_ARTICLES, seed=BENCH_SEED)
    )
    generate_descriptions(kb, seed=BENCH_SEED)
    return kb, articles


@pytest.fixture(scope="session")
def built_system(bench_corpus_kb):
    """A fully-ingested Nous system for query-oriented benches."""
    kb, articles = bench_corpus_kb
    nous = Nous(
        kb=kb,
        config=NousConfig(window_size=300, min_support=3,
                          lda_iterations=40, seed=BENCH_SEED),
    )
    nous.ingest_corpus(articles)
    # warm the topic graph so query benches measure queries, not LDA
    nous._topic_annotated_graph()
    return nous
