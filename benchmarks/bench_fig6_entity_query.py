"""FIG6: the entity query "Tell me about DJI".

Figure 6 shows the web interface answering an entity query about DJI
with facts grouped and scored.  This bench regenerates the payload —
typed entity card, curated + extracted facts with confidences, recent
mention dates — and measures its latency.
"""

from __future__ import annotations

from repro.query import QueryEngine


def test_tell_me_about_dji(built_system):
    summary = built_system.entity_summary("DJI")
    print("\n" + summary.render()[:700])
    assert summary.entity == "DJI"
    assert summary.entity_type == "Company"
    # Figure 6 content: facts from both provenances with confidences
    curated = [f for f in summary.facts if f[4]]
    extracted = [f for f in summary.facts if not f[4]]
    assert curated, "curated facts missing"
    assert extracted, "extracted facts missing"
    assert all(0 < f[3] <= 1 for f in summary.facts)
    predicates = {f[1] for f in summary.facts}
    assert {"manufactures", "headquarteredIn"} <= predicates
    assert summary.neighbors
    assert summary.recent_dates, "extracted facts should carry dates"


def test_alias_resolution_in_entity_query(built_system):
    """The query works through any alias of the entity."""
    for mention in ["DJI", "Da-Jiang Innovations", "the DJI"]:
        summary = built_system.entity_summary(mention)
        assert summary.entity == "DJI"


def test_benchmark_entity_query(benchmark, built_system):
    engine = QueryEngine(built_system)
    result = benchmark(lambda: engine.execute_text("tell me about DJI"))
    assert result.result_count > 0
