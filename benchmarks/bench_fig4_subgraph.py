"""FIG4: visualisation export of a drone-KG subgraph.

Figure 4 shows a rendered subgraph of the drone knowledge graph.  The
offline equivalent is the DOT/text export of an ego network around a
chosen entity; the bench checks the export carries the Figure 2/4
visual semantics (typed node colours, red curated vs blue extracted
edges) and measures export latency.
"""

from __future__ import annotations

from repro.core.viz import ego_subgraph, subgraph_to_dot, subgraph_to_text


def test_figure4_dot_export(built_system):
    graph = built_system.dynamic.graph_view()
    dot = subgraph_to_dot(graph, center="DJI", hops=2)
    print(f"\nDOT export: {len(dot.splitlines())} lines")
    print("\n".join(dot.splitlines()[:12]))
    assert dot.startswith("digraph KG {")
    assert '"DJI"' in dot
    assert 'color="red"' in dot       # curated facts
    assert "fillcolor=" in dot
    # extracted facts appear once the stream ran
    assert 'color="blue"' in dot


def test_ego_subgraph_bounded(built_system):
    graph = built_system.dynamic.graph_view()
    ego1 = ego_subgraph(graph, "DJI", hops=1)
    ego2 = ego_subgraph(graph, "DJI", hops=2)
    assert ego1.num_vertices <= ego2.num_vertices <= graph.num_vertices
    assert ego1.has_vertex("DJI")


def test_text_rendering(built_system):
    graph = built_system.dynamic.graph_view()
    text = subgraph_to_text(graph, "Windermere", hops=1)
    print("\n" + "\n".join(text.splitlines()[:10]))
    assert "Windermere" in text
    assert "-[" in text


def test_benchmark_subgraph_export(benchmark, built_system):
    graph = built_system.dynamic.graph_view()
    dot = benchmark(lambda: subgraph_to_dot(graph, center="DJI", hops=2))
    assert len(dot) > 100
