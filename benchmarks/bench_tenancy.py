"""TENANCY: multi-tenant gateway overhead.

ISSUE 10's acceptance gate: **per-tenant query p50 through a gateway
hosting T=4 tenants must stay within ``BENCH_TENANCY_GATE`` (default
1.5x) of the same query mix against a single-tenant gateway** — the
tenant route tree, registry lookup and per-tenant cache keying must
not tax the serving path.

Both phases run the identical protocol: feed each tenant the same
document schedule, then issue the query mix once per tenant over a
keep-alive session (cache misses — real query compute), round-robin
across tenants in the multi-tenant phase so every sample interleaves
registry lookups.  A second (cache-hit) pass is recorded too: with the
compute amortised away it isolates pure routing + transport overhead.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.api.envelopes import IngestRequest
from repro.api.http import ClientSession, NousGateway
from repro.api.tenancy import TenantRegistry, TenantSpec

from conftest import record_bench

# Shared CI runners are noisy; CI relaxes via env var.
TENANCY_GATE = float(os.environ.get("BENCH_TENANCY_GATE", "1.5"))
N_TENANTS = 4

_PAIRS = [
    ("DJI", "Amazon"), ("DJI", "GoPro"), ("Amazon", "Google"),
    ("GoPro", "Qualcomm"), ("DJI", "Google"), ("Amazon", "GoPro"),
    ("Qualcomm", "DJI"), ("Google", "GoPro"), ("Amazon", "Qualcomm"),
    ("DJI", "Intel"), ("Google", "Qualcomm"), ("Intel", "Amazon"),
]
QUERIES = (
    [f"how is {a} related to {b}" for a, b in _PAIRS]
    + [f"tell me about {e}" for e in ("DJI", "Amazon", "GoPro", "Google")]
    + [f"what's new with {e}" for e in ("DJI", "Amazon")]
    + ["match (?a:Company)-[acquired]->(?b:Company)"]
)

DOCS = [
    ("DJI acquired Parrot SA in June 2016.", "bench-1"),
    ("Amazon uses drones for package delivery.", "bench-2"),
    ("GoPro acquired Parrot SA in August 2017.", "bench-3"),
    ("Walmart uses drones for inventory.", "bench-4"),
]


def _feed(service) -> None:
    for text, doc_id in DOCS:
        service.submit(IngestRequest(text=text, doc_id=doc_id, source="bench"))
        service.flush()


def _measure(session: ClientSession) -> list:
    samples = []
    for text in QUERIES:
        t0 = time.perf_counter()
        assert session.query(text).ok
        samples.append(time.perf_counter() - t0)
    return samples


def test_per_tenant_query_p50_within_gate_of_single_tenant():
    # Phase A: one tenant behind the gateway — the reference p50.
    with TenantRegistry(specs=(TenantSpec(name="default"),)) as registry:
        _feed(registry.default)
        with NousGateway(registry) as gateway:
            with ClientSession(gateway.url, timeout=60.0) as session:
                single_miss = _measure(session)  # cache misses: query compute
                single_hit = _measure(session)   # cache hits: routing+wire
    p50_single = statistics.median(single_miss)
    p50_single_hit = statistics.median(single_hit)

    # Phase B: four tenants, same schedule each, the query mix issued
    # round-robin so consecutive samples cross tenant namespaces.
    names = ["default"] + [f"t-{i}" for i in range(1, N_TENANTS)]
    specs = tuple(TenantSpec(name=name) for name in names)
    miss: dict = {name: [] for name in names}
    hit: dict = {name: [] for name in names}
    with TenantRegistry(specs=specs) as registry:
        for name in names:
            _feed(registry.get(name))
        with NousGateway(registry) as gateway:
            sessions = {
                name: ClientSession(gateway.url, tenant=name, timeout=60.0)
                for name in names
            }
            try:
                for samples in (miss, hit):
                    for text in QUERIES:
                        for name in names:
                            t0 = time.perf_counter()
                            assert sessions[name].query(text).ok
                            samples[name].append(time.perf_counter() - t0)
            finally:
                for session in sessions.values():
                    session.close()

    p50s = {name: statistics.median(miss[name]) for name in names}
    p50s_hit = {name: statistics.median(hit[name]) for name in names}
    worst = max(p50s.values())
    ratio = worst / p50_single
    print(
        f"\ntenant query p50 ({len(QUERIES)} distinct queries): "
        f"single-tenant {p50_single * 1000:.2f} ms  "
        f"worst of T={N_TENANTS} {worst * 1000:.2f} ms  ({ratio:.2f}x); "
        f"cache-hit pass: single {p50_single_hit * 1000:.2f} ms  "
        f"worst {max(p50s_hit.values()) * 1000:.2f} ms"
    )
    record_bench(
        "tenancy",
        tenants=N_TENANTS,
        p50_single_s=round(p50_single, 5),
        p50_single_hit_s=round(p50_single_hit, 5),
        p50_per_tenant_s={n: round(v, 5) for n, v in p50s.items()},
        p50_per_tenant_hit_s={n: round(v, 5) for n, v in p50s_hit.items()},
        worst_ratio=round(ratio, 3),
        gate=TENANCY_GATE,
    )
    assert ratio <= TENANCY_GATE, (
        f"worst per-tenant p50 {ratio:.2f}x single-tenant "
        f"(gate {TENANCY_GATE}x)"
    )
