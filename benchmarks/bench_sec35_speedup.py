"""CLAIM-3X (§3.5): streaming miner vs Arabesque-style recompute.

The paper: "initial benchmarking of our work against distributed graph
mining systems such as Arabesque suggests 3x speedup on selected
datasets."

Workload: a sliding window of typed KG edges; each slide admits new
edges and expires old ones.  The streaming miner updates incrementally;
the Arabesque baseline re-mines the whole window from scratch.  We
report wall-clock per slide and the speedup factor across window sizes
and slide fractions — the *shape* to reproduce is streaming winning by
roughly 3x or more for small slide fractions, with the advantage
shrinking as the slide approaches the window size.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np
import pytest

from repro.mining import ArabesqueMiner, InstanceEdge, StreamingPatternMiner

PREDICATES = [
    ("fundedBy", "Company", "Investor"),
    ("acquired", "Company", "Company"),
    ("launched", "Company", "Product"),
    ("partnerOf", "Company", "Company"),
]


def synth_stream(n: int, seed: int = 5, n_entities: int = 60) -> List[InstanceEdge]:
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(n):
        pred, src_label, dst_label = PREDICATES[int(rng.integers(len(PREDICATES)))]
        src = f"{src_label[:2]}{int(rng.integers(n_entities))}"
        dst = f"{dst_label[:2]}{int(rng.integers(n_entities))}"
        edges.append(
            InstanceEdge(src=src, dst=dst, src_label=src_label,
                         dst_label=dst_label, predicate=pred)
        )
    return edges


def run_streaming(stream, window, min_support) -> Tuple[float, int]:
    """Time the incremental updates over every slide; returns (secs, slides)."""
    miner = StreamingPatternMiner(min_support=min_support, max_edges=2)
    live = []
    for e in stream[:window]:
        live.append(miner.add_edge(e))
    slides = 0
    t0 = time.perf_counter()
    for e in stream[window:]:
        live.append(miner.add_edge(e))
        miner.remove_edge(live.pop(0))
        miner.closed_frequent_patterns()
        slides += 1
    return time.perf_counter() - t0, slides


def run_arabesque(stream, window, min_support) -> Tuple[float, int]:
    """Time from-scratch re-mining of the window at every slide."""
    miner = ArabesqueMiner(min_support=min_support, max_edges=2)
    live = list(stream[:window])
    slides = 0
    t0 = time.perf_counter()
    for e in stream[window:]:
        live.append(e)
        live.pop(0)
        miner.mine(live)
        slides += 1
    return time.perf_counter() - t0, slides


@pytest.mark.parametrize("window", [100, 200, 400])
def test_speedup_shape(window):
    """Streaming should beat per-slide recompute by >= ~2x (paper: ~3x)."""
    stream = synth_stream(window + 40)
    stream_time, slides = run_streaming(stream, window, min_support=3)
    scratch_time, _ = run_arabesque(stream, window, min_support=3)
    speedup = scratch_time / max(stream_time, 1e-9)
    per_slide_stream = 1000 * stream_time / slides
    per_slide_scratch = 1000 * scratch_time / slides
    print(
        f"\n[window={window}] streaming {per_slide_stream:.2f} ms/slide, "
        f"arabesque {per_slide_scratch:.2f} ms/slide, speedup {speedup:.1f}x"
    )
    assert speedup > 2.0, f"expected >=2x (paper reports ~3x), got {speedup:.2f}x"


def test_equivalence_of_outputs():
    """Sanity for the comparison: both miners agree on every window."""
    stream = synth_stream(160, seed=9)
    window = 120
    miner = StreamingPatternMiner(min_support=3, max_edges=2)
    live = []
    for e in stream[:window]:
        live.append((miner.add_edge(e), e))
    for e in stream[window:]:
        live.append((miner.add_edge(e), e))
        eid, _ = live.pop(0)
        miner.remove_edge(eid)
    scratch = ArabesqueMiner(min_support=3, max_edges=2).mine([e for _, e in live])
    assert dict(miner.closed_frequent_patterns()) == dict(scratch.closed_frequent)


def bench_table():
    """Regenerate the §3.5 comparison table (window x slide sweep)."""
    rows = []
    for window in (100, 200, 400):
        for extra in (20, window // 2):
            stream = synth_stream(window + extra)
            st, slides = run_streaming(stream, window, 3)
            at, _ = run_arabesque(stream, window, 3)
            rows.append(
                (window, extra, 1000 * st / slides, 1000 * at / slides,
                 at / max(st, 1e-9))
            )
    return rows


def test_print_full_table():
    print("\n§3.5 streaming-vs-Arabesque sweep")
    print(f"{'window':>7} {'slides':>7} {'stream ms':>10} {'scratch ms':>11} {'speedup':>8}")
    for window, extra, ms_s, ms_a, speedup in bench_table():
        print(f"{window:7d} {extra:7d} {ms_s:10.2f} {ms_a:11.2f} {speedup:7.1f}x")


def test_benchmark_streaming_update(benchmark):
    """pytest-benchmark target: one slide of the streaming miner."""
    stream = synth_stream(300)
    miner = StreamingPatternMiner(min_support=3, max_edges=2)
    live = [miner.add_edge(e) for e in stream[:200]]
    extra = iter(stream[200:] * 50)

    def one_slide():
        live.append(miner.add_edge(next(extra)))
        miner.remove_edge(live.pop(0))

    benchmark(one_slide)


def test_benchmark_arabesque_window(benchmark):
    """pytest-benchmark target: one from-scratch window re-mine."""
    stream = synth_stream(300)
    window = stream[:200]
    miner = ArabesqueMiner(min_support=3, max_edges=2)
    benchmark(lambda: miner.mine(window))
