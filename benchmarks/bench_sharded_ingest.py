"""SHARDED INGEST: partition-parallel construction vs one service.

ISSUE 4's acceptance gate, on the synthetic world corpus at N=4 shards:

1. **Parallel sharded ingest** — ``ShardedNousService.submit_many`` +
   ``flush`` (documents hash-partitioned by dominant entity, one
   micro-batch drainer per shard) must beat a single ``Nous.ingest_batch``
   over the same corpus by at least ``SHARDED_GATE`` (default 1.5x).
2. **Placement quality** — the run reports edge-cut and balance from
   ``PartitionStats`` and asserts sane bounds (all shards loaded, cut
   fraction in [0, 1], vertex balance bounded).

Why sharding wins even under the GIL: the expensive construction stages
are *superlinear* in what one service holds.  The streaming miner's
local embedding enumeration grows with window density (at the mined
3-edge pattern size it dominates construction), and collective entity
linking's coherence graph grows with the batch's mention count; N
shards each carry ~1/N of the window and batch, so the summed work is
far below the monolith's — parallel drains then overlap what remains.
The config mines 3-edge patterns (``max_pattern_edges=3``, the miner's
documented cap) to measure exactly that regime; periodic retraining is
disabled on *both* sides so the comparison isolates construction (each
shard retraining over its replicated curated base would otherwise bill
the cluster N times for the same model).

Result equivalence is asserted alongside the timing: identical accepted
totals and document counts on both paths.
"""

from __future__ import annotations

import os
import time

from conftest import record_bench

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)

BENCH_SEED = 7
N_ARTICLES = 120
N_SHARDS = 4
# Shared CI runners are noisy; the CI smoke step relaxes the gate via
# env var while the equivalence checks stay strict.
SHARDED_GATE = float(os.environ.get("BENCH_SHARDED_GATE", "1.5"))
CONFIG = dict(
    window_size=500,
    min_support=2,
    max_pattern_edges=3,
    lda_iterations=10,
    retrain_every=0,
    seed=BENCH_SEED,
)


def _fresh_world():
    """KB + corpus; the generator extends the KB with the synthetic
    world, so each timed run (and each shard) replays the same build."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=BENCH_SEED)
    )
    generate_descriptions(kb, seed=BENCH_SEED)
    return kb, articles


def _timed_single():
    kb, articles = _fresh_world()
    nous = Nous(kb=kb, config=NousConfig(**CONFIG))
    t0 = time.perf_counter()
    results = nous.ingest_batch(articles)
    elapsed = time.perf_counter() - t0
    return elapsed, sum(r.accepted for r in results), len(results)


def _timed_sharded():
    _kb, articles = _fresh_world()
    cluster = ShardedNousService(
        kb_factory=lambda: _fresh_world()[0],
        num_shards=N_SHARDS,
        config=NousConfig(**CONFIG),
        service_config=ServiceConfig(
            auto_start=True, max_batch=N_ARTICLES, max_delay=0.01
        ),
    )
    t0 = time.perf_counter()
    tickets = cluster.submit_many(articles)
    cluster.flush()
    elapsed = time.perf_counter() - t0
    envelopes = [t.result(timeout=0) for t in tickets]
    assert all(env.ok for env in envelopes)
    accepted = sum(env.payload["accepted"] for env in envelopes)
    stats = cluster.partition_stats()
    routed = list(cluster.documents_routed)
    documents = cluster.documents_ingested
    cluster.close()
    return elapsed, accepted, documents, stats, routed


def test_sharded_ingest_speedup():
    # Best-of-2 fresh runs per path: ingestion mutates state, so each
    # run needs its own system; the min damps scheduler noise.
    runs_single = [_timed_single() for _ in range(2)]
    runs_sharded = [_timed_sharded() for _ in range(2)]
    t_single, acc_single, docs_single = min(runs_single, key=lambda r: r[0])
    t_sharded, acc_sharded, docs_sharded, stats, routed = min(
        runs_sharded, key=lambda r: r[0]
    )

    speedup = t_single / t_sharded
    print(
        f"\nsingle ingest_batch:   {t_single:.3f}s "
        f"({acc_single} accepted facts, {docs_single} docs)"
    )
    print(
        f"sharded x{N_SHARDS} parallel:  {t_sharded:.3f}s "
        f"({acc_sharded} accepted facts, {docs_sharded} docs)"
    )
    print(f"speedup:               {speedup:.2f}x (gate {SHARDED_GATE}x)")
    print(f"documents per shard:   {routed}")
    print(
        "placement:             "
        f"cut={stats.cut_edges}/{stats.total_edges} "
        f"({stats.cut_fraction:.2f}), "
        f"vertex balance {stats.vertex_balance:.2f}, "
        f"edge balance {stats.edge_balance:.2f}"
    )
    record_bench(
        "sharded_ingest",
        articles=N_ARTICLES,
        shards=N_SHARDS,
        single_s=round(t_single, 4),
        sharded_s=round(t_sharded, 4),
        speedup=round(speedup, 3),
        gate=SHARDED_GATE,
        documents_per_shard=routed,
        cut_edges=stats.cut_edges,
        total_edges=stats.total_edges,
        cut_fraction=round(stats.cut_fraction, 4),
        vertex_balance=round(stats.vertex_balance, 4),
        edge_balance=round(stats.edge_balance, 4),
    )

    # equivalence: partitioning must not change what was accepted
    assert docs_single == docs_sharded == N_ARTICLES
    assert acc_single == acc_sharded, (
        f"accepted facts diverged: single {acc_single}, "
        f"sharded {acc_sharded}"
    )

    # placement sanity from PartitionStats
    assert sum(routed) == N_ARTICLES
    assert all(count > 0 for count in routed), routed
    assert stats.total_edges > 0
    assert 0.0 <= stats.cut_fraction <= 1.0
    assert 1.0 <= stats.vertex_balance <= float(N_SHARDS)

    assert speedup >= SHARDED_GATE, (
        f"sharded ingest speedup {speedup:.2f}x below gate "
        f"{SHARDED_GATE}x (single {t_single:.3f}s vs sharded "
        f"{t_sharded:.3f}s)"
    )


if __name__ == "__main__":
    test_sharded_ingest_speedup()
