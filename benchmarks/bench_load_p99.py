"""LOAD: closed-loop tail latency against a live gateway (ISSUE 8).

Two experiments gating the "parallel extraction + leaner wire" work:

1. **Closed-loop saturating load** — ``LOAD_CLIENTS`` threads drive a
   live :class:`NousGateway` as hard as they can (each client issues
   its next request the moment the previous response lands: a closed
   loop, so offered load tracks service capacity instead of stampeding
   past it).  The mix interleaves ingest with the standing query set.
   Per-class p50/p95/p99 land in ``BENCH_load_p99.json`` and the query
   p99 must stay under ``BENCH_P99_GATE_MS`` — tail latency, not the
   mean, is what a refactor of the hot path degrades first.
2. **Bytes on the wire** — the trending *full-view* scatter (whole
   support tables as subscribe frames) re-encoded exactly as the
   server's per-frame gzip writes it.  The acceptance gate is a >= 3x
   reduction, measured deterministically (``mtime=0``, one
   stream-spanning compressor), so it holds on any machine.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
import zlib

from conftest import record_bench

from repro import (
    CorpusConfig,
    NousConfig,
    NousService,
    ServiceConfig,
    build_drone_kb,
    generate_corpus,
    generate_descriptions,
)
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.http.protocol import encode_frame

SEED = 7
N_ARTICLES = 120
LOAD_CLIENTS = int(os.environ.get("BENCH_LOAD_CLIENTS", "6"))
LOAD_SECONDS = float(os.environ.get("BENCH_LOAD_SECONDS", "6.0"))
_CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
# Tail-latency gate on the query class, in milliseconds.  The tail is
# the cold path-search queries re-running after every stamp move; with
# several cores they overlap the other clients, on a starved host they
# serialize behind them, so the default degrades with core count (CI
# pins its own value via env var either way).
P99_GATE_MS = float(
    os.environ.get(
        "BENCH_P99_GATE_MS", "2500" if _CORES >= 4 else "15000"
    )
)
WIRE_REDUCTION_GATE = 3.0  # deterministic, so never relaxed

QUERY_MIX = [
    "tell me about DJI",
    "how is GoPro related to DJI",
    "match (?a:Company)-[acquired]->(?b:Company)",
    "tell me about Amazon",
    "what's new about DJI",
    "how is Amazon related to Google",
]
INGEST_EVERY = 5  # one ingest per this many operations, per client


def _build_service() -> NousService:
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=N_ARTICLES, seed=SEED)
    )
    generate_descriptions(kb, seed=SEED)
    service = NousService(
        kb=kb,
        config=NousConfig(window_size=300, seed=SEED),
        service_config=ServiceConfig(max_delay=0.01),
    )
    service.submit_many(articles)
    service.flush()
    return service


def _percentile(samples, q):
    """Nearest-rank percentile on a sorted copy (no interpolation:
    tail gates should reflect a latency that actually happened)."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _ms(seconds):
    return round(seconds * 1000.0, 2)


def test_closed_loop_tail_latency_under_gate():
    service = _build_service()
    try:
        with NousGateway(service) as gateway:
            # Warm every query class so the harness measures steady
            # state, not first-touch topic fitting.
            for text in QUERY_MIX:
                assert service.query(text).ok

            latencies = {"query": [], "ingest": []}
            lock = threading.Lock()
            errors = []
            stop_at = time.perf_counter() + LOAD_SECONDS

            def client_loop(client_id):
                local = {"query": [], "ingest": []}
                try:
                    with ClientSession(gateway.url, timeout=120.0) as session:
                        op = 0
                        while time.perf_counter() < stop_at:
                            if op % INGEST_EVERY == INGEST_EVERY - 1:
                                text = (
                                    f"DJI acquired LoadCo_{client_id} in May "
                                    f"2016. Amazon tested delivery run "
                                    f"{client_id}-{op}."
                                )
                                t0 = time.perf_counter()
                                ok = session.ingest(
                                    text,
                                    doc_id=f"load-{client_id}-{op}",
                                    date="2016-05-02",
                                    source="bench",
                                ).ok
                                local["ingest"].append(
                                    time.perf_counter() - t0
                                )
                            else:
                                text = QUERY_MIX[op % len(QUERY_MIX)]
                                t0 = time.perf_counter()
                                ok = session.query(text).ok
                                local["query"].append(
                                    time.perf_counter() - t0
                                )
                            if not ok:
                                raise AssertionError(
                                    f"envelope not ok for {text!r}"
                                )
                            op += 1
                except Exception as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)
                with lock:
                    latencies["query"].extend(local["query"])
                    latencies["ingest"].extend(local["ingest"])

            t0 = time.perf_counter()
            clients = [
                threading.Thread(target=client_loop, args=(i,), daemon=True)
                for i in range(LOAD_CLIENTS)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=LOAD_SECONDS + 300.0)
            elapsed = time.perf_counter() - t0
            assert not any(t.is_alive() for t in clients), "client deadlock"
            service.flush(timeout=120.0)

        assert not errors, errors
        queries, ingests = latencies["query"], latencies["ingest"]
        assert queries and ingests, "the loop must exercise both classes"
        total_ops = len(queries) + len(ingests)

        report = {
            "clients": LOAD_CLIENTS,
            "duration_s": round(elapsed, 2),
            "ops_total": total_ops,
            "throughput_ops_s": round(total_ops / elapsed, 1),
            "query_ops": len(queries),
            "query_p50_ms": _ms(_percentile(queries, 0.50)),
            "query_p95_ms": _ms(_percentile(queries, 0.95)),
            "query_p99_ms": _ms(_percentile(queries, 0.99)),
            "query_mean_ms": _ms(statistics.fmean(queries)),
            "ingest_ops": len(ingests),
            "ingest_p50_ms": _ms(_percentile(ingests, 0.50)),
            "ingest_p95_ms": _ms(_percentile(ingests, 0.95)),
            "ingest_p99_ms": _ms(_percentile(ingests, 0.99)),
            "p99_gate_ms": P99_GATE_MS,
            "cores": _CORES,
        }
        print(
            f"\nclosed loop: {LOAD_CLIENTS} clients, {elapsed:.1f}s, "
            f"{total_ops} ops ({report['throughput_ops_s']} ops/s)\n"
            f"query  p50 {report['query_p50_ms']} ms  "
            f"p95 {report['query_p95_ms']} ms  "
            f"p99 {report['query_p99_ms']} ms\n"
            f"ingest p50 {report['ingest_p50_ms']} ms  "
            f"p95 {report['ingest_p95_ms']} ms  "
            f"p99 {report['ingest_p99_ms']} ms"
        )
        record_bench("load_p99", **report)
        assert report["query_p99_ms"] <= P99_GATE_MS, (
            f"query p99 {report['query_p99_ms']} ms over the "
            f"{P99_GATE_MS} ms gate"
        )
    finally:
        service.close()


def test_trending_full_view_wire_bytes_reduced():
    service = _build_service()
    try:
        with NousGateway(service) as gateway:
            with ClientSession(gateway.url, timeout=60.0) as session:
                with session.subscribe(
                    "show trending patterns",
                    snapshot=True,
                    trending_full_view=True,
                    max_seconds=0.5,
                    include_heartbeats=True,
                ) as stream:
                    frames = list(stream)
        assert frames and frames[0]["event"] == "subscribed"
        assert frames[0].get("rows"), "full view must carry the table"

        # Re-encode the captured frames exactly as the server writes
        # them: one stream-spanning compressor, one sync flush per
        # frame (deterministic — no timestamps involved).
        plain = [encode_frame(frame) for frame in frames]
        plain_bytes = sum(len(line) for line in plain)
        compressor = zlib.compressobj(6, zlib.DEFLATED, 31)
        gzip_bytes_total = 0
        for line in plain:
            gzip_bytes_total += len(
                compressor.compress(line)
                + compressor.flush(zlib.Z_SYNC_FLUSH)
            )
        gzip_bytes_total += len(compressor.flush(zlib.Z_FINISH))
        reduction = plain_bytes / gzip_bytes_total

        print(
            f"\ntrending full view: {len(frames)} frames, "
            f"{plain_bytes} B identity -> {gzip_bytes_total} B gzip "
            f"({reduction:.1f}x smaller)"
        )
        record_bench(
            "wire_bytes",
            frames=len(frames),
            identity_bytes=plain_bytes,
            gzip_bytes=gzip_bytes_total,
            reduction=round(reduction, 2),
            gate=WIRE_REDUCTION_GATE,
        )
        assert reduction >= WIRE_REDUCTION_GATE, (
            f"gzip only {reduction:.2f}x smaller on the trending "
            f"full view (gate {WIRE_REDUCTION_GATE}x)"
        )
    finally:
        service.close()
