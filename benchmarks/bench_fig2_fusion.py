"""FIG2: the fused knowledge graph (curated + extracted, with per-fact
confidence from link prediction).

Figure 2 of the paper shows a drone KG where red edges come from YAGO2,
blue edges from WSJ articles, each extracted fact carrying a probability
from the Link Prediction module.  This bench regenerates that artifact:
it builds the fused KG from the synthetic stream and reports the
curated/extracted split and the confidence distribution of extracted
facts; the benchmark measures the full construction pipeline.
"""

from __future__ import annotations

import pytest

from repro import (
    CorpusConfig,
    Nous,
    NousConfig,
    build_drone_kb,
    generate_corpus,
)


def build_fused_system(n_articles: int = 60, seed: int = 7) -> Nous:
    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=n_articles, seed=seed))
    nous = Nous(kb=kb, config=NousConfig(seed=seed, retrain_every=100))
    nous.ingest_corpus(articles)
    return nous


def test_fusion_shape(built_system):
    """Both provenances present; extracted confidences spread below 1.0."""
    stats = built_system.statistics()
    print(f"\ncurated={stats.curated_facts} extracted={stats.extracted_facts}")
    print(f"mean extracted confidence: {stats.mean_extracted_confidence:.3f}")
    histogram = stats.confidence_histogram
    print("confidence histogram:", histogram)
    assert stats.curated_facts > 0
    assert stats.extracted_facts > 0
    assert 0.2 < stats.mean_extracted_confidence < 0.95
    # extracted facts spread over more than one confidence bucket
    extracted_buckets = sum(1 for count in histogram[:9] if count > 0)
    assert extracted_buckets >= 3


def test_fused_graph_carries_figure2_legend(built_system):
    """The property-graph view distinguishes red (curated) vs blue
    (extracted) edges with confidences, as in Figure 2."""
    graph = built_system.dynamic.graph_view()
    curated = [e for e in graph.edges() if e.props.get("curated")]
    extracted = [e for e in graph.edges() if not e.props.get("curated")]
    assert curated and extracted
    assert all(0 < e.props["confidence"] <= 1 for e in extracted)
    # Figure 2 entities are present and connected
    for entity in ["DJI", "Windermere", "Amazon"]:
        assert graph.has_vertex(entity)


def test_benchmark_fused_construction(benchmark):
    """Benchmark: full construction pipeline over 60 articles."""
    result = benchmark.pedantic(build_fused_system, rounds=3, iterations=1)
    assert result.statistics().extracted_facts > 0
