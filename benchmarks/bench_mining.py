"""DISTRIBUTED MINING: aggregate exchange vs shipping every window.

The ``mine_embeddings`` job's reason to exist, priced in bytes on the
wire.  Exact cross-shard trending needs the coordinator to see every
embedding, and the no-protocol fallback is ``ship-all-edges``: pull
every shard's whole partition centrally (``edge_dump``, the same
baseline the path-search benchmark prices) and re-run a monolith miner
over the rebuilt graph — paying for the replicated curated base once
**per shard**.  The job instead ships per-shard **aggregate** support
state (embedding counts + variable images, already folded by each
shard's streaming miner) plus only the window edges incident to
boundary vertices — the ones a cross-shard embedding can actually
touch — and never ships a curated edge at all (windows are
extracted-only).

Gates (both measured through the same :class:`ComputeStats` byte
accounting the ``/v1/stats`` counters use):

1. **Exactness first**: the distributed supports equal a monolith
   miner's over the same corpus — a cheap wire is worthless if it
   drops embeddings.
2. The enumeration moves fewer bytes than ship-all-edges at N=2 *and*
   N=4, and the margin **widens** from N=2 to N=4: replication cost
   scales with the cluster, aggregate + boundary exchange does not
   (star-shaped fact clusters co-locate by subject routing, so the
   boundary slice stays far below the full window).
"""

from __future__ import annotations

import os

from conftest import record_bench

from repro import (
    NousConfig,
    NousService,
    ServiceConfig,
    ShardedNousService,
    build_drone_kb,
)
from repro.compute import ComputeCoordinator, ComputeStats, DistributedMiner

N_SMALL = 2
N_LARGE = 4
N_HUBS = 12
N_SPOKES = 10
BYTES_GATE = float(os.environ.get("BENCH_MINING_BYTES_GATE", "1.0"))

CONFIG = NousConfig(
    window_size=10_000, min_support=2, lda_iterations=10,
    retrain_every=0, seed=7,
)

_DIGIT_NAMES = "ABCDEFGHIJ"


def _name(prefix: str, i: int) -> str:
    return prefix + "_" + "_".join(_DIGIT_NAMES[int(d)] for d in str(i))


def _facts():
    """Star clusters joined by a hub chain: each hub's spokes co-locate
    (subject routing), the chain's 2-edge patterns straddle shards —
    realistic window shape, small boundary, real cross-shard work."""
    facts = []
    for h in range(N_HUBS):
        hub = _name("Hub", h)
        for j in range(N_SPOKES):
            facts.append((hub, f"rel{_DIGIT_NAMES[j % 3]}", _name(f"Spoke{h}", j)))
        facts.append((hub, "feeds", _name("Hub", (h + 1) % N_HUBS)))
    return facts


def _reference_supports(facts):
    mono = NousService(
        kb=build_drone_kb(),
        config=CONFIG,
        service_config=ServiceConfig(auto_start=False),
    )
    try:
        assert mono.ingest_facts(facts, date="2015-06-01").ok
        return {
            pattern: min(len(images[var]) for var in pattern.variables())
            for pattern, _count, images
            in mono.nous.dynamic.miner.support_state()
        }
    finally:
        mono.close()


def _measure(facts, num_shards):
    cluster = ShardedNousService(
        num_shards=num_shards,
        config=CONFIG,
        service_config=ServiceConfig(auto_start=False),
        kb_spec="drone",  # replicated curated base: the shipping cost
    )
    try:
        assert cluster.ingest_facts(facts, date="2015-06-01").ok

        # Private stats per measurement: the cluster's own shared
        # counters must not leak unrelated traffic into the comparison.
        mine_stats = ComputeStats()
        outcome = DistributedMiner(
            ComputeCoordinator(cluster.shards, stats=mine_stats)
        ).mine()
        mine = mine_stats.to_dict()

        ship_stats = ComputeStats()
        ComputeCoordinator(cluster.shards, stats=ship_stats).ship_everything()
        ship = ship_stats.to_dict()
    finally:
        cluster.close()
    return outcome, {
        "shards": num_shards,
        "mine_bytes": mine["cross_shard_bytes"],
        "mine_supersteps": mine["supersteps"],
        "mine_messages": mine["messages"],
        "ship_bytes": ship["cross_shard_bytes"],
        "margin": ship["cross_shard_bytes"] / mine["cross_shard_bytes"],
    }


def test_aggregate_exchange_beats_shipping_windows():
    facts = _facts()
    reference = _reference_supports(facts)

    runs = {}
    for num_shards in (N_SMALL, N_LARGE):
        outcome, run = _measure(facts, num_shards)
        runs[num_shards] = run
        print(
            f"\nN={run['shards']}: mine_embeddings {run['mine_bytes']:,} "
            f"bytes over {run['mine_supersteps']} supersteps "
            f"({run['mine_messages']} messages) vs ship-all-edges "
            f"{run['ship_bytes']:,} bytes -> margin {run['margin']:.2f}x"
        )
        # Gate 1: the cheap wire is also the *exact* wire.
        assert outcome.supports == reference, (
            f"distributed supports diverged from the monolith at "
            f"N={num_shards}"
        )

    widening = runs[N_LARGE]["margin"] / runs[N_SMALL]["margin"]
    print(f"margin widening N={N_SMALL} -> N={N_LARGE}: {widening:.3f}x")

    record_bench(
        "mining",
        facts=len(facts),
        patterns=len(reference),
        small=runs[N_SMALL],
        large=runs[N_LARGE],
        margin_widening=round(widening, 4),
    )

    # Gate 2: aggregate + boundary exchange undercuts shipping the
    # partitions at both widths, and the margin widens with N —
    # replication cost scales with the cluster, the boundary does not.
    for num_shards, run in runs.items():
        assert run["mine_bytes"] * BYTES_GATE < run["ship_bytes"], run
    assert runs[N_LARGE]["margin"] > runs[N_SMALL]["margin"], runs


if __name__ == "__main__":
    test_aggregate_exchange_beats_shipping_windows()
