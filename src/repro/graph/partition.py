"""Logical partitioning of the property graph.

NOUS runs on Spark/GraphX where the graph is split across executors; here a
:class:`HashPartitioner` assigns vertices to logical partitions and
:class:`PartitionStats` measures the placement quality (balance, edge cut)
so that the same design concerns remain observable in a single process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.property_graph import PropertyGraph


def _stable_hash(value: Hashable) -> int:
    """Deterministic hash across processes (``hash()`` is salted for str)."""
    # bool is an int subclass: without this check True/False would fall
    # into the integer fast path and collapse onto partitions 1/0
    # regardless of content; hash their text form instead.
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    text = value if isinstance(value, str) else repr(value)
    # FNV-1a, 64-bit: simple, fast, deterministic.
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class HashPartitioner:
    """Assign hashable ids to ``num_partitions`` buckets deterministically."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Hashable) -> int:
        """Return the partition index for ``key`` in ``[0, num_partitions)``."""
        return _stable_hash(key) % self.num_partitions


@dataclass
class PartitionStats:
    """Placement statistics for a partitioned graph.

    Attributes:
        vertex_counts: Vertices per partition.
        edge_counts: Edges per partition (edges live with their source).
        cut_edges: Number of edges whose endpoints live on different
            partitions — the communication cost proxy for Pregel supersteps.
    """

    vertex_counts: List[int]
    edge_counts: List[int]
    cut_edges: int

    @property
    def total_edges(self) -> int:
        return sum(self.edge_counts)

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges crossing partitions (0 when the graph is empty)."""
        total = self.total_edges
        return self.cut_edges / total if total else 0.0

    @staticmethod
    def _balance(counts: List[int]) -> float:
        """Max/mean load ratio; 1.0 is perfectly balanced."""
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    @property
    def vertex_balance(self) -> float:
        """Max/mean vertex load ratio; 1.0 is perfectly balanced."""
        return self._balance(self.vertex_counts)

    @property
    def edge_balance(self) -> float:
        """Max/mean edge load ratio; 1.0 is perfectly balanced."""
        return self._balance(self.edge_counts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering for wire payloads and benchmark reports."""
        return {
            "vertex_counts": list(self.vertex_counts),
            "edge_counts": list(self.edge_counts),
            "cut_edges": self.cut_edges,
            "cut_fraction": round(self.cut_fraction, 6),
            "vertex_balance": round(self.vertex_balance, 6),
            "edge_balance": round(self.edge_balance, 6),
        }


def compute_partition_stats(graph: "PropertyGraph") -> PartitionStats:
    """Measure the current placement of ``graph`` under its partitioner."""
    n = graph.partitioner.num_partitions
    vertex_counts = [0] * n
    edge_counts = [0] * n
    cut = 0
    for vid in graph.vertices():
        vertex_counts[graph.partition_of_vertex(vid)] += 1
    for edge in graph.edges():
        edge_counts[graph.partition_of_edge(edge)] += 1
        if graph.partition_of_vertex(edge.src) != graph.partition_of_vertex(edge.dst):
            cut += 1
    return PartitionStats(
        vertex_counts=vertex_counts, edge_counts=edge_counts, cut_edges=cut
    )
