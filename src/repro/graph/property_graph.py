"""In-memory directed property multigraph with incremental indexes.

The data model mirrors GraphX's ``Graph[VD, ED]``: every vertex and every
edge carries an arbitrary dictionary of properties, edges are directed and
labelled, and parallel edges between the same pair of vertices are allowed
(they receive distinct edge ids).  On top of the raw storage the class
exposes the *triplet view* (``(src properties, edge, dst properties)``)
that GraphX programs are written against.

Every secondary access path is backed by an index that is maintained
incrementally on ``add_edge`` / ``remove_edge`` — never by rescanning the
edge list:

- **label index**: label -> edge ids (``edges_with_label``, ``find_edges``);
- **per-vertex label adjacency**: (vertex, label) -> out/in edge ids
  (``out_edges(v, label=...)`` / ``in_edges(v, label=...)``);
- **pair index**: (src, dst) -> edge ids (``edges_between``);
- **refcounted neighbour maps**: ``successors`` / ``predecessors`` /
  ``neighbors`` without materialising edge objects.

A monotonic :attr:`version` counter is bumped on every mutation so callers
(materialised views, query-result caches) can cheaply detect staleness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.graph.partition import HashPartitioner

VertexId = Hashable


@dataclass
class Edge:
    """A directed, labelled edge with a property map.

    Attributes:
        eid: Unique integer id assigned by the owning graph.
        src: Source vertex id.
        dst: Destination vertex id.
        label: Edge label (the predicate, for knowledge-graph edges).
        props: Arbitrary key/value properties.
    """

    eid: int
    src: VertexId
    dst: VertexId
    label: str
    props: Dict[str, Any] = field(default_factory=dict)

    def endpoints(self) -> Tuple[VertexId, VertexId]:
        """Return ``(src, dst)``."""
        return (self.src, self.dst)

    def other(self, vertex: VertexId) -> VertexId:
        """Return the endpoint that is not ``vertex``.

        Raises:
            ValueError: if ``vertex`` is not an endpoint of this edge.
        """
        if vertex == self.src:
            return self.dst
        if vertex == self.dst:
            return self.src
        raise ValueError(f"{vertex!r} is not an endpoint of edge {self.eid}")


@dataclass
class Triplet:
    """GraphX-style triplet view: an edge together with endpoint properties."""

    edge: Edge
    src_props: Dict[str, Any]
    dst_props: Dict[str, Any]

    @property
    def src(self) -> VertexId:
        return self.edge.src

    @property
    def dst(self) -> VertexId:
        return self.edge.dst

    @property
    def label(self) -> str:
        return self.edge.label


class PropertyGraph:
    """Directed property multigraph with hash partitioning.

    Args:
        num_partitions: Number of logical partitions used to simulate a
            distributed edge-cut placement.  Affects only bookkeeping and
            statistics, never results.
    """

    def __init__(self, num_partitions: int = 4) -> None:
        self._vertices: Dict[VertexId, Dict[str, Any]] = {}
        self._edges: Dict[int, Edge] = {}
        self._out: Dict[VertexId, Set[int]] = {}
        self._in: Dict[VertexId, Set[int]] = {}
        # incremental secondary indexes (see module docstring)
        self._label_index: Dict[str, Set[int]] = {}
        self._out_by_label: Dict[VertexId, Dict[str, Set[int]]] = {}
        self._in_by_label: Dict[VertexId, Dict[str, Set[int]]] = {}
        self._pair_index: Dict[Tuple[VertexId, VertexId], Set[int]] = {}
        self._succ: Dict[VertexId, Dict[VertexId, int]] = {}  # refcounts
        self._pred: Dict[VertexId, Dict[VertexId, int]] = {}
        self._eid_counter = itertools.count()
        self.partitioner = HashPartitioner(num_partitions)
        self.version = 0

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(
        self, vertex_id: VertexId, strict: bool = False, **props: Any
    ) -> VertexId:
        """Add a vertex, merging properties if it already exists.

        Args:
            vertex_id: Any hashable id.
            strict: If true, raise :class:`DuplicateVertexError` when the
                vertex already exists instead of merging properties.
            **props: Properties to set on the vertex.

        Returns:
            The vertex id, for chaining.
        """
        if vertex_id in self._vertices:
            if strict:
                raise DuplicateVertexError(vertex_id)
            self._vertices[vertex_id].update(props)
            self.version += 1
            return vertex_id
        self._vertices[vertex_id] = dict(props)
        self._out[vertex_id] = set()
        self._in[vertex_id] = set()
        self._out_by_label[vertex_id] = {}
        self._in_by_label[vertex_id] = {}
        self._succ[vertex_id] = {}
        self._pred[vertex_id] = {}
        self.version += 1
        return vertex_id

    def has_vertex(self, vertex_id: VertexId) -> bool:
        """Return whether ``vertex_id`` is present."""
        return vertex_id in self._vertices

    def vertex_props(self, vertex_id: VertexId) -> Dict[str, Any]:
        """Return the (live) property dict of a vertex.

        Note: mutating the returned dict directly does not bump
        :attr:`version`; use :meth:`set_vertex_prop` when staleness
        detection matters.

        Raises:
            VertexNotFoundError: if the vertex does not exist.
        """
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def set_vertex_prop(self, vertex_id: VertexId, key: str, value: Any) -> None:
        """Set one property on a vertex."""
        self.vertex_props(vertex_id)[key] = value
        self.version += 1

    def remove_vertex(self, vertex_id: VertexId) -> None:
        """Remove a vertex and all incident edges.

        Raises:
            VertexNotFoundError: if the vertex does not exist.
        """
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        for eid in list(self._out[vertex_id] | self._in[vertex_id]):
            self.remove_edge(eid)
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]
        del self._out_by_label[vertex_id]
        del self._in_by_label[vertex_id]
        del self._succ[vertex_id]
        del self._pred[vertex_id]
        self.version += 1

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids."""
        return iter(self._vertices)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(
        self, src: VertexId, dst: VertexId, label: str, **props: Any
    ) -> int:
        """Add a directed edge, creating missing endpoints implicitly.

        Returns:
            The new edge id.
        """
        if src not in self._vertices:
            self.add_vertex(src)
        if dst not in self._vertices:
            self.add_vertex(dst)
        eid = next(self._eid_counter)
        edge = Edge(eid=eid, src=src, dst=dst, label=label, props=dict(props))
        self._edges[eid] = edge
        self._out[src].add(eid)
        self._in[dst].add(eid)
        self._label_index.setdefault(label, set()).add(eid)
        self._out_by_label[src].setdefault(label, set()).add(eid)
        self._in_by_label[dst].setdefault(label, set()).add(eid)
        self._pair_index.setdefault((src, dst), set()).add(eid)
        self._succ[src][dst] = self._succ[src].get(dst, 0) + 1
        self._pred[dst][src] = self._pred[dst].get(src, 0) + 1
        self.version += 1
        return eid

    def edge(self, eid: int) -> Edge:
        """Return the edge with id ``eid``.

        Raises:
            EdgeNotFoundError: if no such edge exists.
        """
        try:
            return self._edges[eid]
        except KeyError:
            raise EdgeNotFoundError(eid) from None

    def has_edge(self, eid: int) -> bool:
        return eid in self._edges

    def remove_edge(self, eid: int) -> Edge:
        """Remove and return the edge with id ``eid``.

        Raises:
            EdgeNotFoundError: if no such edge exists.
        """
        if eid not in self._edges:
            raise EdgeNotFoundError(eid)
        edge = self._edges.pop(eid)
        self._out[edge.src].discard(eid)
        self._in[edge.dst].discard(eid)
        label_eids = self._label_index[edge.label]
        label_eids.discard(eid)
        if not label_eids:
            del self._label_index[edge.label]
        self._discard_labelled(self._out_by_label[edge.src], edge.label, eid)
        self._discard_labelled(self._in_by_label[edge.dst], edge.label, eid)
        pair = (edge.src, edge.dst)
        pair_eids = self._pair_index[pair]
        pair_eids.discard(eid)
        if not pair_eids:
            del self._pair_index[pair]
        self._decref(self._succ[edge.src], edge.dst)
        self._decref(self._pred[edge.dst], edge.src)
        self.version += 1
        return edge

    def update_edge_props(self, eid: int, **props: Any) -> None:
        """Merge properties onto an existing edge (version-stamped).

        Raises:
            EdgeNotFoundError: if no such edge exists.
        """
        self.edge(eid).props.update(props)
        self.version += 1

    @staticmethod
    def _discard_labelled(
        by_label: Dict[str, Set[int]], label: str, eid: int
    ) -> None:
        eids = by_label.get(label)
        if eids is None:
            return
        eids.discard(eid)
        if not eids:
            del by_label[label]

    @staticmethod
    def _decref(counts: Dict[VertexId, int], key: VertexId) -> None:
        remaining = counts.get(key, 0) - 1
        if remaining <= 0:
            counts.pop(key, None)
        else:
            counts[key] = remaining

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(
        self, vertex_id: VertexId, label: Optional[str] = None
    ) -> List[Edge]:
        """Edges leaving ``vertex_id``, optionally restricted to a label."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        if label is None:
            return [self._edges[eid] for eid in self._out[vertex_id]]
        eids = self._out_by_label[vertex_id].get(label, ())
        return [self._edges[eid] for eid in eids]

    def in_edges(
        self, vertex_id: VertexId, label: Optional[str] = None
    ) -> List[Edge]:
        """Edges entering ``vertex_id``, optionally restricted to a label."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        if label is None:
            return [self._edges[eid] for eid in self._in[vertex_id]]
        eids = self._in_by_label[vertex_id].get(label, ())
        return [self._edges[eid] for eid in eids]

    def incident_edges(self, vertex_id: VertexId) -> List[Edge]:
        """All edges touching ``vertex_id`` (in either direction)."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        eids = self._out[vertex_id] | self._in[vertex_id]
        return [self._edges[eid] for eid in eids]

    def edges_between(self, src: VertexId, dst: VertexId) -> List[Edge]:
        """All directed edges from ``src`` to ``dst`` (parallel edges kept)."""
        return [self._edges[eid] for eid in self._pair_index.get((src, dst), ())]

    def edges_with_label(self, label: str) -> List[Edge]:
        """All edges carrying ``label`` (index lookup, no scan)."""
        return [self._edges[eid] for eid in self._label_index.get(label, ())]

    def labels(self) -> Set[str]:
        """Distinct edge labels currently present."""
        return set(self._label_index)

    def label_count(self, label: str) -> int:
        """Number of edges carrying ``label`` (O(1))."""
        return len(self._label_index.get(label, ()))

    def find_edges(
        self,
        label: Optional[str] = None,
        predicate: Optional[Callable[[Edge], bool]] = None,
    ) -> Iterator[Edge]:
        """Iterate over edges filtered by label and/or an arbitrary predicate.

        A label filter is answered from the label index; only the arbitrary
        ``predicate`` requires touching candidate edges.
        """
        if label is not None:
            candidates: Iterable[Edge] = (
                self._edges[eid] for eid in self._label_index.get(label, ())
            )
        else:
            candidates = self._edges.values()
        for edge in candidates:
            if predicate is not None and not predicate(edge):
                continue
            yield edge

    # ------------------------------------------------------------------
    # degrees / neighbours
    # ------------------------------------------------------------------
    def out_degree(self, vertex_id: VertexId) -> int:
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return len(self._out[vertex_id])

    def in_degree(self, vertex_id: VertexId) -> int:
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return len(self._in[vertex_id])

    def degree(self, vertex_id: VertexId) -> int:
        return self.out_degree(vertex_id) + self.in_degree(vertex_id)

    def successors(self, vertex_id: VertexId) -> Set[VertexId]:
        """Distinct vertices reachable over one out-edge."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return set(self._succ[vertex_id])

    def predecessors(self, vertex_id: VertexId) -> Set[VertexId]:
        """Distinct vertices with an edge into ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return set(self._pred[vertex_id])

    def neighbors(self, vertex_id: VertexId) -> Set[VertexId]:
        """Distinct adjacent vertices, ignoring direction."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        out = set(self._succ[vertex_id])
        out.update(self._pred[vertex_id])
        return out

    # ------------------------------------------------------------------
    # views / transforms
    # ------------------------------------------------------------------
    def triplets(self) -> Iterator[Triplet]:
        """Iterate over the GraphX-style triplet view."""
        for edge in self._edges.values():
            yield Triplet(
                edge=edge,
                src_props=self._vertices[edge.src],
                dst_props=self._vertices[edge.dst],
            )

    def subgraph(
        self,
        vertex_filter: Optional[Callable[[VertexId, Dict[str, Any]], bool]] = None,
        edge_filter: Optional[Callable[[Edge], bool]] = None,
    ) -> "PropertyGraph":
        """Return a new graph restricted by vertex and edge predicates.

        As in GraphX, an edge survives only if both endpoints survive *and*
        the edge predicate holds.  Properties are (shallow-)copied.
        """
        sub = PropertyGraph(num_partitions=self.partitioner.num_partitions)
        for vid, props in self._vertices.items():
            if vertex_filter is None or vertex_filter(vid, props):
                sub.add_vertex(vid, **props)
        for edge in self._edges.values():
            if not (sub.has_vertex(edge.src) and sub.has_vertex(edge.dst)):
                continue
            if edge_filter is None or edge_filter(edge):
                sub.add_edge(edge.src, edge.dst, edge.label, **edge.props)
        return sub

    def map_vertices(
        self, fn: Callable[[VertexId, Dict[str, Any]], Dict[str, Any]]
    ) -> "PropertyGraph":
        """Return a copy with vertex properties replaced by ``fn``'s output."""
        out = PropertyGraph(num_partitions=self.partitioner.num_partitions)
        for vid, props in self._vertices.items():
            out.add_vertex(vid, **fn(vid, props))
        for edge in self._edges.values():
            out.add_edge(edge.src, edge.dst, edge.label, **edge.props)
        return out

    def copy(self) -> "PropertyGraph":
        """Deep-enough copy: containers are fresh, property values shared."""
        out = PropertyGraph(num_partitions=self.partitioner.num_partitions)
        for vid, props in self._vertices.items():
            out.add_vertex(vid, **props)
        for edge in self._edges.values():
            out.add_edge(edge.src, edge.dst, edge.label, **edge.props)
        return out

    def reverse(self) -> "PropertyGraph":
        """Return a copy with every edge direction flipped."""
        out = PropertyGraph(num_partitions=self.partitioner.num_partitions)
        for vid, props in self._vertices.items():
            out.add_vertex(vid, **props)
        for edge in self._edges.values():
            out.add_edge(edge.dst, edge.src, edge.label, **edge.props)
        return out

    # ------------------------------------------------------------------
    # partitioning / misc
    # ------------------------------------------------------------------
    def partition_of_vertex(self, vertex_id: VertexId) -> int:
        """Logical partition this vertex is assigned to."""
        return self.partitioner.partition(vertex_id)

    def partition_of_edge(self, edge: Edge) -> int:
        """Edges are co-located with their source vertex (edge-cut model)."""
        return self.partitioner.partition(edge.src)

    def degree_histogram(self) -> Dict[int, int]:
        """Map degree -> number of vertices with that degree."""
        hist: Dict[int, int] = {}
        for vid in self._vertices:
            d = self.degree(vid)
            hist[d] = hist.get(d, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # invariants (debug / property-test hook)
    # ------------------------------------------------------------------
    def check_index_invariants(self) -> None:
        """Verify every secondary index against the raw edge list.

        Recomputes each index from scratch and compares; O(V + E), meant
        for tests and debugging, never for the hot path.

        Raises:
            AssertionError: on any index / edge-list inconsistency.
        """
        expected_label: Dict[str, Set[int]] = {}
        expected_pair: Dict[Tuple[VertexId, VertexId], Set[int]] = {}
        expected_out: Dict[VertexId, Set[int]] = {v: set() for v in self._vertices}
        expected_in: Dict[VertexId, Set[int]] = {v: set() for v in self._vertices}
        expected_out_label: Dict[VertexId, Dict[str, Set[int]]] = {
            v: {} for v in self._vertices
        }
        expected_in_label: Dict[VertexId, Dict[str, Set[int]]] = {
            v: {} for v in self._vertices
        }
        expected_succ: Dict[VertexId, Dict[VertexId, int]] = {
            v: {} for v in self._vertices
        }
        expected_pred: Dict[VertexId, Dict[VertexId, int]] = {
            v: {} for v in self._vertices
        }
        for eid, edge in self._edges.items():
            assert edge.eid == eid, f"edge id mismatch: {edge.eid} != {eid}"
            assert edge.src in self._vertices, f"dangling src {edge.src!r}"
            assert edge.dst in self._vertices, f"dangling dst {edge.dst!r}"
            expected_label.setdefault(edge.label, set()).add(eid)
            expected_pair.setdefault((edge.src, edge.dst), set()).add(eid)
            expected_out[edge.src].add(eid)
            expected_in[edge.dst].add(eid)
            expected_out_label[edge.src].setdefault(edge.label, set()).add(eid)
            expected_in_label[edge.dst].setdefault(edge.label, set()).add(eid)
            succ = expected_succ[edge.src]
            succ[edge.dst] = succ.get(edge.dst, 0) + 1
            pred = expected_pred[edge.dst]
            pred[edge.src] = pred.get(edge.src, 0) + 1
        assert self._out == expected_out, "out-edge sets diverge from edge list"
        assert self._in == expected_in, "in-edge sets diverge from edge list"
        assert self._label_index == expected_label, "label index diverges"
        assert self._pair_index == expected_pair, "pair index diverges"
        assert self._out_by_label == expected_out_label, "out-by-label diverges"
        assert self._in_by_label == expected_in_label, "in-by-label diverges"
        assert self._succ == expected_succ, "successor refcounts diverge"
        assert self._pred == expected_pred, "predecessor refcounts diverge"

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PropertyGraph(vertices={self.num_vertices}, "
            f"edges={self.num_edges}, partitions={self.partitioner.num_partitions})"
        )


def from_edge_list(
    edges: Iterable[Tuple[VertexId, str, VertexId]], num_partitions: int = 4
) -> PropertyGraph:
    """Build a graph from ``(src, label, dst)`` triples."""
    graph = PropertyGraph(num_partitions=num_partitions)
    for src, label, dst in edges:
        graph.add_edge(src, dst, label)
    return graph
