"""Graph-parallel primitives in the style of GraphX.

Two entry points:

- :func:`aggregate_messages` — one round of "send a message along every
  triplet, merge messages per destination vertex".
- :func:`pregel` — iterated bulk-synchronous message passing with vertex
  programs and convergence detection, matching ``GraphX.Pregel``.

Both operate on :class:`~repro.graph.property_graph.PropertyGraph` without
mutating it: vertex state lives in plain dictionaries owned by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.graph.property_graph import Edge, PropertyGraph

VertexId = Hashable
State = Any
Message = Any

# send_message receives (edge, src_state, dst_state) and yields
# (destination vertex id, message) pairs; it may message either endpoint.
SendFn = Callable[[Edge, State, State], Iterable[Tuple[VertexId, Message]]]
MergeFn = Callable[[Message, Message], Message]
VertexProgram = Callable[[VertexId, State, Message], State]


@dataclass
class PregelResult:
    """Outcome of a Pregel run.

    Attributes:
        states: Final vertex state map.
        supersteps: Number of supersteps executed (0 if it converged
            immediately).
        messages_per_step: Messages generated in each superstep; useful as
            a communication-cost proxy in benchmarks.
        cross_partition_messages: Messages whose source and destination
            vertices live on different logical partitions, per superstep.
        converged: True if the run stopped because no messages were
            produced (rather than hitting ``max_iterations``).
    """

    states: Dict[VertexId, State]
    supersteps: int
    messages_per_step: List[int] = field(default_factory=list)
    cross_partition_messages: List[int] = field(default_factory=list)
    converged: bool = True


def aggregate_messages(
    graph: PropertyGraph,
    send: SendFn,
    merge: MergeFn,
    states: Optional[Dict[VertexId, State]] = None,
    check_commutative: bool = False,
) -> Dict[VertexId, Message]:
    """Run one send/merge round over every edge of ``graph``.

    Args:
        graph: The graph to traverse.
        send: Called once per edge with ``(edge, src_state, dst_state)``;
            yields ``(vertex_id, message)`` pairs.
        merge: Commutative/associative combiner for messages addressed to
            the same vertex.
        states: Optional vertex-state map handed to ``send``; missing
            vertices see ``None``.
        check_commutative: Verify ``merge(a, b) == merge(b, a)`` at every
            combine and raise :class:`~repro.errors.ConfigError` on the
            first violation.  Merge order over a partitioned graph is an
            implementation detail, so a non-commutative combiner is a
            silent-corruption bug; enable this in tests.

    Returns:
        Map from vertex id to its merged message (vertices that received
        no message are absent).

    Raises:
        ConfigError: when ``check_commutative`` is set and ``merge`` is
            observed to be order-dependent.
    """
    states = states or {}
    inbox: Dict[VertexId, Message] = {}
    for edge in graph.edges():
        src_state = states.get(edge.src)
        dst_state = states.get(edge.dst)
        for target, message in send(edge, src_state, dst_state):
            if target in inbox:
                merged = merge(inbox[target], message)
                if check_commutative and merged != merge(message, inbox[target]):
                    raise ConfigError(
                        "aggregate_messages merge function is not commutative: "
                        f"merge(a, b) != merge(b, a) for messages to {target!r}"
                    )
                inbox[target] = merged
            else:
                inbox[target] = message
    return inbox


def pregel(
    graph: PropertyGraph,
    initial_state: Callable[[VertexId, Dict[str, Any]], State],
    vertex_program: VertexProgram,
    send: SendFn,
    merge: MergeFn,
    initial_message: Optional[Message] = None,
    max_iterations: int = 50,
) -> PregelResult:
    """Bulk-synchronous vertex-centric computation.

    Semantics follow GraphX: every vertex first runs ``vertex_program``
    on ``initial_message`` (when provided), then supersteps alternate
    message generation (only edges incident to *active* vertices fire)
    and vertex-program application (only vertices that received mail run;
    the rest stay inactive).  The run stops when no messages flow or after
    ``max_iterations`` supersteps.

    Args:
        graph: Input graph (not mutated).
        initial_state: Builds each vertex's starting state from its id and
            property map.
        vertex_program: ``(vertex_id, state, merged_message) -> new state``.
        send: Yields ``(target, message)`` pairs per edge; the edge fires
            when either endpoint changed state in the previous step.
        merge: Message combiner.
        initial_message: Message delivered to every vertex before the
            first superstep; ``None`` skips that phase.
        max_iterations: Superstep cap.

    Returns:
        A :class:`PregelResult`.
    """
    if max_iterations < 1:
        raise ConfigError(f"max_iterations must be >= 1, got {max_iterations}")

    states: Dict[VertexId, State] = {
        vid: initial_state(vid, graph.vertex_props(vid)) for vid in graph.vertices()
    }
    active = set(states)
    if initial_message is not None:
        for vid in states:
            states[vid] = vertex_program(vid, states[vid], initial_message)

    messages_per_step: List[int] = []
    cross_per_step: List[int] = []
    supersteps = 0
    converged = False

    for _ in range(max_iterations):
        inbox: Dict[VertexId, Message] = {}
        message_count = 0
        cross_count = 0
        for edge in graph.edges():
            if edge.src not in active and edge.dst not in active:
                continue
            for target, message in send(edge, states.get(edge.src), states.get(edge.dst)):
                message_count += 1
                # The sender is the endpoint *other than* the target: a
                # message to dst travels from src and vice versa.  (A
                # message to a third-party vertex is attributed to src.)
                sender = edge.other(target) if target in (edge.src, edge.dst) else edge.src
                if graph.partition_of_vertex(sender) != graph.partition_of_vertex(
                    target
                ):
                    cross_count += 1
                if target in inbox:
                    inbox[target] = merge(inbox[target], message)
                else:
                    inbox[target] = message
        if not inbox:
            converged = True
            break
        supersteps += 1
        messages_per_step.append(message_count)
        cross_per_step.append(cross_count)
        next_active = set()
        for vid, message in inbox.items():
            if vid not in states:
                continue
            new_state = vertex_program(vid, states[vid], message)
            if new_state != states[vid]:
                next_active.add(vid)
            states[vid] = new_state
        active = next_active
        if not active:
            converged = True
            break

    return PregelResult(
        states=states,
        supersteps=supersteps,
        messages_per_step=messages_per_step,
        cross_partition_messages=cross_per_step,
        converged=converged,
    )
