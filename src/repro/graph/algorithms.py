"""Classic graph algorithms on :class:`~repro.graph.property_graph.PropertyGraph`.

Connected components and PageRank are expressed through the Pregel
primitive (as GraphX implements them); traversals that are naturally
sequential (BFS, Dijkstra-style weighted search, k-hop expansion) use
direct adjacency access for clarity and speed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import VertexNotFoundError
from repro.graph.pregel import pregel
from repro.graph.property_graph import Edge, PropertyGraph

VertexId = Hashable


def connected_components(graph: PropertyGraph) -> Dict[VertexId, VertexId]:
    """Label each vertex with the minimum vertex id in its weak component.

    Implemented as min-label propagation under Pregel, as in GraphX's
    ``ConnectedComponents``.

    Returns:
        Map from vertex id to component label.
    """

    def init(vid: VertexId, _props: dict) -> VertexId:
        return vid

    def vprog(_vid: VertexId, state: VertexId, message: VertexId) -> VertexId:
        return min(state, message, key=_order_key)

    def send(edge: Edge, src_state: VertexId, dst_state: VertexId):
        if _order_key(src_state) < _order_key(dst_state):
            yield (edge.dst, src_state)
        elif _order_key(dst_state) < _order_key(src_state):
            yield (edge.src, dst_state)

    def merge(a: VertexId, b: VertexId) -> VertexId:
        return min(a, b, key=_order_key)

    result = pregel(
        graph,
        initial_state=init,
        vertex_program=vprog,
        send=send,
        merge=merge,
        max_iterations=max(graph.num_vertices, 1),
    )
    return result.states


def _order_key(vid: VertexId) -> Tuple[str, str]:
    """Total order over heterogeneous vertex ids (type name, then repr)."""
    return (type(vid).__name__, repr(vid))


def pagerank(
    graph: PropertyGraph,
    damping: float = 0.85,
    max_iterations: int = 30,
    tol: float = 1.0e-6,
) -> Dict[VertexId, float]:
    """Power-iteration PageRank over directed edges.

    Dangling mass is redistributed uniformly so ranks sum to ~1.0.

    Returns:
        Map from vertex id to rank.
    """
    n = graph.num_vertices
    if n == 0:
        return {}
    ranks = {vid: 1.0 / n for vid in graph.vertices()}
    out_deg = {vid: graph.out_degree(vid) for vid in graph.vertices()}
    for _ in range(max_iterations):
        contrib: Dict[VertexId, float] = {vid: 0.0 for vid in ranks}
        dangling = 0.0
        for vid, rank in ranks.items():
            if out_deg[vid] == 0:
                dangling += rank
                continue
            share = rank / out_deg[vid]
            for edge in graph.out_edges(vid):
                contrib[edge.dst] += share
        base = (1.0 - damping) / n + damping * dangling / n
        new_ranks = {vid: base + damping * contrib[vid] for vid in ranks}
        delta = sum(abs(new_ranks[v] - ranks[v]) for v in ranks)
        ranks = new_ranks
        if delta < tol:
            break
    return ranks


def bfs_distances(
    graph: PropertyGraph,
    source: VertexId,
    directed: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[VertexId, int]:
    """Hop distances from ``source`` (ignoring edge direction by default).

    Args:
        graph: The graph.
        source: Start vertex.
        directed: Follow out-edges only when true.
        max_depth: Stop expanding past this depth when given.

    Returns:
        Map from reached vertex id to hop count (source included at 0).

    Raises:
        VertexNotFoundError: if ``source`` is absent.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    dist: Dict[VertexId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        depth = dist[current]
        if max_depth is not None and depth >= max_depth:
            continue
        nbrs = graph.successors(current) if directed else graph.neighbors(current)
        for nbr in nbrs:
            if nbr not in dist:
                dist[nbr] = depth + 1
                queue.append(nbr)
    return dist


def shortest_path(
    graph: PropertyGraph,
    source: VertexId,
    target: VertexId,
    weight: Optional[Callable[[Edge], float]] = None,
    directed: bool = False,
) -> Optional[List[VertexId]]:
    """Dijkstra shortest path as a vertex list, or ``None`` if unreachable.

    Args:
        weight: Edge-cost function; defaults to 1 per hop.
        directed: Follow edge direction when true.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    cost = {source: 0.0}
    parent: Dict[VertexId, Optional[VertexId]] = {source: None}
    heap: List[Tuple[float, int, VertexId]] = [(0.0, 0, source)]
    counter = 1
    visited: Set[VertexId] = set()
    while heap:
        d, _, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == target:
            break
        edges = graph.out_edges(current)
        if not directed:
            edges = edges + graph.in_edges(current)
        for edge in edges:
            nbr = edge.dst if edge.src == current else edge.src
            w = weight(edge) if weight is not None else 1.0
            nd = d + w
            if nbr not in cost or nd < cost[nbr]:
                cost[nbr] = nd
                parent[nbr] = current
                heapq.heappush(heap, (nd, counter, nbr))
                counter += 1
    if target not in parent:
        return None
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def k_hop_neighborhood(
    graph: PropertyGraph, source: VertexId, k: int, directed: bool = False
) -> Set[VertexId]:
    """Vertices within ``k`` hops of ``source`` (source excluded)."""
    dist = bfs_distances(graph, source, directed=directed, max_depth=k)
    return {vid for vid, d in dist.items() if 0 < d <= k}


def triangle_count(graph: PropertyGraph) -> int:
    """Number of undirected triangles (direction and labels ignored)."""
    adjacency: Dict[VertexId, Set[VertexId]] = {
        vid: graph.neighbors(vid) - {vid} for vid in graph.vertices()
    }
    count = 0
    for vid, nbrs in adjacency.items():
        for u in nbrs:
            if _order_key(u) <= _order_key(vid):
                continue
            common = nbrs & adjacency[u]
            for w in common:
                if _order_key(w) > _order_key(u):
                    count += 1
    return count
