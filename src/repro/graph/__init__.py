"""Property-graph substrate.

This package replaces the role Apache Spark GraphX plays in the original
NOUS implementation: a property graph that stores arbitrary key/value
properties on vertices and edges, graph-parallel primitives
(:func:`~repro.graph.pregel.pregel` and
:func:`~repro.graph.pregel.aggregate_messages`), classic graph algorithms
built on those primitives, and a temporal :class:`~repro.graph.temporal.DynamicGraph`
that maintains a sliding window over a stream of timestamped edges.

The graph is logically partitioned (see :mod:`repro.graph.partition`) the
way a distributed edge-cut graph would be; partitioning is simulated
in-process but exercised by the same code paths so that statistics such as
edge cuts and per-partition load remain meaningful.
"""

from repro.graph.partition import HashPartitioner, PartitionStats
from repro.graph.property_graph import Edge, PropertyGraph, Triplet
from repro.graph.pregel import PregelResult, aggregate_messages, pregel
from repro.graph.temporal import CountWindow, DynamicGraph, TimeWindow, TimedEdge
from repro.graph.algorithms import (
    bfs_distances,
    connected_components,
    k_hop_neighborhood,
    pagerank,
    shortest_path,
    triangle_count,
)

__all__ = [
    "Edge",
    "PropertyGraph",
    "Triplet",
    "HashPartitioner",
    "PartitionStats",
    "pregel",
    "PregelResult",
    "aggregate_messages",
    "DynamicGraph",
    "TimedEdge",
    "CountWindow",
    "TimeWindow",
    "connected_components",
    "pagerank",
    "bfs_distances",
    "shortest_path",
    "k_hop_neighborhood",
    "triangle_count",
]
