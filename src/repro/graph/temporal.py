"""Dynamic (temporal) graph with sliding-window semantics.

NOUS's construction pipeline produces a *stream* of timestamped triples;
both the streaming miner (§3.5) and the trending queries operate on a
sliding window over that stream.  :class:`DynamicGraph` owns the window:
edges are appended with a timestamp, evicted when they fall out of the
window, and both events are published to subscribers so downstream
components (the miner, statistics) can maintain incremental state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Hashable, Iterator, List, Optional

from repro.errors import ConfigError
from repro.graph.property_graph import PropertyGraph

VertexId = Hashable


@dataclass(frozen=True)
class TimedEdge:
    """A timestamped, labelled edge as it travels through the window."""

    src: VertexId
    dst: VertexId
    label: str
    timestamp: float
    props: tuple = ()  # immutable (key, value) pairs

    def prop_dict(self) -> Dict[str, Any]:
        return dict(self.props)


class CountWindow:
    """Keep the most recent ``size`` edges."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigError(f"count window size must be >= 1, got {size}")
        self.size = size

    def expired(self, window: Deque[TimedEdge], _now: float) -> List[TimedEdge]:
        """Edges that must be evicted (oldest first)."""
        overflow = len(window) - self.size
        return list(window)[:overflow] if overflow > 0 else []

    def __repr__(self) -> str:  # pragma: no cover
        return f"CountWindow(size={self.size})"


class TimeWindow:
    """Keep edges whose timestamp is within ``span`` of the newest edge."""

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ConfigError(f"time window span must be > 0, got {span}")
        self.span = span

    def expired(self, window: Deque[TimedEdge], now: float) -> List[TimedEdge]:
        cutoff = now - self.span
        out = []
        for edge in window:
            if edge.timestamp < cutoff:
                out.append(edge)
            else:
                break  # edges arrive in timestamp order
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimeWindow(span={self.span})"


# Subscriber callbacks: on_add(edge), on_evict(edge).
AddListener = Callable[[TimedEdge], None]
EvictListener = Callable[[TimedEdge], None]


class DynamicGraph:
    """A property graph maintained over a sliding window of timed edges.

    The materialised :class:`PropertyGraph` always reflects exactly the
    edges currently inside the window; vertices are reference-counted and
    dropped once their last windowed edge is evicted (vertex properties —
    entity types, topic vectors — are re-appliable on re-entry because the
    caller supplies them per edge via ``vertex_props``).

    Args:
        window: A :class:`CountWindow` or :class:`TimeWindow` policy.
        num_partitions: Forwarded to the underlying property graph.
    """

    def __init__(self, window=None, num_partitions: int = 4) -> None:
        self.window = window or CountWindow(size=10_000)
        self.graph = PropertyGraph(num_partitions=num_partitions)
        self._window: Deque[TimedEdge] = deque()
        self._edge_ids: Dict[TimedEdge, List[int]] = {}
        self._vertex_refcount: Dict[VertexId, int] = {}
        self._add_listeners: List[AddListener] = []
        self._evict_listeners: List[EvictListener] = []
        self._last_timestamp: Optional[float] = None
        self.total_added = 0
        self.total_evicted = 0

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def on_add(self, listener: AddListener) -> None:
        """Subscribe to edge-arrival events."""
        self._add_listeners.append(listener)

    def on_evict(self, listener: EvictListener) -> None:
        """Subscribe to edge-eviction events."""
        self._evict_listeners.append(listener)

    # ------------------------------------------------------------------
    # stream ingestion
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: VertexId,
        dst: VertexId,
        label: str,
        timestamp: float,
        vertex_props: Optional[Dict[VertexId, Dict[str, Any]]] = None,
        **props: Any,
    ) -> TimedEdge:
        """Append one edge to the stream and evict anything now expired.

        Args:
            src: Subject vertex id.
            dst: Object vertex id.
            label: Edge label / predicate.
            timestamp: Monotonically non-decreasing stream time.
            vertex_props: Optional per-endpoint property maps applied when
                the endpoints (re-)enter the window.
            **props: Edge properties (confidence, source, ...).

        Returns:
            The stored :class:`TimedEdge`.

        Raises:
            ConfigError: if ``timestamp`` goes backwards.
        """
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ConfigError(
                f"timestamps must be non-decreasing: {timestamp} < {self._last_timestamp}"
            )
        self._last_timestamp = timestamp
        timed = TimedEdge(
            src=src,
            dst=dst,
            label=label,
            timestamp=timestamp,
            props=tuple(sorted(props.items())),
        )
        self._window.append(timed)
        self._retain_vertex(src, (vertex_props or {}).get(src))
        self._retain_vertex(dst, (vertex_props or {}).get(dst))
        eid = self.graph.add_edge(src, dst, label, timestamp=timestamp, **props)
        self._edge_ids.setdefault(timed, []).append(eid)
        self.total_added += 1
        for listener in self._add_listeners:
            listener(timed)
        self._evict_expired(timestamp)
        return timed

    def advance_time(self, now: float) -> int:
        """Advance stream time without adding an edge (time windows only).

        Returns:
            Number of edges evicted.
        """
        if self._last_timestamp is not None and now < self._last_timestamp:
            raise ConfigError(
                f"timestamps must be non-decreasing: {now} < {self._last_timestamp}"
            )
        self._last_timestamp = now
        return self._evict_expired(now)

    def _evict_expired(self, now: float) -> int:
        expired = self.window.expired(self._window, now)
        for timed in expired:
            self._window.popleft()
            eids = self._edge_ids.get(timed)
            if eids:
                eid = eids.pop()
                if not eids:
                    del self._edge_ids[timed]
                if self.graph.has_edge(eid):
                    self.graph.remove_edge(eid)
            self._release_vertex(timed.src)
            self._release_vertex(timed.dst)
            self.total_evicted += 1
            for listener in self._evict_listeners:
                listener(timed)
        return len(expired)

    def _retain_vertex(self, vid: VertexId, props: Optional[Dict[str, Any]]) -> None:
        self._vertex_refcount[vid] = self._vertex_refcount.get(vid, 0) + 1
        if props:
            self.graph.add_vertex(vid, **props)
        elif not self.graph.has_vertex(vid):
            self.graph.add_vertex(vid)

    def _release_vertex(self, vid: VertexId) -> None:
        count = self._vertex_refcount.get(vid, 0) - 1
        if count <= 0:
            self._vertex_refcount.pop(vid, None)
            if self.graph.has_vertex(vid):
                self.graph.remove_vertex(vid)
        else:
            self._vertex_refcount[vid] = count

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def window_edges(self) -> Iterator[TimedEdge]:
        """Iterate edges currently inside the window (oldest first)."""
        return iter(self._window)

    @property
    def window_size(self) -> int:
        return len(self._window)

    @property
    def version(self) -> int:
        """Monotonic stamp of window state: bumps on every add *and*
        every eviction (evictions change trending results too)."""
        return self.total_added + self.total_evicted

    @property
    def now(self) -> Optional[float]:
        """Latest stream timestamp seen so far."""
        return self._last_timestamp

    def snapshot(self) -> PropertyGraph:
        """An independent copy of the current windowed graph."""
        return self.graph.copy()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DynamicGraph(window={self.window!r}, live_edges={self.window_size}, "
            f"added={self.total_added}, evicted={self.total_evicted})"
        )
