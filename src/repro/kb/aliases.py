"""Alias dictionary: surface forms -> candidate entities with priors.

AIDA-style entity disambiguation starts from a mention-entity candidate
table with popularity priors; this class provides it, built either from
curated KB aliases or incrementally as new entities stream in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


def normalize_alias(text: str) -> str:
    """Canonical key for alias lookup: lowercase, collapsed spaces,
    determiners and trailing possessives stripped."""
    words = text.lower().replace("'s", " ").split()
    while words and words[0] in {"the", "a", "an"}:
        words = words[1:]
    return " ".join(words)


class AliasDictionary:
    """Bidirectional alias table with per-(alias, entity) counts.

    The count acts as the popularity prior: ``p(entity | alias)`` is the
    count normalised over all entities sharing the alias.
    """

    def __init__(self) -> None:
        self._alias_to_entities: Dict[str, Dict[str, int]] = {}
        self._entity_to_aliases: Dict[str, Set[str]] = {}
        # Monotonic mutation stamp, folded into KnowledgeBase.version so
        # alias changes invalidate query-result caches.
        self.version = 0

    def add(self, alias: str, entity: str, count: int = 1) -> None:
        """Register (or reinforce) an alias for an entity."""
        key = normalize_alias(alias)
        if not key:
            return
        slots = self._alias_to_entities.setdefault(key, {})
        slots[entity] = slots.get(entity, 0) + count
        self._entity_to_aliases.setdefault(entity, set()).add(key)
        self.version += 1

    def candidates(self, mention: str) -> List[Tuple[str, float]]:
        """Candidate entities for a mention with normalised priors.

        Returns:
            ``[(entity, prior)]`` sorted by descending prior; empty when
            the mention is unknown.
        """
        key = normalize_alias(mention)
        slots = self._alias_to_entities.get(key)
        if not slots:
            return []
        total = sum(slots.values())
        ranked = sorted(slots.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(entity, count / total) for entity, count in ranked]

    def aliases_of(self, entity: str) -> Set[str]:
        """All normalised aliases registered for an entity."""
        return set(self._entity_to_aliases.get(entity, set()))

    def is_known(self, mention: str) -> bool:
        return normalize_alias(mention) in self._alias_to_entities

    def entities(self) -> Set[str]:
        return set(self._entity_to_aliases)

    def __len__(self) -> int:
        return len(self._alias_to_entities)

    def merge(self, other: "AliasDictionary") -> None:
        """Fold another dictionary's counts into this one."""
        for alias, slots in other._alias_to_entities.items():
            for entity, count in slots.items():
                self.add(alias, entity, count)

    def bulk_add(self, pairs: Iterable[tuple]) -> None:
        """Add many ``(alias, entity)`` pairs."""
        for alias, entity in pairs:
            self.add(alias, entity)
