"""Bundled curated domain KB: the drone/technology world of Figures 2 & 4.

This plays the role of the YAGO2 slice NOUS fuses with extracted
knowledge in the demonstration: typed entities (companies, people,
products, places, agencies), alias tables (including the ambiguous
aliases that make disambiguation non-trivial: "Phantom", "Parrot",
"Amazon"), Wikipedia-like descriptions, and curated facts.
"""

from __future__ import annotations

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology

# (type, parent) pairs, topologically ordered.
TYPE_TAXONOMY = [
    ("Agent", Ontology.ROOT),
    ("Organization", "Agent"),
    ("Company", "Organization"),
    ("Agency", "Organization"),
    ("University", "Organization"),
    ("Person", "Agent"),
    ("Location", Ontology.ROOT),
    ("City", "Location"),
    ("Country", "Location"),
    ("Region", "Location"),
    ("Artifact", Ontology.ROOT),
    ("Product", "Artifact"),
    ("Technology", Ontology.ROOT),
    ("Industry", Ontology.ROOT),
    ("Event", Ontology.ROOT),
    ("Literal", Ontology.ROOT),
]

# (name, domain, range, symmetric, description)
PREDICATES = [
    ("headquarteredIn", "Organization", "Location", False, "org seated in place"),
    ("locatedIn", "Location", "Location", False, "geographic containment"),
    ("foundedBy", "Company", "Person", False, "company founded by person"),
    ("founded", "Person", "Company", False, "person founded company"),
    ("worksAt", "Person", "Organization", False, "employment"),
    ("ceoOf", "Person", "Company", False, "chief executive"),
    ("manufactures", "Company", "Product", False, "company makes product"),
    ("develops", "Company", "Technology", False, "company develops technology"),
    ("usesTechnology", "Agent", "Technology", False, "agent applies technology"),
    ("uses", "Agent", "Product", False, "agent uses product"),
    ("acquired", "Company", "Company", False, "corporate acquisition"),
    ("investsIn", "Company", "Company", False, "investment relation"),
    ("raisedFunding", "Company", "Literal", False, "funding amount raised"),
    ("fundedBy", "Company", "Company", False, "startup funded by investor"),
    ("competitorOf", "Company", "Company", True, "market competition"),
    ("partnerOf", "Organization", "Organization", True, "business partnership"),
    ("regulates", "Agency", "Industry", False, "agency regulates industry"),
    ("operatesIn", "Company", "Industry", False, "company active in industry"),
    ("sells", "Company", "Product", False, "company sells product"),
    ("suppliesTo", "Company", "Company", False, "supplier relation"),
    ("productOf", "Product", "Company", False, "product made by company"),
    ("basedOn", "Product", "Technology", False, "product embodies technology"),
    ("citizenOf", "Person", "Country", False, "citizenship"),
    ("memberOf", "Agent", "Organization", False, "membership"),
    ("launched", "Company", "Product", False, "product launch"),
    ("bannedIn", "Product", "Location", False, "product banned in place"),
    ("approvedBy", "Agent", "Agency", False, "regulatory approval"),
    ("studiedAt", "Person", "University", False, "education"),
    ("subsidiaryOf", "Company", "Company", False, "corporate ownership"),
]

# entity id, type, aliases, description
ENTITIES = [
    ("DJI", "Company", ["DJI", "Da-Jiang Innovations", "DJI Technology"],
     "Chinese technology company headquartered in Shenzhen, the world's "
     "largest manufacturer of consumer drones including the Phantom series."),
    ("Parrot_SA", "Company", ["Parrot", "Parrot SA"],
     "French wireless products company known for consumer drones such as "
     "the Bebop and AR.Drone quadcopters."),
    ("3D_Robotics", "Company", ["3D Robotics", "3DR"],
     "American drone manufacturer based in Berkeley California, maker of "
     "the Solo smart drone and open autopilot hardware."),
    ("CyPhy_Works", "Company", ["CyPhy Works", "CyPhy"],
     "American drone startup founded by Helen Greiner developing tethered "
     "surveillance drones for security and defense."),
    ("PrecisionHawk", "Company", ["PrecisionHawk"],
     "Drone analytics company applying aerial imagery to agriculture and "
     "insurance inspection workflows."),
    ("Amazon", "Company", ["Amazon", "Amazon.com"],
     "American electronic commerce company investing in drone based "
     "package delivery through its Prime Air program."),
    ("Google", "Company", ["Google", "Alphabet"],
     "American technology company with autonomous systems research "
     "including the Wing drone delivery project."),
    ("GoPro", "Company", ["GoPro"],
     "American camera maker known for action cameras and the Karma drone."),
    ("Intel", "Company", ["Intel"],
     "American semiconductor company investing in drone light shows and "
     "computer vision chips for autonomous flight."),
    ("Qualcomm", "Company", ["Qualcomm"],
     "American chip maker supplying flight controller platforms for "
     "consumer drones."),
    ("Windermere", "Company", ["Windermere", "Windermere Real Estate"],
     "American real estate company using drones to capture aerial "
     "photography of property listings."),
    ("Kiva_Systems", "Company", ["Kiva Systems", "Kiva"],
     "Warehouse robotics company acquired by Amazon and renamed Amazon "
     "Robotics."),
    ("Accel_Partners", "Company", ["Accel Partners", "Accel"],
     "Venture capital firm in Palo Alto that led funding rounds for DJI."),
    ("Sequoia_Capital", "Company", ["Sequoia Capital", "Sequoia"],
     "Venture capital firm backing technology startups."),
    ("Kleiner_Perkins", "Company", ["Kleiner Perkins", "KPCB"],
     "Venture capital firm investing in green technology and drones."),
    ("AeroVironment", "Company", ["AeroVironment"],
     "American defense contractor manufacturing small unmanned aircraft."),
    ("Boeing", "Company", ["Boeing"],
     "American aerospace corporation building commercial and military "
     "aircraft."),
    ("Wall_Street_Journal", "Company", ["Wall Street Journal", "WSJ"],
     "American business newspaper published by Dow Jones."),
    ("FAA", "Agency", ["FAA", "Federal Aviation Administration"],
     "United States agency regulating civil aviation including commercial "
     "drone flight rules."),
    ("NASA", "Agency", ["NASA"],
     "United States space agency researching unmanned traffic management."),
    ("Frank_Wang", "Person", ["Frank Wang", "Wang Tao"],
     "Chinese engineer who founded DJI while studying in Hong Kong."),
    ("Helen_Greiner", "Person", ["Helen Greiner"],
     "American roboticist, co-founder of iRobot and founder of CyPhy Works."),
    ("Chris_Anderson", "Person", ["Chris Anderson"],
     "American entrepreneur, former Wired editor and CEO of 3D Robotics."),
    ("Jeff_Bezos", "Person", ["Jeff Bezos"],
     "American businessman, founder and chief executive of Amazon."),
    ("Henri_Seydoux", "Person", ["Henri Seydoux"],
     "French entrepreneur, founder and chief executive of Parrot."),
    ("Shenzhen", "City", ["Shenzhen"],
     "Chinese technology manufacturing hub in Guangdong province."),
    ("Berkeley", "City", ["Berkeley"],
     "City in California home to technology startups."),
    ("Seattle", "City", ["Seattle"],
     "City in Washington state, headquarters of Amazon."),
    ("Paris", "City", ["Paris"],
     "Capital of France, headquarters of Parrot."),
    ("Danvers", "City", ["Danvers"],
     "Town in Massachusetts, headquarters of CyPhy Works."),
    ("China", "Country", ["China"], "Country in East Asia."),
    ("United_States", "Country", ["United States", "U.S.", "USA", "America"],
     "Country in North America."),
    ("France", "Country", ["France"], "Country in Western Europe."),
    ("Phantom_3", "Product", ["Phantom 3", "Phantom"],
     "Consumer camera quadcopter manufactured by DJI."),
    ("Inspire_1", "Product", ["Inspire 1", "Inspire"],
     "Professional camera drone manufactured by DJI."),
    ("Bebop_Drone", "Product", ["Bebop Drone", "Bebop"],
     "Lightweight consumer quadcopter manufactured by Parrot."),
    ("Solo_Drone", "Product", ["Solo", "Solo smart drone"],
     "Smart consumer drone manufactured by 3D Robotics."),
    ("Karma_Drone", "Product", ["Karma", "Karma drone"],
     "Foldable camera drone manufactured by GoPro."),
    ("PARC_System", "Product", ["PARC", "PARC system"],
     "Tethered persistent aerial reconnaissance drone by CyPhy Works."),
    ("Prime_Air", "Product", ["Prime Air", "Amazon Prime Air"],
     "Drone based package delivery service developed by Amazon."),
    ("Aerial_Photography", "Technology", ["aerial photography", "aerial photos"],
     "Capturing imagery from airborne platforms."),
    ("Computer_Vision", "Technology", ["computer vision"],
     "Algorithms that extract information from digital images."),
    ("Autonomous_Flight", "Technology", ["autonomous flight", "autopilot"],
     "Self-piloting flight control technology."),
    ("Package_Delivery", "Technology", ["package delivery", "drone delivery"],
     "Delivering parcels with unmanned aircraft."),
    ("Precision_Agriculture", "Technology", ["precision agriculture"],
     "Data driven crop management using remote sensing."),
    ("Drone_Industry", "Industry", ["drone industry", "drones", "UAV industry"],
     "The unmanned aerial vehicle market."),
    ("Real_Estate_Industry", "Industry", ["real estate", "real estate industry"],
     "Property sales and management market."),
    ("Ecommerce_Industry", "Industry", ["e-commerce", "online retail"],
     "Online retail market."),
]

# (subject, predicate, object)
FACTS = [
    ("DJI", "headquarteredIn", "Shenzhen"),
    ("DJI", "manufactures", "Phantom_3"),
    ("DJI", "manufactures", "Inspire_1"),
    ("DJI", "launched", "Phantom_3"),
    ("DJI", "foundedBy", "Frank_Wang"),
    ("DJI", "operatesIn", "Drone_Industry"),
    ("DJI", "develops", "Autonomous_Flight"),
    ("DJI", "usesTechnology", "Computer_Vision"),
    ("DJI", "competitorOf", "Parrot_SA"),
    ("DJI", "competitorOf", "3D_Robotics"),
    ("DJI", "fundedBy", "Accel_Partners"),
    ("DJI", "fundedBy", "Sequoia_Capital"),
    ("Frank_Wang", "ceoOf", "DJI"),
    ("Frank_Wang", "citizenOf", "China"),
    ("Parrot_SA", "headquarteredIn", "Paris"),
    ("Parrot_SA", "manufactures", "Bebop_Drone"),
    ("Parrot_SA", "foundedBy", "Henri_Seydoux"),
    ("Parrot_SA", "operatesIn", "Drone_Industry"),
    ("Henri_Seydoux", "ceoOf", "Parrot_SA"),
    ("Henri_Seydoux", "citizenOf", "France"),
    ("3D_Robotics", "headquarteredIn", "Berkeley"),
    ("3D_Robotics", "manufactures", "Solo_Drone"),
    ("3D_Robotics", "foundedBy", "Chris_Anderson"),
    ("3D_Robotics", "operatesIn", "Drone_Industry"),
    ("Chris_Anderson", "ceoOf", "3D_Robotics"),
    ("CyPhy_Works", "headquarteredIn", "Danvers"),
    ("CyPhy_Works", "manufactures", "PARC_System"),
    ("CyPhy_Works", "foundedBy", "Helen_Greiner"),
    ("CyPhy_Works", "operatesIn", "Drone_Industry"),
    ("Helen_Greiner", "ceoOf", "CyPhy_Works"),
    ("Helen_Greiner", "citizenOf", "United_States"),
    ("PrecisionHawk", "operatesIn", "Drone_Industry"),
    ("PrecisionHawk", "usesTechnology", "Precision_Agriculture"),
    ("PrecisionHawk", "usesTechnology", "Aerial_Photography"),
    ("Amazon", "headquarteredIn", "Seattle"),
    ("Amazon", "acquired", "Kiva_Systems"),
    ("Amazon", "develops", "Package_Delivery"),
    ("Amazon", "launched", "Prime_Air"),
    ("Amazon", "operatesIn", "Ecommerce_Industry"),
    ("Amazon", "foundedBy", "Jeff_Bezos"),
    ("Jeff_Bezos", "ceoOf", "Amazon"),
    ("Jeff_Bezos", "citizenOf", "United_States"),
    ("Prime_Air", "basedOn", "Package_Delivery"),
    ("Prime_Air", "productOf", "Amazon"),
    ("Google", "develops", "Package_Delivery"),
    ("Google", "competitorOf", "Amazon"),
    ("GoPro", "manufactures", "Karma_Drone"),
    ("GoPro", "operatesIn", "Drone_Industry"),
    ("GoPro", "competitorOf", "DJI"),
    ("Intel", "investsIn", "PrecisionHawk"),
    ("Intel", "develops", "Computer_Vision"),
    ("Qualcomm", "suppliesTo", "DJI"),
    ("Qualcomm", "develops", "Autonomous_Flight"),
    ("Windermere", "operatesIn", "Real_Estate_Industry"),
    ("Windermere", "usesTechnology", "Aerial_Photography"),
    ("Windermere", "headquarteredIn", "Seattle"),
    ("Kiva_Systems", "subsidiaryOf", "Amazon"),
    ("Accel_Partners", "investsIn", "DJI"),
    ("Sequoia_Capital", "investsIn", "DJI"),
    ("Kleiner_Perkins", "investsIn", "CyPhy_Works"),
    ("FAA", "regulates", "Drone_Industry"),
    ("FAA", "headquarteredIn", "United_States"),
    ("NASA", "partnerOf", "FAA"),
    ("AeroVironment", "operatesIn", "Drone_Industry"),
    ("AeroVironment", "headquarteredIn", "United_States"),
    ("Boeing", "operatesIn", "Drone_Industry"),
    ("Phantom_3", "productOf", "DJI"),
    ("Phantom_3", "basedOn", "Aerial_Photography"),
    ("Inspire_1", "productOf", "DJI"),
    ("Inspire_1", "basedOn", "Aerial_Photography"),
    ("Bebop_Drone", "productOf", "Parrot_SA"),
    ("Solo_Drone", "productOf", "3D_Robotics"),
    ("Solo_Drone", "basedOn", "Autonomous_Flight"),
    ("Karma_Drone", "productOf", "GoPro"),
    ("PARC_System", "productOf", "CyPhy_Works"),
    ("Shenzhen", "locatedIn", "China"),
    ("Berkeley", "locatedIn", "United_States"),
    ("Seattle", "locatedIn", "United_States"),
    ("Danvers", "locatedIn", "United_States"),
    ("Paris", "locatedIn", "France"),
]


def build_ontology() -> Ontology:
    """The drone-domain target ontology."""
    ontology = Ontology()
    ontology.bulk_add_types(TYPE_TAXONOMY)
    for name, domain, range_, symmetric, description in PREDICATES:
        ontology.add_predicate(
            name, domain=domain, range_=range_, symmetric=symmetric,
            description=description,
        )
    return ontology


def build_drone_kb() -> KnowledgeBase:
    """Construct the curated drone-domain KB used across examples/benches."""
    kb = KnowledgeBase(ontology=build_ontology())
    for entity_id, type_name, aliases, description in ENTITIES:
        kb.add_entity(entity_id, type_name, aliases=aliases, description=description)
    for subject, predicate, object_ in FACTS:
        kb.add_fact(subject, predicate, object_, confidence=1.0, source="yago")
    return kb
