"""Target ontology: type taxonomy and predicate signatures.

Raw OpenIE relations are mapped onto this closed predicate vocabulary in
§3.3; the taxonomy supports the type-level generalisation the miner uses
(an edge (DJI, acquired, Kiva) generalises to (Company, acquired,
Company)) and domain/range checks used as a mapping sanity filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import UnknownPredicateError, UnknownTypeError


@dataclass(frozen=True)
class PredicateSignature:
    """Domain/range constraint for one predicate.

    ``domain``/``range_`` name types in the taxonomy; ``ANY`` disables
    the check (literals such as money amounts use ``Literal``).
    """

    name: str
    domain: str = "ANY"
    range_: str = "ANY"
    symmetric: bool = False
    description: str = ""


class Ontology:
    """Type taxonomy (single-parent) plus predicate signatures."""

    ROOT = "Thing"

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {self.ROOT: None}
        self._predicates: Dict[str, PredicateSignature] = {}
        # Monotonic mutation stamp, folded into KnowledgeBase.version so
        # taxonomy changes invalidate query-result caches.
        self.version = 0

    # ------------------------------------------------------------------
    # taxonomy
    # ------------------------------------------------------------------
    def add_type(self, type_name: str, parent: str = ROOT) -> None:
        """Register a type under ``parent`` (which must already exist)."""
        if parent not in self._parent:
            raise UnknownTypeError(parent)
        if type_name not in self._parent:
            self._parent[type_name] = parent
            self.version += 1

    def has_type(self, type_name: str) -> bool:
        return type_name in self._parent

    def types(self) -> Set[str]:
        return set(self._parent)

    def parent(self, type_name: str) -> Optional[str]:
        """Immediate supertype, or None for the root."""
        if type_name not in self._parent:
            raise UnknownTypeError(type_name)
        return self._parent[type_name]

    def ancestors(self, type_name: str) -> List[str]:
        """Chain of supertypes from ``type_name`` (exclusive) to the root."""
        if type_name not in self._parent:
            raise UnknownTypeError(type_name)
        chain = []
        current = self._parent[type_name]
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        return chain

    def is_a(self, type_name: str, candidate_ancestor: str) -> bool:
        """True when ``type_name`` equals or descends from the ancestor."""
        if type_name == candidate_ancestor:
            return True
        return candidate_ancestor in self.ancestors(type_name)

    def least_common_ancestor(self, a: str, b: str) -> str:
        """Most specific shared supertype (possibly the root)."""
        chain_a = [a] + self.ancestors(a)
        chain_b = set([b] + self.ancestors(b))
        for t in chain_a:
            if t in chain_b:
                return t
        return self.ROOT

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def add_predicate(
        self,
        name: str,
        domain: str = "ANY",
        range_: str = "ANY",
        symmetric: bool = False,
        description: str = "",
    ) -> None:
        """Register a predicate with optional domain/range types."""
        for t in (domain, range_):
            if t not in ("ANY", "Literal") and t not in self._parent:
                raise UnknownTypeError(t)
        self._predicates[name] = PredicateSignature(
            name=name,
            domain=domain,
            range_=range_,
            symmetric=symmetric,
            description=description,
        )
        self.version += 1

    def has_predicate(self, name: str) -> bool:
        return name in self._predicates

    def predicate(self, name: str) -> PredicateSignature:
        if name not in self._predicates:
            raise UnknownPredicateError(name)
        return self._predicates[name]

    def predicates(self) -> Set[str]:
        return set(self._predicates)

    def signature_allows(
        self, predicate: str, subject_type: Optional[str], object_type: Optional[str]
    ) -> bool:
        """Check a typed pair against the predicate's domain/range.

        Unknown argument types (``None``) pass — extraction often cannot
        type literals, and the paper treats the signature as a filter,
        not a hard gate.
        """
        sig = self.predicate(predicate)
        if sig.domain not in ("ANY", "Literal") and subject_type is not None:
            if not self._known_and_is_a(subject_type, sig.domain):
                return False
        if sig.range_ not in ("ANY", "Literal") and object_type is not None:
            if not self._known_and_is_a(object_type, sig.range_):
                return False
        return True

    def _known_and_is_a(self, type_name: str, ancestor: str) -> bool:
        if type_name not in self._parent:
            return False
        return self.is_a(type_name, ancestor)

    # ------------------------------------------------------------------
    def bulk_add_types(self, pairs: Iterable[tuple]) -> None:
        """Add many ``(type, parent)`` pairs in order."""
        for type_name, parent in pairs:
            self.add_type(type_name, parent)
