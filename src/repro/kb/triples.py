"""Typed triple storage with SPO/POS/OSP indexes.

The store answers the access patterns the rest of NOUS needs in O(1)
index lookups: all facts about an entity, all pairs under a predicate,
and existence checks used by link prediction and the miners.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.nlp.dates import SimpleDate


@dataclass(frozen=True)
class Triple:
    """An edge of the knowledge graph.

    Attributes:
        subject: Canonical subject entity id.
        predicate: Ontology predicate name.
        object: Canonical object entity id (or literal string).
        confidence: Belief in the fact, in (0, 1]; curated facts are 1.0.
        source: Provenance tag ("yago", "wsj", a crawl site, ...).
        date: Optional fact date (publication or event date).
        curated: True for facts imported from the curated KB.
    """

    subject: str
    predicate: str
    object: str
    confidence: float = 1.0
    source: str = "curated"
    date: Optional[SimpleDate] = None
    curated: bool = True

    def key(self) -> Tuple[str, str, str]:
        """The (s, p, o) identity of this triple."""
        return (self.subject, self.predicate, self.object)

    def with_confidence(self, confidence: float) -> "Triple":
        """Copy with a new confidence value."""
        return replace(self, confidence=confidence)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"({self.subject}, {self.predicate}, {self.object})"


class TripleStore:
    """Indexed set of :class:`Triple` (one fact per (s, p, o) key).

    Re-adding an existing key keeps the *higher-confidence* version, so
    extraction can never degrade curated knowledge.
    """

    def __init__(self) -> None:
        self._facts: Dict[Tuple[str, str, str], Triple] = {}
        self._spo: Dict[str, Dict[str, Set[str]]] = {}
        self._pos: Dict[str, Dict[str, Set[str]]] = {}
        self._osp: Dict[str, Dict[str, Set[str]]] = {}

    def add(self, triple: Triple) -> bool:
        """Insert a triple.

        Returns:
            True if the store changed (new fact, or confidence upgraded).
        """
        key = triple.key()
        existing = self._facts.get(key)
        if existing is not None:
            if triple.confidence > existing.confidence:
                self._facts[key] = triple
                return True
            return False
        self._facts[key] = triple
        s, p, o = key
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        return True

    def remove(self, subject: str, predicate: str, object: str) -> bool:
        """Delete a fact; returns True if it was present."""
        key = (subject, predicate, object)
        if key not in self._facts:
            return False
        del self._facts[key]
        self._spo[subject][predicate].discard(object)
        self._pos[predicate][object].discard(subject)
        self._osp[object][subject].discard(predicate)
        return True

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return key in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._facts.values())

    def get(self, subject: str, predicate: str, object: str) -> Optional[Triple]:
        """Fetch the stored fact for an exact key, if any."""
        return self._facts.get((subject, predicate, object))

    # ------------------------------------------------------------------
    # pattern queries; None is a wildcard
    # ------------------------------------------------------------------
    def match(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> List[Triple]:
        """All facts matching a (possibly wildcarded) pattern."""
        if subject is not None and predicate is not None and object is not None:
            fact = self._facts.get((subject, predicate, object))
            return [fact] if fact else []
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, set())
            return [self._facts[(subject, predicate, o)] for o in objects]
        if predicate is not None and object is not None:
            subjects = self._pos.get(predicate, {}).get(object, set())
            return [self._facts[(s, predicate, object)] for s in subjects]
        if subject is not None and object is not None:
            predicates = self._osp.get(object, {}).get(subject, set())
            return [self._facts[(subject, p, object)] for p in predicates]
        if subject is not None:
            return [
                self._facts[(subject, p, o)]
                for p, objs in self._spo.get(subject, {}).items()
                for o in objs
            ]
        if predicate is not None:
            return [
                self._facts[(s, predicate, o)]
                for o, subjects in self._pos.get(predicate, {}).items()
                for s in subjects
            ]
        if object is not None:
            return [
                self._facts[(s, p, object)]
                for s, preds in self._osp.get(object, {}).items()
                for p in preds
            ]
        return list(self._facts.values())

    def objects(self, subject: str, predicate: str) -> Set[str]:
        """Objects o with (subject, predicate, o) in the store."""
        return set(self._spo.get(subject, {}).get(predicate, set()))

    def subjects(self, predicate: str, object: str) -> Set[str]:
        """Subjects s with (s, predicate, object) in the store."""
        return set(self._pos.get(predicate, {}).get(object, set()))

    def predicates(self) -> Set[str]:
        """All predicates present."""
        return set(self._pos)

    def entities(self) -> Set[str]:
        """All subjects and objects present."""
        return set(self._spo) | set(self._osp)

    def about(self, entity: str) -> List[Triple]:
        """All facts where ``entity`` is subject or object."""
        return self.match(subject=entity) + [
            t for t in self.match(object=entity) if t.subject != entity
        ]

    def neighbors(self, entity: str) -> Set[str]:
        """Entities one hop away from ``entity``."""
        out = {t.object for t in self.match(subject=entity)}
        out |= {t.subject for t in self.match(object=entity)}
        out.discard(entity)
        return out

    def degree(self, entity: str) -> int:
        """Number of facts touching ``entity``."""
        return len(self.about(entity))
