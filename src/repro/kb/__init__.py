"""Curated knowledge-base substrate (the YAGO2/Freebase role, paper §3.3).

Provides the typed triple store, ontology (type taxonomy + predicate
signatures), alias dictionary, and a bundled drone/technology domain KB
matching the entities in Figures 2 and 4 of the paper.
"""

from repro.kb.triples import Triple, TripleStore
from repro.kb.ontology import Ontology, PredicateSignature
from repro.kb.aliases import AliasDictionary
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.drone_kb import build_drone_kb

__all__ = [
    "Triple",
    "TripleStore",
    "Ontology",
    "PredicateSignature",
    "AliasDictionary",
    "KnowledgeBase",
    "build_drone_kb",
]
