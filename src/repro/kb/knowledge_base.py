"""The knowledge base facade: store + ontology + aliases + descriptions.

This is the "curated KB" interface the rest of NOUS consumes (and also
the container the *dynamic* KG grows in — extracted facts are added with
``curated=False`` and a confidence score).

Query-efficiency layer (maintained incrementally, never by rescans):

- a monotonic :attr:`KnowledgeBase.version` stamp, bumped on every
  mutation, which downstream caches (query results, topic graphs) key on;
- an exact-type index behind :meth:`entities_of_type`, so taxonomy-aware
  entity lookups no longer scan every entity;
- a shared, incrementally-maintained property-graph mirror behind
  :meth:`graph_view`: every accepted fact is applied to the mirror as it
  arrives, so pattern matching and visualisation never pay a full KB
  materialisation.  The mirror is a *read* view — callers must not add or
  remove vertices/edges on it (annotating vertex properties, e.g. topic
  vectors, is fine).
"""

from __future__ import annotations

import io
from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import KBError
from repro.graph.property_graph import PropertyGraph
from repro.kb.aliases import AliasDictionary, normalize_alias
from repro.kb.ontology import Ontology
from repro.kb.triples import Triple, TripleStore
from repro.nlp.dates import SimpleDate, parse_date

_STOPWORDS = {
    "the", "a", "an", "of", "and", "or", "in", "on", "to", "for", "is",
    "was", "are", "were", "by", "with", "at", "as", "its", "it", "that",
    "this", "from", "be", "has", "have",
}


class KnowledgeBase:
    """A typed, aliased, documented knowledge graph.

    Args:
        ontology: Target ontology; a fresh one is created if omitted.
    """

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology or Ontology()
        self.store = TripleStore()
        self.aliases = AliasDictionary()
        self._types: Dict[str, str] = {}
        self._descriptions: Dict[str, str] = {}
        self._by_exact_type: Dict[str, Set[str]] = {}
        self._graph_view: Optional[PropertyGraph] = None
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic stamp of every cache-relevant KB mutation.

        Sums the KB's own counter (facts, entities, descriptions) with
        the alias-dictionary and ontology counters, so linking and
        taxonomy changes — which alter query results without touching the
        triple store — also invalidate downstream caches.
        """
        return self._version + self.aliases.version + self.ontology.version

    # ------------------------------------------------------------------
    # entities
    # ------------------------------------------------------------------
    def add_entity(
        self,
        entity_id: str,
        type_name: str = Ontology.ROOT,
        aliases: Iterable[str] = (),
        description: str = "",
    ) -> str:
        """Register an entity with its type, aliases and description.

        The entity id itself is always registered as an alias.
        """
        if not self.ontology.has_type(type_name):
            self.ontology.add_type(type_name)
        self._set_type(entity_id, type_name)
        self.aliases.add(entity_id.replace("_", " "), entity_id)
        for alias in aliases:
            self.aliases.add(alias, entity_id)
        if description:
            self._descriptions[entity_id] = description
        if self._graph_view is not None and self._graph_view.has_vertex(entity_id):
            self._graph_view.set_vertex_prop(entity_id, "type", type_name)
        self._version += 1
        return entity_id

    def _set_type(self, entity_id: str, type_name: str) -> None:
        """Update the type map and the exact-type index together."""
        previous = self._types.get(entity_id)
        if previous == type_name:
            return
        if previous is not None:
            members = self._by_exact_type.get(previous)
            if members is not None:
                members.discard(entity_id)
                if not members:
                    del self._by_exact_type[previous]
        self._types[entity_id] = type_name
        self._by_exact_type.setdefault(type_name, set()).add(entity_id)

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._types

    def entity_type(self, entity_id: str) -> Optional[str]:
        """Declared type of the entity (None when unregistered)."""
        return self._types.get(entity_id)

    def entities(self) -> Set[str]:
        return set(self._types)

    def entities_of_type(self, type_name: str) -> Set[str]:
        """Entities whose type equals or descends from ``type_name``.

        Answered from the exact-type index: only the (few) distinct type
        names are tested against the taxonomy, never every entity.
        """
        out: Set[str] = set()
        for exact_type, members in self._by_exact_type.items():
            if self.ontology.has_type(exact_type) and self.ontology.is_a(
                exact_type, type_name
            ):
                out.update(members)
        return out

    def description(self, entity_id: str) -> str:
        return self._descriptions.get(entity_id, "")

    def set_description(self, entity_id: str, text: str) -> None:
        self._descriptions[entity_id] = text
        self._version += 1

    # ------------------------------------------------------------------
    # facts
    # ------------------------------------------------------------------
    def add_fact(
        self,
        subject: str,
        predicate: str,
        object: str,
        confidence: float = 1.0,
        source: str = "curated",
        date: Optional[SimpleDate] = None,
        curated: bool = True,
    ) -> Triple:
        """Add a fact; auto-registers the predicate when unknown."""
        if not self.ontology.has_predicate(predicate):
            self.ontology.add_predicate(predicate)
        triple = Triple(
            subject=subject,
            predicate=predicate,
            object=object,
            confidence=confidence,
            source=source,
            date=date,
            curated=curated,
        )
        changed = self.store.add(triple)
        for endpoint in (subject, object):
            if endpoint not in self._types:
                self._set_type(endpoint, Ontology.ROOT)
                self.aliases.add(endpoint.replace("_", " "), endpoint)
        if changed:
            self._mirror_fact(triple)
            self._version += 1
        return triple

    def remove_fact(self, subject: str, predicate: str, object: str) -> bool:
        """Delete a fact, keeping the graph mirror in sync.

        Returns:
            True if the fact was present.
        """
        if not self.store.remove(subject, predicate, object):
            return False
        if self._graph_view is not None:
            for edge in list(self._graph_view.edges_between(subject, object)):
                if edge.label == predicate:
                    self._graph_view.remove_edge(edge.eid)
            for endpoint in (subject, object):
                # A fresh materialisation only contains entities that
                # appear in stored triples; drop endpoints the removal
                # orphaned so the mirror never shows ghost vertices.
                if (
                    self._graph_view.has_vertex(endpoint)
                    and self._graph_view.degree(endpoint) == 0
                ):
                    self._graph_view.remove_vertex(endpoint)
        self._version += 1
        return True

    def facts_about(self, entity_id: str) -> List[Triple]:
        return self.store.about(entity_id)

    @property
    def num_facts(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    # context construction (for AIDA-style similarity and LDA)
    # ------------------------------------------------------------------
    def entity_context(self, entity_id: str, use_description: bool = True) -> Counter:
        """Bag of words describing the entity.

        Built from the KG neighbourhood (predicate names, neighbour names
        and types) — the paper's adaptation of AIDA, which replaces
        Wikipedia-article context with KG-neighbourhood context — plus
        the stored description when available.
        """
        words: Counter = Counter()
        for triple in self.store.about(entity_id):
            other = triple.object if triple.subject == entity_id else triple.subject
            for token in _name_tokens(other):
                words[token] += 2
            for token in _name_tokens(triple.predicate):
                words[token] += 1
            other_type = self._types.get(other)
            if other_type:
                words[other_type.lower()] += 1
        own_type = self._types.get(entity_id)
        if own_type:
            words[own_type.lower()] += 3
        if use_description:
            for token in self._descriptions.get(entity_id, "").lower().split():
                token = token.strip(".,()\"'")
                if token and token not in _STOPWORDS:
                    words[token] += 1
        return words

    # ------------------------------------------------------------------
    # graph view
    # ------------------------------------------------------------------
    def graph_view(self) -> PropertyGraph:
        """The shared, incrementally-maintained property-graph mirror.

        The first call materialises the full KB; afterwards every
        :meth:`add_fact` / :meth:`remove_fact` / :meth:`add_entity` is
        applied to the mirror in O(1), so repeated callers (pattern
        queries, visualisation) never pay a rebuild.  Treat the result as
        read-only structure: annotating vertex *properties* is fine,
        adding or removing vertices/edges is not.
        """
        if self._graph_view is None:
            self._graph_view = self.to_property_graph()
        return self._graph_view

    def _mirror_fact(self, triple: Triple) -> None:
        """Apply one stored fact to the graph mirror (no-op before the
        mirror exists; upgrades in place when the key is already there)."""
        graph = self._graph_view
        if graph is None:
            return
        for endpoint in (triple.subject, triple.object):
            if not graph.has_vertex(endpoint):
                graph.add_vertex(
                    endpoint,
                    type=self._types.get(endpoint, Ontology.ROOT),
                    name=endpoint.replace("_", " "),
                )
        edge_props = dict(
            confidence=triple.confidence,
            source=triple.source,
            date=triple.date,
            curated=triple.curated,
        )
        for edge in graph.edges_between(triple.subject, triple.object):
            if edge.label == triple.predicate:
                graph.update_edge_props(edge.eid, **edge_props)  # upgrade
                return
        graph.add_edge(
            triple.subject, triple.object, triple.predicate, **edge_props
        )

    def to_property_graph(
        self,
        min_confidence: float = 0.0,
        include_extracted: bool = True,
        num_partitions: int = 4,
    ) -> PropertyGraph:
        """Materialise the KB as a property graph.

        Vertex properties carry ``type`` and ``name``; edge properties
        carry confidence/source/date/curated.
        """
        graph = PropertyGraph(num_partitions=num_partitions)
        for triple in self.store:
            if triple.confidence < min_confidence:
                continue
            if not include_extracted and not triple.curated:
                continue
            for endpoint in (triple.subject, triple.object):
                if not graph.has_vertex(endpoint):
                    graph.add_vertex(
                        endpoint,
                        type=self._types.get(endpoint, Ontology.ROOT),
                        name=endpoint.replace("_", " "),
                    )
            graph.add_edge(
                triple.subject,
                triple.object,
                triple.predicate,
                confidence=triple.confidence,
                source=triple.source,
                date=triple.date,
                curated=triple.curated,
            )
        return graph

    # ------------------------------------------------------------------
    # serialization (TSV, one fact per line)
    # ------------------------------------------------------------------
    def dump_tsv(self) -> str:
        """Serialise entities and facts to a TSV string."""
        out = io.StringIO()
        for entity, type_name in sorted(self._types.items()):
            aliases = ",".join(sorted(self.aliases.aliases_of(entity)))
            description = self._descriptions.get(entity, "").replace("\t", " ").replace("\n", " ")
            out.write(f"E\t{entity}\t{type_name}\t{aliases}\t{description}\n")
        for triple in sorted(self.store, key=lambda t: t.key()):
            date = str(triple.date) if triple.date else ""
            out.write(
                "T\t{s}\t{p}\t{o}\t{c:.6f}\t{src}\t{d}\t{cur}\n".format(
                    s=triple.subject,
                    p=triple.predicate,
                    o=triple.object,
                    c=triple.confidence,
                    src=triple.source,
                    d=date,
                    cur=int(triple.curated),
                )
            )
        return out.getvalue()

    @classmethod
    def load_tsv(cls, text: str, ontology: Optional[Ontology] = None) -> "KnowledgeBase":
        """Parse a KB from :meth:`dump_tsv` output."""
        kb = cls(ontology=ontology)
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            fields = line.split("\t")
            kind = fields[0]
            if kind == "E" and len(fields) >= 3:
                entity, type_name = fields[1], fields[2]
                aliases = fields[3].split(",") if len(fields) > 3 and fields[3] else []
                description = fields[4] if len(fields) > 4 else ""
                kb.add_entity(entity, type_name, aliases=aliases, description=description)
            elif kind == "T" and len(fields) >= 4:
                date = parse_date(fields[6]) if len(fields) > 6 and fields[6] else None
                kb.add_fact(
                    fields[1],
                    fields[2],
                    fields[3],
                    confidence=float(fields[4]) if len(fields) > 4 else 1.0,
                    source=fields[5] if len(fields) > 5 else "curated",
                    date=date,
                    curated=bool(int(fields[7])) if len(fields) > 7 else True,
                )
            else:
                raise KBError(f"malformed KB line {line_no}: {line!r}")
        return kb

    # ------------------------------------------------------------------
    def gazetteer(self) -> Dict[str, str]:
        """alias -> NER label map derived from entity types."""
        label_map = {
            "Company": "ORG", "Organization": "ORG", "Agency": "ORG",
            "University": "ORG", "Person": "PERSON", "City": "LOCATION",
            "Country": "LOCATION", "Location": "LOCATION", "Region": "LOCATION",
            "Product": "PRODUCT", "Technology": "MISC",
        }
        out: Dict[str, str] = {}
        for entity, type_name in self._types.items():
            label = None
            current: Optional[str] = type_name
            while current is not None and label is None:
                label = label_map.get(current)
                current = (
                    self.ontology.parent(current)
                    if self.ontology.has_type(current)
                    else None
                )
            if label is None:
                continue
            for alias in self.aliases.aliases_of(entity):
                out[alias] = label
        return out

    def kb_alias_index(self) -> Dict[str, str]:
        """alias -> entity id for unambiguous aliases only."""
        out: Dict[str, str] = {}
        for entity in self._types:
            for alias in self.aliases.aliases_of(entity):
                candidates = self.aliases.candidates(alias)
                if len(candidates) == 1:
                    out[alias] = entity
        return out


def _name_tokens(name: str) -> List[str]:
    tokens = []
    for raw in name.replace("_", " ").lower().split():
        token = raw.strip(".,()\"'")
        if token and token not in _STOPWORDS:
            tokens.append(token)
    return tokens
