"""The knowledge base facade: store + ontology + aliases + descriptions.

This is the "curated KB" interface the rest of NOUS consumes (and also
the container the *dynamic* KG grows in — extracted facts are added with
``curated=False`` and a confidence score).
"""

from __future__ import annotations

import io
from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import KBError
from repro.graph.property_graph import PropertyGraph
from repro.kb.aliases import AliasDictionary, normalize_alias
from repro.kb.ontology import Ontology
from repro.kb.triples import Triple, TripleStore
from repro.nlp.dates import SimpleDate, parse_date

_STOPWORDS = {
    "the", "a", "an", "of", "and", "or", "in", "on", "to", "for", "is",
    "was", "are", "were", "by", "with", "at", "as", "its", "it", "that",
    "this", "from", "be", "has", "have",
}


class KnowledgeBase:
    """A typed, aliased, documented knowledge graph.

    Args:
        ontology: Target ontology; a fresh one is created if omitted.
    """

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology or Ontology()
        self.store = TripleStore()
        self.aliases = AliasDictionary()
        self._types: Dict[str, str] = {}
        self._descriptions: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # entities
    # ------------------------------------------------------------------
    def add_entity(
        self,
        entity_id: str,
        type_name: str = Ontology.ROOT,
        aliases: Iterable[str] = (),
        description: str = "",
    ) -> str:
        """Register an entity with its type, aliases and description.

        The entity id itself is always registered as an alias.
        """
        if not self.ontology.has_type(type_name):
            self.ontology.add_type(type_name)
        self._types[entity_id] = type_name
        self.aliases.add(entity_id.replace("_", " "), entity_id)
        for alias in aliases:
            self.aliases.add(alias, entity_id)
        if description:
            self._descriptions[entity_id] = description
        return entity_id

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._types

    def entity_type(self, entity_id: str) -> Optional[str]:
        """Declared type of the entity (None when unregistered)."""
        return self._types.get(entity_id)

    def entities(self) -> Set[str]:
        return set(self._types)

    def entities_of_type(self, type_name: str) -> Set[str]:
        """Entities whose type equals or descends from ``type_name``."""
        return {
            e
            for e, t in self._types.items()
            if self.ontology.has_type(t) and self.ontology.is_a(t, type_name)
        }

    def description(self, entity_id: str) -> str:
        return self._descriptions.get(entity_id, "")

    def set_description(self, entity_id: str, text: str) -> None:
        self._descriptions[entity_id] = text

    # ------------------------------------------------------------------
    # facts
    # ------------------------------------------------------------------
    def add_fact(
        self,
        subject: str,
        predicate: str,
        object: str,
        confidence: float = 1.0,
        source: str = "curated",
        date: Optional[SimpleDate] = None,
        curated: bool = True,
    ) -> Triple:
        """Add a fact; auto-registers the predicate when unknown."""
        if not self.ontology.has_predicate(predicate):
            self.ontology.add_predicate(predicate)
        triple = Triple(
            subject=subject,
            predicate=predicate,
            object=object,
            confidence=confidence,
            source=source,
            date=date,
            curated=curated,
        )
        self.store.add(triple)
        for endpoint in (subject, object):
            if endpoint not in self._types:
                self._types[endpoint] = Ontology.ROOT
                self.aliases.add(endpoint.replace("_", " "), endpoint)
        return triple

    def facts_about(self, entity_id: str) -> List[Triple]:
        return self.store.about(entity_id)

    @property
    def num_facts(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    # context construction (for AIDA-style similarity and LDA)
    # ------------------------------------------------------------------
    def entity_context(self, entity_id: str, use_description: bool = True) -> Counter:
        """Bag of words describing the entity.

        Built from the KG neighbourhood (predicate names, neighbour names
        and types) — the paper's adaptation of AIDA, which replaces
        Wikipedia-article context with KG-neighbourhood context — plus
        the stored description when available.
        """
        words: Counter = Counter()
        for triple in self.store.about(entity_id):
            other = triple.object if triple.subject == entity_id else triple.subject
            for token in _name_tokens(other):
                words[token] += 2
            for token in _name_tokens(triple.predicate):
                words[token] += 1
            other_type = self._types.get(other)
            if other_type:
                words[other_type.lower()] += 1
        own_type = self._types.get(entity_id)
        if own_type:
            words[own_type.lower()] += 3
        if use_description:
            for token in self._descriptions.get(entity_id, "").lower().split():
                token = token.strip(".,()\"'")
                if token and token not in _STOPWORDS:
                    words[token] += 1
        return words

    # ------------------------------------------------------------------
    # graph view
    # ------------------------------------------------------------------
    def to_property_graph(
        self,
        min_confidence: float = 0.0,
        include_extracted: bool = True,
        num_partitions: int = 4,
    ) -> PropertyGraph:
        """Materialise the KB as a property graph.

        Vertex properties carry ``type`` and ``name``; edge properties
        carry confidence/source/date/curated.
        """
        graph = PropertyGraph(num_partitions=num_partitions)
        for triple in self.store:
            if triple.confidence < min_confidence:
                continue
            if not include_extracted and not triple.curated:
                continue
            for endpoint in (triple.subject, triple.object):
                if not graph.has_vertex(endpoint):
                    graph.add_vertex(
                        endpoint,
                        type=self._types.get(endpoint, Ontology.ROOT),
                        name=endpoint.replace("_", " "),
                    )
            graph.add_edge(
                triple.subject,
                triple.object,
                triple.predicate,
                confidence=triple.confidence,
                source=triple.source,
                date=triple.date,
                curated=triple.curated,
            )
        return graph

    # ------------------------------------------------------------------
    # serialization (TSV, one fact per line)
    # ------------------------------------------------------------------
    def dump_tsv(self) -> str:
        """Serialise entities and facts to a TSV string."""
        out = io.StringIO()
        for entity, type_name in sorted(self._types.items()):
            aliases = ",".join(sorted(self.aliases.aliases_of(entity)))
            description = self._descriptions.get(entity, "").replace("\t", " ").replace("\n", " ")
            out.write(f"E\t{entity}\t{type_name}\t{aliases}\t{description}\n")
        for triple in sorted(self.store, key=lambda t: t.key()):
            date = str(triple.date) if triple.date else ""
            out.write(
                "T\t{s}\t{p}\t{o}\t{c:.6f}\t{src}\t{d}\t{cur}\n".format(
                    s=triple.subject,
                    p=triple.predicate,
                    o=triple.object,
                    c=triple.confidence,
                    src=triple.source,
                    d=date,
                    cur=int(triple.curated),
                )
            )
        return out.getvalue()

    @classmethod
    def load_tsv(cls, text: str, ontology: Optional[Ontology] = None) -> "KnowledgeBase":
        """Parse a KB from :meth:`dump_tsv` output."""
        kb = cls(ontology=ontology)
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            fields = line.split("\t")
            kind = fields[0]
            if kind == "E" and len(fields) >= 3:
                entity, type_name = fields[1], fields[2]
                aliases = fields[3].split(",") if len(fields) > 3 and fields[3] else []
                description = fields[4] if len(fields) > 4 else ""
                kb.add_entity(entity, type_name, aliases=aliases, description=description)
            elif kind == "T" and len(fields) >= 4:
                date = parse_date(fields[6]) if len(fields) > 6 and fields[6] else None
                kb.add_fact(
                    fields[1],
                    fields[2],
                    fields[3],
                    confidence=float(fields[4]) if len(fields) > 4 else 1.0,
                    source=fields[5] if len(fields) > 5 else "curated",
                    date=date,
                    curated=bool(int(fields[7])) if len(fields) > 7 else True,
                )
            else:
                raise KBError(f"malformed KB line {line_no}: {line!r}")
        return kb

    # ------------------------------------------------------------------
    def gazetteer(self) -> Dict[str, str]:
        """alias -> NER label map derived from entity types."""
        label_map = {
            "Company": "ORG", "Organization": "ORG", "Agency": "ORG",
            "University": "ORG", "Person": "PERSON", "City": "LOCATION",
            "Country": "LOCATION", "Location": "LOCATION", "Region": "LOCATION",
            "Product": "PRODUCT", "Technology": "MISC",
        }
        out: Dict[str, str] = {}
        for entity, type_name in self._types.items():
            label = None
            current: Optional[str] = type_name
            while current is not None and label is None:
                label = label_map.get(current)
                current = (
                    self.ontology.parent(current)
                    if self.ontology.has_type(current)
                    else None
                )
            if label is None:
                continue
            for alias in self.aliases.aliases_of(entity):
                out[alias] = label
        return out

    def kb_alias_index(self) -> Dict[str, str]:
        """alias -> entity id for unambiguous aliases only."""
        out: Dict[str, str] = {}
        for entity in self._types:
            for alias in self.aliases.aliases_of(entity):
                candidates = self.aliases.candidates(alias)
                if len(candidates) == 1:
                    out[alias] = entity
        return out


def _name_tokens(name: str) -> List[str]:
    tokens = []
    for raw in name.replace("_", " ").lower().split():
        token = raw.strip(".,()\"'")
        if token and token not in _STOPWORDS:
            tokens.append(token)
    return tokens
