"""Bayesian Personalized Ranking link prediction.

One latent-factor model per predicate: ``score(s, o) = σ(uₛ · vₒ + bₒ)``
where subject factors U and object factors V are trained so observed
(s, o) pairs rank above corrupted pairs (s, o′) — the BPR criterion:
maximise ``ln σ(x_so − x_so′)`` with L2 regularisation, by SGD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kb.triples import Triple


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + np.exp(-x))
    z = np.exp(x)
    return z / (1.0 + z)


@dataclass
class PredicateModel:
    """Trained factors for one predicate.

    Attributes:
        predicate: Predicate name.
        subject_index / object_index: entity -> row maps.
        U / V: Factor matrices (n_subjects x k, n_objects x k).
        object_bias: Per-object bias vector.
        trained_pairs: The (s, o) pairs the model was fit on.
    """

    predicate: str
    subject_index: Dict[str, int]
    object_index: Dict[str, int]
    U: np.ndarray
    V: np.ndarray
    object_bias: np.ndarray
    trained_pairs: Set[Tuple[str, str]]

    def raw_score(self, subject: str, object_: str) -> Optional[float]:
        """Dot-product score, or None when either side is unseen."""
        si = self.subject_index.get(subject)
        oi = self.object_index.get(object_)
        if si is None or oi is None:
            return None
        return float(self.U[si] @ self.V[oi] + self.object_bias[oi])

    def probability(self, subject: str, object_: str) -> Optional[float]:
        """σ(raw score) in (0, 1), or None for unseen entities."""
        raw = self.raw_score(subject, object_)
        return None if raw is None else _sigmoid(raw)


class BprLinkPredictor:
    """Per-predicate BPR models over a set of KG triples.

    Args:
        n_factors: Latent dimensionality k.
        n_epochs: SGD epochs per predicate.
        learning_rate: SGD step size.
        regularization: L2 coefficient.
        seed: RNG seed (training is deterministic given it).
        default_score: Returned for pairs the model cannot score
            (unseen predicate/entity) — the neutral prior.
    """

    def __init__(
        self,
        n_factors: int = 16,
        n_epochs: int = 60,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        seed: int = 17,
        default_score: float = 0.5,
    ) -> None:
        if n_factors < 1:
            raise ConfigError("n_factors must be >= 1")
        if n_epochs < 1:
            raise ConfigError("n_epochs must be >= 1")
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.seed = seed
        self.default_score = default_score
        self.models: Dict[str, PredicateModel] = {}

    # ------------------------------------------------------------------
    def fit(self, triples: Iterable[Triple]) -> "BprLinkPredictor":
        """Train one model per predicate present in ``triples``.

        Predicates with fewer than 2 distinct objects cannot rank and are
        skipped (scored at ``default_score``).
        """
        by_predicate: Dict[str, List[Tuple[str, str]]] = {}
        for triple in triples:
            by_predicate.setdefault(triple.predicate, []).append(
                (triple.subject, triple.object)
            )
        for offset, (predicate, pairs) in enumerate(sorted(by_predicate.items())):
            model = self._fit_predicate(predicate, pairs, seed=self.seed + offset)
            if model is not None:
                self.models[predicate] = model
        return self

    def _fit_predicate(
        self, predicate: str, pairs: Sequence[Tuple[str, str]], seed: int
    ) -> Optional[PredicateModel]:
        subjects = sorted({s for s, _ in pairs})
        objects = sorted({o for _, o in pairs})
        if len(objects) < 2 or not subjects:
            return None
        rng = np.random.default_rng(seed)
        subject_index = {s: i for i, s in enumerate(subjects)}
        object_index = {o: i for i, o in enumerate(objects)}
        k = self.n_factors
        U = rng.normal(0.0, 0.1, size=(len(subjects), k))
        V = rng.normal(0.0, 0.1, size=(len(objects), k))
        bias = np.zeros(len(objects))
        positives = [(subject_index[s], object_index[o]) for s, o in pairs]
        positive_set = set(positives)
        lr = self.learning_rate
        reg = self.regularization

        for _ in range(self.n_epochs):
            order = rng.permutation(len(positives))
            for idx in order:
                si, oi = positives[idx]
                # sample a corrupted object not observed with this subject
                for _attempt in range(10):
                    ni = int(rng.integers(len(objects)))
                    if (si, ni) not in positive_set:
                        break
                else:
                    continue
                x = U[si] @ (V[oi] - V[ni]) + bias[oi] - bias[ni]
                g = 1.0 - _sigmoid(x)  # d/dx ln σ(x)
                u = U[si].copy()
                U[si] += lr * (g * (V[oi] - V[ni]) - reg * U[si])
                V[oi] += lr * (g * u - reg * V[oi])
                V[ni] += lr * (-g * u - reg * V[ni])
                bias[oi] += lr * (g - reg * bias[oi])
                bias[ni] += lr * (-g - reg * bias[ni])

        return PredicateModel(
            predicate=predicate,
            subject_index=subject_index,
            object_index=object_index,
            U=U,
            V=V,
            object_bias=bias,
            trained_pairs={(s, o) for s, o in pairs},
        )

    # ------------------------------------------------------------------
    def score(self, subject: str, predicate: str, object_: str) -> float:
        """Probability-like confidence for the triple, in (0, 1)."""
        model = self.models.get(predicate)
        if model is None:
            return self.default_score
        probability = model.probability(subject, object_)
        return self.default_score if probability is None else probability

    def can_score(self, subject: str, predicate: str, object_: str) -> bool:
        """Whether a trained model covers this triple's predicate/entities."""
        model = self.models.get(predicate)
        return model is not None and model.raw_score(subject, object_) is not None

    # ------------------------------------------------------------------
    def auc(
        self,
        positives: Sequence[Triple],
        negatives: Sequence[Triple],
    ) -> float:
        """Ranking AUC of positives over negatives (0.5 = chance)."""
        if not positives or not negatives:
            raise ConfigError("auc needs non-empty positives and negatives")
        pos = [self.score(t.subject, t.predicate, t.object) for t in positives]
        neg = [self.score(t.subject, t.predicate, t.object) for t in negatives]
        wins = ties = 0
        for p in pos:
            for n in neg:
                if p > n:
                    wins += 1
                elif p == n:
                    ties += 1
        return (wins + 0.5 * ties) / (len(pos) * len(neg))

    def corrupt(
        self, triples: Sequence[Triple], rng: np.random.Generator
    ) -> List[Triple]:
        """Corrupt each triple's object within the predicate's object pool,
        avoiding observed pairs — the standard link-prediction negative set."""
        out: List[Triple] = []
        for triple in triples:
            model = self.models.get(triple.predicate)
            if model is None:
                continue
            objects = list(model.object_index)
            if len(objects) < 2:
                continue
            for _ in range(20):
                candidate = objects[int(rng.integers(len(objects)))]
                if (
                    candidate != triple.object
                    and (triple.subject, candidate) not in model.trained_pairs
                ):
                    out.append(
                        Triple(
                            triple.subject,
                            triple.predicate,
                            candidate,
                            confidence=0.0,
                            curated=False,
                        )
                    )
                    break
        return out
