"""Source-level trust tracking (paper §3.4: "in addition to tracking
source level trust...").

Trust is a Beta-Bernoulli estimate per source: agreements with the
curated KB (or later-confirmed facts) are successes, contradictions and
rejected extractions are failures.  The mean of the posterior Beta is
the trust score; priors encode that the WSJ starts more trusted than an
anonymous crawl site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass
class _BetaCounts:
    alpha: float
    beta: float

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)


class SourceTrust:
    """Per-source Beta trust model.

    Args:
        default_prior: ``(alpha, beta)`` used for unknown sources.
        priors: Optional per-source starting pseudo-counts.
    """

    DEFAULT_PRIORS: Dict[str, Tuple[float, float]] = {
        "wsj": (8.0, 2.0),
        "yago": (19.0, 1.0),
        "curated": (19.0, 1.0),
    }

    def __init__(
        self,
        default_prior: Tuple[float, float] = (2.0, 2.0),
        priors: Dict[str, Tuple[float, float]] = None,
    ) -> None:
        if min(default_prior) <= 0:
            raise ConfigError("Beta prior parameters must be positive")
        self._default_prior = default_prior
        self._counts: Dict[str, _BetaCounts] = {}
        for source, (alpha, beta) in {**self.DEFAULT_PRIORS, **(priors or {})}.items():
            self._counts[source] = _BetaCounts(alpha, beta)

    def _get(self, source: str) -> _BetaCounts:
        counts = self._counts.get(source)
        if counts is None:
            alpha, beta = self._default_prior
            counts = _BetaCounts(alpha, beta)
            self._counts[source] = counts
        return counts

    def trust(self, source: str) -> float:
        """Posterior-mean trust for a source, in (0, 1)."""
        return self._get(source).mean()

    def record_agreement(self, source: str, weight: float = 1.0) -> None:
        """The source produced a fact confirmed elsewhere."""
        self._get(source).alpha += weight

    def record_contradiction(self, source: str, weight: float = 1.0) -> None:
        """The source produced a fact later contradicted or rejected."""
        self._get(source).beta += weight

    def known_sources(self) -> Dict[str, float]:
        """All tracked sources with their current trust."""
        return {source: counts.mean() for source, counts in self._counts.items()}
