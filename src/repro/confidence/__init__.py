"""Confidence estimation via link prediction (paper §3.4).

Extracted triples are noisy; NOUS scores each one against the *prior
state of the knowledge graph* with a per-predicate latent-feature model
trained under the Bayesian Personalized Ranking criterion (Zhang et al.
2016, the paper's [16]), blended with source-level trust.
"""

from repro.confidence.bpr import BprLinkPredictor, PredicateModel
from repro.confidence.trust import SourceTrust
from repro.confidence.estimator import ConfidenceEstimator

__all__ = [
    "BprLinkPredictor",
    "PredicateModel",
    "SourceTrust",
    "ConfidenceEstimator",
]
