"""Final triple confidence: extraction x linking x link-prediction x trust.

The estimator produces the probability-like value shown on every edge of
Figure 2 ("each fact is assigned a probability value of it being true,
learned using the Link Prediction module").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.confidence.bpr import BprLinkPredictor
from repro.confidence.trust import SourceTrust
from repro.errors import ConfigError
from repro.kb.triples import Triple
from repro.linking.mapper import MappedTriple


@dataclass
class ConfidenceBreakdown:
    """Per-component confidence for one triple (for the dashboard)."""

    prior: float            # extraction x linking x mapping
    link_prediction: float  # BPR score against the prior KG state
    source_trust: float
    final: float


class ConfidenceEstimator:
    """Blend the §3.4 signals into one confidence value.

    The blend is a weighted geometric mean — any near-zero component
    drags the result down, matching the intuition that a fact needs
    *all* of plausible extraction, confident linking and KG support.

    Args:
        link_predictor: Trained BPR models (retrained periodically by the
            pipeline as the KG grows).
        source_trust: Source trust tracker.
        prior_weight / lp_weight / trust_weight: Geometric-mean exponents
            (normalised internally).
        accept_threshold: Facts below this final confidence should not
            enter the KG (callers enforce it).
    """

    def __init__(
        self,
        link_predictor: Optional[BprLinkPredictor] = None,
        source_trust: Optional[SourceTrust] = None,
        prior_weight: float = 1.0,
        lp_weight: float = 1.0,
        trust_weight: float = 1.0,
        accept_threshold: float = 0.25,
    ) -> None:
        if min(prior_weight, lp_weight, trust_weight) < 0:
            raise ConfigError("weights must be non-negative")
        total = prior_weight + lp_weight + trust_weight
        if total == 0:
            raise ConfigError("at least one weight must be positive")
        self.link_predictor = link_predictor or BprLinkPredictor()
        self.source_trust = source_trust or SourceTrust()
        self.prior_weight = prior_weight / total
        self.lp_weight = lp_weight / total
        self.trust_weight = trust_weight / total
        self.accept_threshold = accept_threshold

    def retrain(self, triples: Iterable[Triple]) -> None:
        """Refit the BPR models on the current KG state."""
        self.link_predictor = BprLinkPredictor(
            n_factors=self.link_predictor.n_factors,
            n_epochs=self.link_predictor.n_epochs,
            learning_rate=self.link_predictor.learning_rate,
            regularization=self.link_predictor.regularization,
            seed=self.link_predictor.seed,
            default_score=self.link_predictor.default_score,
        ).fit(triples)

    # ------------------------------------------------------------------
    def breakdown(self, mapped: MappedTriple) -> ConfidenceBreakdown:
        """Score one mapped triple with full component detail."""
        prior = max(1e-6, min(1.0, mapped.prior_confidence()))
        lp = self.link_predictor.score(mapped.subject, mapped.predicate, mapped.object)
        trust = self.source_trust.trust(mapped.source or "unknown")
        final = (
            prior ** self.prior_weight
            * lp ** self.lp_weight
            * trust ** self.trust_weight
        )
        return ConfidenceBreakdown(
            prior=prior, link_prediction=lp, source_trust=trust, final=final
        )

    def confidence(self, mapped: MappedTriple) -> float:
        """Final confidence in (0, 1) for one mapped triple."""
        return self.breakdown(mapped).final

    def accepts(self, mapped: MappedTriple) -> bool:
        """Whether the triple clears the acceptance threshold."""
        return self.confidence(mapped) >= self.accept_threshold

    # ------------------------------------------------------------------
    def update_trust_from_kb(self, mapped: MappedTriple, in_kb: bool) -> None:
        """Feed agreement/contradiction evidence back into source trust."""
        source = mapped.source or "unknown"
        if in_kb:
            self.source_trust.record_agreement(source)
        else:
            self.source_trust.record_contradiction(source, weight=0.25)
