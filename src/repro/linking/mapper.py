"""Raw-triple -> knowledge-graph mapping: the full §3.3 stage.

``TripleMapper`` chains entity linking and predicate mapping, enforces
ontology signatures, keeps literals (money/dates) literal, and reports
typed rejections so the demo's quality dashboard can show *why* facts
were dropped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.linking.disambiguation import EntityLinker, LinkDecision
from repro.linking.predicate_mapping import (
    LITERAL_OBJECT_PREDICATES,
    PredicateMapper,
)
from repro.nlp.dates import SimpleDate
from repro.nlp.pipeline import RawTriple

_LITERAL_LABELS = {"MONEY", "DATE", "PERCENT"}


@dataclass
class MappedTriple:
    """A canonical triple ready for confidence scoring and KG insertion."""

    subject: str
    predicate: str
    object: str
    object_is_literal: bool
    extraction_confidence: float
    link_confidence: float
    mapping_confidence: float
    date: Optional[SimpleDate]
    doc_id: str
    source: str
    raw: RawTriple

    def prior_confidence(self) -> float:
        """Combined pre-link-prediction confidence."""
        return (
            self.extraction_confidence
            * self.link_confidence
            * self.mapping_confidence
        )


@dataclass
class RejectedTriple:
    """A raw triple the mapper refused, with the reason."""

    raw: RawTriple
    reason: str  # "negated" | "unmapped-relation" | "signature" | "self-loop"


@dataclass
class MappingStats:
    """Counters for the quality dashboard."""

    mapped: int = 0
    rejected: Counter = field(default_factory=Counter)
    created_entities: int = 0

    def total(self) -> int:
        return self.mapped + sum(self.rejected.values())


class TripleMapper:
    """Map raw extractions into canonical KG triples.

    Args:
        kb: Target knowledge base (entities may be created in it).
        linker: Entity linker; constructed from ``kb`` when omitted.
        predicate_mapper: Predicate mapper; constructed when omitted.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        linker: Optional[EntityLinker] = None,
        predicate_mapper: Optional[PredicateMapper] = None,
    ) -> None:
        self.kb = kb
        self.linker = linker or EntityLinker(kb)
        self.predicate_mapper = predicate_mapper or PredicateMapper(kb)
        self.stats = MappingStats()
        # mention surface form -> linked entity id, accumulated across
        # documents; used by the semi-supervised pattern expansion.
        self.mention_index: Dict[str, str] = {}

    def map_triple(
        self, raw: RawTriple, context_words: Optional[Sequence[str]] = None
    ) -> Tuple[Optional[MappedTriple], Optional[RejectedTriple]]:
        """Map one raw triple; exactly one of the pair is non-None."""
        results = self.map_document([raw], context_words=context_words)
        mapped, rejected = results
        return (mapped[0] if mapped else None, rejected[0] if rejected else None)

    def map_document(
        self,
        raw_triples: Sequence[RawTriple],
        context_words: Optional[Sequence[str]] = None,
    ) -> Tuple[List[MappedTriple], List[RejectedTriple]]:
        """Map all triples of one document with collective entity linking."""
        decision_of = self._link_mentions(raw_triples, context_words)
        return self._map_with_decisions(raw_triples, decision_of)

    def map_batch(
        self,
        doc_triples: Sequence[Sequence[RawTriple]],
        doc_contexts: Optional[Sequence[Optional[Sequence[str]]]] = None,
    ) -> List[Tuple[List[MappedTriple], List[RejectedTriple]]]:
        """Map several documents' triples with ONE collective linking pass.

        The batch hot path: mentions shared across documents are linked
        once (against the merged batch context) instead of once per
        document, amortising the dominant cost of §3.3.  Per-document
        mapped/rejected lists come back in input order.
        """
        all_triples: List[RawTriple] = [
            raw for triples in doc_triples for raw in triples
        ]
        merged_context: List[str] = []
        for context in doc_contexts or ():
            if context:
                merged_context.extend(context)
        decision_of = self._link_mentions(all_triples, merged_context or None)
        return [
            self._map_with_decisions(triples, decision_of)
            for triples in doc_triples
        ]

    def _link_mentions(
        self,
        raw_triples: Sequence[RawTriple],
        context_words: Optional[Sequence[str]],
    ) -> Dict[str, LinkDecision]:
        """Collectively link the unique entity-ish mentions of a document
        (or a whole batch) and record them in the mention index."""
        mention_keys: List[Tuple[str, Optional[str]]] = []
        for raw in raw_triples:
            mention_keys.append((raw.subject, raw.subject_label))
            if raw.object_label not in _LITERAL_LABELS:
                mention_keys.append((raw.object, raw.object_label))
        unique: Dict[str, Optional[str]] = {}
        for mention, label in mention_keys:
            if mention and mention not in unique:
                unique[mention] = label
        mentions = list(unique)
        decisions = self.linker.link_all(
            mentions,
            context_words=context_words,
            ner_labels=[unique[m] for m in mentions],
        )
        decision_of: Dict[str, LinkDecision] = {
            d.mention: d for d in decisions
        }
        self.stats.created_entities += sum(1 for d in decisions if d.created)
        for decision in decisions:
            self.mention_index[decision.mention] = decision.entity
        return decision_of

    def _map_with_decisions(
        self,
        raw_triples: Sequence[RawTriple],
        decision_of: Dict[str, LinkDecision],
    ) -> Tuple[List[MappedTriple], List[RejectedTriple]]:
        mapped: List[MappedTriple] = []
        rejected: List[RejectedTriple] = []
        for raw in raw_triples:
            outcome = self._map_one(raw, decision_of)
            if isinstance(outcome, MappedTriple):
                mapped.append(outcome)
                self.stats.mapped += 1
            else:
                rejected.append(outcome)
                self.stats.rejected[outcome.reason] += 1
        return mapped, rejected

    # ------------------------------------------------------------------
    def _map_one(
        self, raw: RawTriple, decision_of: Dict[str, LinkDecision]
    ):
        if raw.negated:
            return RejectedTriple(raw=raw, reason="negated")

        subject_decision = decision_of.get(raw.subject)
        if subject_decision is None:
            return RejectedTriple(raw=raw, reason="no-subject")
        subject_type = self.kb.entity_type(subject_decision.entity)

        object_is_literal = raw.object_label in _LITERAL_LABELS
        if object_is_literal:
            object_id = raw.object
            object_type = "Literal"
            object_link_score = 1.0
        else:
            object_decision = decision_of.get(raw.object)
            if object_decision is None:
                return RejectedTriple(raw=raw, reason="no-object")
            object_id = object_decision.entity
            object_type = self.kb.entity_type(object_id)
            object_link_score = object_decision.score

        # Literal objects carry no ontology type; map on the subject side
        # only, then let the explicit literal/non-literal checks below
        # produce a precise "signature" rejection.
        mapping = self.predicate_mapper.map_relation(
            raw.relation,
            subject_type=subject_type,
            object_type=None if object_is_literal else object_type,
        )
        if mapping is None:
            return RejectedTriple(raw=raw, reason="unmapped-relation")

        if mapping.predicate in LITERAL_OBJECT_PREDICATES and not object_is_literal:
            # Predicate expects a literal (amount); entity object is a
            # signature violation ("raised Accel Partners").
            return RejectedTriple(raw=raw, reason="signature")
        if object_is_literal and mapping.predicate not in LITERAL_OBJECT_PREDICATES:
            return RejectedTriple(raw=raw, reason="signature")

        if not object_is_literal and subject_decision.entity == object_id:
            return RejectedTriple(raw=raw, reason="self-loop")

        link_confidence = min(subject_decision.score, object_link_score)
        return MappedTriple(
            subject=subject_decision.entity,
            predicate=mapping.predicate,
            object=object_id,
            object_is_literal=object_is_literal,
            extraction_confidence=raw.confidence,
            link_confidence=max(0.1, link_confidence),
            mapping_confidence=mapping.score,
            date=raw.date,
            doc_id=raw.doc_id,
            source=raw.source,
            raw=raw,
        )
