"""AIDA-variant entity disambiguation (paper §3.3, Hoffart et al. 2011).

Score of mention m -> candidate entity e combines:

- popularity prior  p(e | m)  from the alias dictionary,
- local context similarity between the words around the mention and the
  entity's *KG-neighbourhood* bag of words (the paper's adaptation:
  "we use only the entity neighborhood in the knowledge graph to
  calculate contextual similarity"),
- collective coherence: entity-entity relatedness (Milne-Witten style
  over shared KG neighbours) with AIDA's greedy pruning — repeatedly
  drop the globally weakest candidate while every mention keeps one.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.knowledge_base import KnowledgeBase

_SLUG_RE = re.compile(r"[^A-Za-z0-9]+")


def slugify(text: str) -> str:
    """Canonical entity id for a brand-new mention."""
    return _SLUG_RE.sub("_", text.strip()).strip("_") or "unknown"


def cosine(a: Counter, b: Counter) -> float:
    """Cosine similarity of two bags of words."""
    if not a or not b:
        return 0.0
    common = set(a) & set(b)
    dot = sum(a[w] * b[w] for w in common)
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


@dataclass
class LinkDecision:
    """Outcome of linking one mention.

    Attributes:
        mention: Original surface form.
        entity: Chosen canonical entity id (possibly newly created).
        score: Combined linking score in [0, 1].
        created: True when no candidate existed and a new entity id was
            minted (the paper's "create a new node").
        candidates: The scored candidate list ``(entity, score)`` that
            was considered, for diagnostics.
    """

    mention: str
    entity: str
    score: float
    created: bool = False
    candidates: List[Tuple[str, float]] = field(default_factory=list)


class EntityLinker:
    """Collective entity linker over a knowledge base.

    Args:
        kb: The knowledge base supplying aliases, neighbourhood context
            and relatedness.
        prior_weight / context_weight / coherence_weight: Mixture weights
            (normalised internally).
        create_missing: Mint a new entity for unlinkable mentions.
        min_score: Below this combined score the linker prefers creating
            a new entity (when allowed) over a dubious link.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        prior_weight: float = 0.2,
        context_weight: float = 0.4,
        coherence_weight: float = 0.4,
        create_missing: bool = True,
        min_score: float = 0.05,
        max_candidates: int = 8,
    ) -> None:
        self.kb = kb
        total = prior_weight + context_weight + coherence_weight
        self.prior_weight = prior_weight / total
        self.context_weight = context_weight / total
        self.coherence_weight = coherence_weight / total
        self.create_missing = create_missing
        self.min_score = min_score
        self.max_candidates = max_candidates
        self._context_cache: Dict[str, Counter] = {}

    # ------------------------------------------------------------------
    def link(
        self,
        mention: str,
        context_words: Optional[Sequence[str]] = None,
        ner_label: Optional[str] = None,
    ) -> LinkDecision:
        """Link a single mention (no collective coherence)."""
        return self.link_all([mention], context_words, [ner_label])[0]

    def link_all(
        self,
        mentions: Sequence[str],
        context_words: Optional[Sequence[str]] = None,
        ner_labels: Optional[Sequence[Optional[str]]] = None,
    ) -> List[LinkDecision]:
        """Collectively link all mentions from one document.

        Args:
            mentions: Surface forms, document order.
            context_words: Bag of words of the surrounding document.
            ner_labels: Optional NER label per mention (guides the type
                of newly created entities).
        """
        context = Counter(w.lower() for w in (context_words or []))
        ner_labels = list(ner_labels or [None] * len(mentions))

        # Stage 1: local scores (prior + context) per mention.  Context
        # similarities are normalised within each candidate set (AIDA
        # normalises its similarity component the same way) so a strong
        # relative match can overcome a popularity prior.
        local: List[List[Tuple[str, float]]] = []
        for mention in mentions:
            candidates = self.kb.aliases.candidates(mention)[: self.max_candidates]
            sims = [
                cosine(context, self._entity_context(entity))
                for entity, _ in candidates
            ]
            max_sim = max(sims, default=0.0)
            scored = []
            for (entity, prior), sim in zip(candidates, sims):
                rel_sim = sim / max_sim if max_sim > 0 else 0.0
                score = self.prior_weight * prior + self.context_weight * rel_sim
                scored.append((entity, score))
            local.append(scored)

        # Stage 2: AIDA-style greedy pruning on the coherence graph.
        surviving = self._greedy_coherence(local)

        decisions: List[LinkDecision] = []
        for mention, candidates, label in zip(mentions, surviving, ner_labels):
            if candidates:
                best_entity, best_score = max(candidates, key=lambda kv: kv[1])
                if best_score >= self.min_score or not self.create_missing:
                    decisions.append(
                        LinkDecision(
                            mention=mention,
                            entity=best_entity,
                            score=min(1.0, best_score),
                            candidates=sorted(candidates, key=lambda kv: -kv[1]),
                        )
                    )
                    continue
            decisions.append(self._create(mention, label, candidates))
        return decisions

    # ------------------------------------------------------------------
    def _entity_context(self, entity: str) -> Counter:
        cached = self._context_cache.get(entity)
        if cached is None:
            cached = self.kb.entity_context(entity)
            self._context_cache[entity] = cached
        return cached

    def invalidate_cache(self, entity: Optional[str] = None) -> None:
        """Drop cached contexts (call after KG updates)."""
        if entity is None:
            self._context_cache.clear()
        else:
            self._context_cache.pop(entity, None)

    def relatedness(self, a: str, b: str) -> float:
        """Milne-Witten-flavoured KG relatedness in [0, 1]."""
        if a == b:
            return 1.0
        na = self.kb.store.neighbors(a)
        nb = self.kb.store.neighbors(b)
        if b in na or a in nb:
            return 1.0
        if not na or not nb:
            return 0.0
        inter = len(na & nb)
        if inter == 0:
            return 0.0
        total = len(self.kb.entities()) or 1
        score = 1.0 - (
            math.log(max(len(na), len(nb))) - math.log(inter)
        ) / (math.log(total) - math.log(min(len(na), len(nb))) + 1e-9)
        return max(0.0, min(1.0, score))

    def _greedy_coherence(
        self, local: List[List[Tuple[str, float]]]
    ) -> List[List[Tuple[str, float]]]:
        """Add coherence mass, then greedily drop weakest candidates."""
        if self.coherence_weight == 0.0 or sum(1 for c in local if c) < 2:
            return local

        # Working copies: mention index -> {entity: local score}.
        pools: List[Dict[str, float]] = [dict(c) for c in local]

        def coherence_of(index: int, entity: str) -> float:
            scores = []
            for j, pool in enumerate(pools):
                if j == index or not pool:
                    continue
                scores.append(max(self.relatedness(entity, other) for other in pool))
            return sum(scores) / len(scores) if scores else 0.0

        # Iteratively remove the globally weakest candidate where the
        # owning mention still has >1 option.
        improved = True
        while improved:
            improved = False
            worst: Optional[Tuple[float, int, str]] = None
            for i, pool in enumerate(pools):
                if len(pool) <= 1:
                    continue
                for entity, local_score in pool.items():
                    combined = local_score + self.coherence_weight * coherence_of(i, entity)
                    if worst is None or combined < worst[0]:
                        worst = (combined, i, entity)
            if worst is not None:
                _, i, entity = worst
                del pools[i][entity]
                improved = any(len(pool) > 1 for pool in pools)

        # Final scores: local + coherence for the survivors.
        out: List[List[Tuple[str, float]]] = []
        for i, pool in enumerate(pools):
            out.append(
                [
                    (
                        entity,
                        min(
                            1.0,
                            score + self.coherence_weight * coherence_of(i, entity),
                        ),
                    )
                    for entity, score in pool.items()
                ]
            )
        return out

    def _create(
        self,
        mention: str,
        ner_label: Optional[str],
        candidates: List[Tuple[str, float]],
    ) -> LinkDecision:
        type_map = {
            "ORG": "Company",
            "PERSON": "Person",
            "LOCATION": "Location",
            "PRODUCT": "Product",
        }
        entity_id = slugify(mention)
        if not self.kb.has_entity(entity_id):
            type_name = type_map.get(ner_label or "", "Thing")
            if not self.kb.ontology.has_type(type_name):
                type_name = "Thing"
            self.kb.add_entity(entity_id, type_name, aliases=[mention])
        else:
            self.kb.aliases.add(mention, entity_id)
        return LinkDecision(
            mention=mention,
            entity=entity_id,
            score=0.3,
            created=True,
            candidates=candidates,
        )
