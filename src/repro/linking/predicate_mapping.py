"""Distant-supervision predicate mapping (paper §3.3).

OpenIE produces far too many relation phrases; NOUS learns a rule-based
model per *target ontology predicate*, bootstrapped from 5-10 seed
patterns ("Extreme Extraction", Freedman et al. 2011) and expanded
semi-supervised: raw triples whose (subject, object) pair already exists
in the KB under predicate p are distant-supervision positives for p, and
their relation phrases become new patterns when precise enough.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.nlp.lexicon import verb_lemma
from repro.nlp.pipeline import RawTriple

# Seed patterns: target predicate -> 5-10 normalised relation patterns.
# A pattern is the lemmatised relation phrase ("raise from" etc.).
SEED_PATTERNS: Dict[str, List[str]] = {
    "acquired": ["acquire", "buy", "purchase", "take over", "acquire:a1", "buy:a1"],
    "raisedFunding": ["raise", "secure", "raise:a1", "secure:a1", "close round of"],
    "fundedBy": ["raise from", "secure from", "raise:a2-source", "secure:a2-source",
                 "receive funding from", "be fund by"],
    "investsIn": ["invest in", "invest:a1", "back", "lead round in", "fund"],
    "launched": ["launch", "unveil", "release", "introduce", "launch:a1",
                 "unveil:a1", "release:a1", "introduce:a1", "debut"],
    "usesTechnology": ["use", "employ", "deploy", "use:a1", "employ:a1",
                       "deploy:a1", "adopt", "apply"],
    "partnerOf": ["partner with", "sign with", "partner:a1", "sign:a1",
                  "team with", "sign agreement with", "merge with", "merge:a1"],
    "headquarteredIn": ["be headquarter in", "be base in", "headquarter in",
                        "base in", "based in", "is headquartered in"],
    "manufactures": ["manufacture", "make", "produce", "build",
                     "manufacture:a1", "produce:a1", "build:a1"],
    "regulates": ["regulate", "regulate:a1", "approve rules for",
                  "propose rules for", "oversee"],
    "operatesIn": ["expand into", "enter", "expand:a2-scope", "enter:a1",
                   "operate in", "compete in"],
    "acquiredFor": ["acquire for", "buy for", "acquire:am-price", "buy:am-price",
                    "purchase for"],
    "bannedIn": ["ban in", "ban:am-loc", "be ban in", "prohibit in"],
    "foundedBy": ["be found by", "founded by", "be founded by"],
    "sells": ["sell", "sell:a1", "offer", "market"],
    "develops": ["develop", "develop:a1", "design", "engineer"],
}

# Predicates whose object is a literal (money, dates) rather than an entity.
LITERAL_OBJECT_PREDICATES = {"raisedFunding", "acquiredFor"}


def normalize_relation(relation: str) -> str:
    """Lemmatise the verb of a relation phrase, lowercase the rest.

    "raised from" -> "raise from"; SRL relations ("raise:a2-source")
    pass through lowercased.
    """
    relation = relation.strip().lower()
    if ":" in relation:
        head, _, role = relation.partition(":")
        return f"{verb_lemma(head)}:{role}"
    words = relation.split()
    if not words:
        return relation
    words[0] = verb_lemma(words[0])
    return " ".join(words)


@dataclass
class PredicateModel:
    """Learned rule model for one target predicate."""

    predicate: str
    patterns: Dict[str, float] = field(default_factory=dict)  # pattern -> weight

    def score(self, pattern: str) -> float:
        return self.patterns.get(pattern, 0.0)


@dataclass
class MappingResult:
    """Outcome of mapping one raw relation phrase."""

    predicate: str
    score: float
    pattern: str


class PredicateMapper:
    """Seeded + distantly-supervised relation phrase -> predicate model.

    Args:
        kb: KB whose ontology defines the target predicates and whose
            facts provide distant supervision.
        seeds: Predicate -> seed patterns (defaults to
            :data:`SEED_PATTERNS` filtered to the ontology).
        min_pattern_count: Occurrences required before a mined pattern
            is adopted.
        min_pattern_precision: Fraction of a pattern's distant matches
            that must agree on one predicate.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        seeds: Optional[Dict[str, List[str]]] = None,
        min_pattern_count: int = 3,
        min_pattern_precision: float = 0.7,
    ) -> None:
        self.kb = kb
        self.min_pattern_count = min_pattern_count
        self.min_pattern_precision = min_pattern_precision
        self.models: Dict[str, PredicateModel] = {}
        self._pattern_index: Dict[str, List[Tuple[str, float]]] = {}
        seeds = seeds if seeds is not None else SEED_PATTERNS
        for predicate, patterns in seeds.items():
            model = PredicateModel(predicate=predicate)
            for pattern in patterns:
                model.patterns[normalize_relation(pattern)] = 1.0
            self.models[predicate] = model
            if not kb.ontology.has_predicate(predicate):
                kb.ontology.add_predicate(predicate)
        self._rebuild_index()

    # ------------------------------------------------------------------
    def _rebuild_index(self) -> None:
        index: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
        for model in self.models.values():
            for pattern, weight in model.patterns.items():
                index[pattern].append((model.predicate, weight))
        self._pattern_index = dict(index)

    def map_relation(
        self,
        relation: str,
        subject_type: Optional[str] = None,
        object_type: Optional[str] = None,
    ) -> Optional[MappingResult]:
        """Map a raw relation phrase to an ontology predicate.

        Signature checking: among pattern matches, predicates whose
        domain/range conflict with the argument types are skipped.
        """
        pattern = normalize_relation(relation)
        matches = self._pattern_index.get(pattern, [])
        best: Optional[MappingResult] = None
        for predicate, weight in matches:
            if not self.kb.ontology.has_predicate(predicate):
                continue
            if not self.kb.ontology.signature_allows(predicate, subject_type, object_type):
                continue
            if best is None or weight > best.score:
                best = MappingResult(predicate=predicate, score=weight, pattern=pattern)
        return best

    # ------------------------------------------------------------------
    # semi-supervised expansion via distant supervision
    # ------------------------------------------------------------------
    def expand_from_corpus(
        self,
        raw_triples: Iterable[RawTriple],
        entity_of: Dict[str, str],
    ) -> Dict[str, List[str]]:
        """Mine new patterns from raw triples aligned against KB facts.

        Args:
            raw_triples: Extraction output over a corpus.
            entity_of: Map surface form -> canonical entity id (as
                produced by the entity linker) used for alignment.

        Returns:
            predicate -> newly adopted patterns.
        """
        # pattern -> Counter(predicate -> votes)
        votes: Dict[str, Counter] = defaultdict(Counter)
        totals: Counter = Counter()
        for raw in raw_triples:
            subject = entity_of.get(raw.subject)
            object_ = entity_of.get(raw.object)
            if subject is None or object_ is None:
                continue
            pattern = normalize_relation(raw.relation)
            totals[pattern] += 1
            for fact in self.kb.store.match(subject=subject, object=object_):
                votes[pattern][fact.predicate] += 1

        adopted: Dict[str, List[str]] = defaultdict(list)
        for pattern, counter in votes.items():
            if totals[pattern] < self.min_pattern_count:
                continue
            predicate, count = counter.most_common(1)[0]
            support = sum(counter.values())
            precision = count / support
            if precision < self.min_pattern_precision:
                continue
            model = self.models.setdefault(predicate, PredicateModel(predicate=predicate))
            if pattern not in model.patterns:
                model.patterns[pattern] = round(precision, 3)
                adopted[predicate].append(pattern)
        if adopted:
            self._rebuild_index()
        return dict(adopted)

    def known_patterns(self, predicate: str) -> List[str]:
        """Patterns currently attached to a predicate."""
        model = self.models.get(predicate)
        return sorted(model.patterns) if model else []

    def coverage(self, relations: Iterable[str]) -> float:
        """Fraction of relation phrases that map to some predicate."""
        relations = list(relations)
        if not relations:
            return 0.0
        mapped = sum(1 for r in relations if self.map_relation(r) is not None)
        return mapped / len(relations)
