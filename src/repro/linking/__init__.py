"""Mapping raw triples into the knowledge graph (paper §3.3).

Two halves:

- :mod:`repro.linking.disambiguation` — the AIDA-variant entity linker
  (popularity prior + KG-neighbourhood context similarity + collective
  coherence with greedy candidate pruning).
- :mod:`repro.linking.predicate_mapping` — distant-supervision predicate
  mapper bootstrapped from 5-10 seed patterns per target predicate and
  expanded semi-supervised, following Freedman et al.'s Extreme
  Extraction recipe cited by the paper.

:class:`~repro.linking.mapper.TripleMapper` chains both and enforces
ontology signatures, emitting canonical triples (or typed rejections).
"""

from repro.linking.disambiguation import EntityLinker, LinkDecision
from repro.linking.predicate_mapping import PredicateMapper, SEED_PATTERNS
from repro.linking.mapper import MappedTriple, RejectedTriple, TripleMapper

__all__ = [
    "EntityLinker",
    "LinkDecision",
    "PredicateMapper",
    "SEED_PATTERNS",
    "TripleMapper",
    "MappedTriple",
    "RejectedTriple",
]
