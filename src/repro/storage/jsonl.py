"""JSON-lines storage backend: one snapshot file + an append-only WAL.

Layout inside the data directory::

    snapshot.json   {"format": 1, "checksum": "...", "state": {...}}
    wal.jsonl       {"seq": 0, "checksum": "...", "record": {...}}\\n ...

Durability mechanics:

- the snapshot is written to a temp file in the same directory, fsynced,
  then ``os.replace``d over the old one (and the directory fsynced), so
  a crash mid-write can never destroy the previous good snapshot;
- every WAL append is flushed and fsynced before returning — the
  micro-batch boundary is the durability boundary;
- both carry a SHA-256 checksum over the canonical (sorted-keys,
  compact) JSON of their payload.  A snapshot failing its checksum reads
  as ``None``; a WAL line failing its checksum — or torn mid-line by a
  crash, or out of sequence — ends the replayable prefix, and the file
  is truncated back to the last good byte so subsequent appends never
  interleave with garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from repro.errors import StorageError
from repro.storage.backend import SNAPSHOT_FORMAT

SNAPSHOT_FILENAME = "snapshot.json"
WAL_FILENAME = "wal.jsonl"


def canonical_json(payload: Any) -> str:
    """Canonical serialisation checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class JsonLinesBackend:
    """Stdlib-only :class:`~repro.storage.backend.StorageBackend`.

    Args:
        data_dir: Directory to own (created if missing).  One backend —
            one shard — one directory; sharing a directory between two
            live services corrupts both.
    """

    def __init__(self, data_dir: str) -> None:
        try:
            os.makedirs(data_dir, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create data dir {data_dir!r}: {exc}")
        self._data_dir = data_dir
        self.snapshot_path = os.path.join(data_dir, SNAPSHOT_FILENAME)
        self.wal_path = os.path.join(data_dir, WAL_FILENAME)
        self._wal_handle = None
        # Unknown until the WAL has been scanned; append_wal loads it
        # lazily so append-without-recover still sequences correctly.
        self._next_seq: Optional[int] = None

    @property
    def data_dir(self) -> str:
        return self._data_dir

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def write_snapshot(self, state: Dict[str, Any]) -> None:
        envelope = {
            "format": SNAPSHOT_FORMAT,
            "checksum": checksum(state),
            "state": state,
        }
        tmp_path = self.snapshot_path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.snapshot_path)
            self._fsync_dir()
        except OSError as exc:
            raise StorageError(
                f"cannot write snapshot {self.snapshot_path!r}: {exc}"
            )

    def read_snapshot(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None  # unreadable/corrupt: recover from the WAL alone
        if not isinstance(envelope, dict):
            return None
        if envelope.get("format") != SNAPSHOT_FORMAT:
            return None
        state = envelope.get("state")
        if not isinstance(state, dict):
            return None
        if checksum(state) != envelope.get("checksum"):
            return None
        return state

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------
    def append_wal(self, record: Dict[str, Any]) -> int:
        if self._next_seq is None:
            self.read_wal()  # scan (and truncate) once to learn the seq
        assert self._next_seq is not None
        seq = self._next_seq
        line = canonical_json(
            {"seq": seq, "checksum": checksum(record), "record": record}
        )
        try:
            handle = self._wal()
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot append WAL {self.wal_path!r}: {exc}")
        self._next_seq = seq + 1
        return seq

    def read_wal(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        good_bytes = 0
        try:
            with open(self.wal_path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._next_seq = 0
            return records
        except OSError as exc:
            raise StorageError(f"cannot read WAL {self.wal_path!r}: {exc}")
        for line in raw.split(b"\n"):
            if not line:
                # the final newline (or an empty torn tail)
                break
            entry = self._parse_line(line, expected_seq=len(records))
            if entry is None:
                break  # torn/corrupt/out-of-sequence: end of good prefix
            records.append(entry)
            good_bytes += len(line) + 1
        if good_bytes < len(raw):
            self._truncate_wal(good_bytes)
        self._next_seq = len(records)
        return records

    def reset_wal(self) -> None:
        self._close_wal()
        self._truncate_wal(0)
        self._next_seq = 0

    def close(self) -> None:
        self._close_wal()

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_line(
        line: bytes, expected_seq: int
    ) -> Optional[Dict[str, Any]]:
        try:
            envelope = json.loads(line)
        except ValueError:
            return None
        if not isinstance(envelope, dict):
            return None
        record = envelope.get("record")
        if not isinstance(record, dict):
            return None
        if envelope.get("seq") != expected_seq:
            return None
        if checksum(record) != envelope.get("checksum"):
            return None
        return record

    def _wal(self):
        if self._wal_handle is None:
            self._wal_handle = open(self.wal_path, "ab")
        return self._wal_handle

    def _close_wal(self) -> None:
        if self._wal_handle is not None:
            try:
                self._wal_handle.close()
            except OSError:
                pass
            self._wal_handle = None

    def _truncate_wal(self, size: int) -> None:
        self._close_wal()
        try:
            with open(self.wal_path, "ab") as handle:
                handle.truncate(size)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(
                f"cannot truncate WAL {self.wal_path!r}: {exc}"
            )

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self._data_dir, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds: best effort
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)
