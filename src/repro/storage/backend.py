"""The pluggable storage contract a durable shard writes through.

A backend owns one shard's data directory and moves *opaque JSON-safe
dicts*: it never interprets engine state (that is
:mod:`repro.storage.snapshot`'s job), it only guarantees the durability
semantics the recovery layer builds on:

- :meth:`StorageBackend.write_snapshot` is **atomic** — a crash during
  the write leaves the previous snapshot intact, never a half-written
  one;
- :meth:`StorageBackend.append_wal` is **fsynced** before it returns —
  once an ingest micro-batch's record is appended, a ``kill -9``
  cannot lose it;
- :meth:`StorageBackend.read_wal` **degrades through torn tails** — a
  record cut short by a crash (partial line, bad checksum, seq gap) ends
  the replayable prefix instead of raising, and the tail is truncated so
  later appends cannot interleave with garbage;
- :meth:`StorageBackend.read_snapshot` returns ``None`` for a missing
  *or corrupt* snapshot — the caller falls back to a full WAL replay.

Genuine failures of the guarantee itself (unwritable directory, fsync
failure) raise :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

#: Version of the on-disk snapshot/WAL envelope schema.  Bumped on any
#: incompatible layout change; readers refuse (snapshot) or stop (WAL)
#: at records written by a different format.
SNAPSHOT_FORMAT = 1


@runtime_checkable
class StorageBackend(Protocol):
    """What the durable service layer requires of a storage plugin."""

    @property
    def data_dir(self) -> str:
        """The shard's data directory (owned by this backend)."""
        ...

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically persist a full engine-state dict."""
        ...

    def read_snapshot(self) -> Optional[Dict[str, Any]]:
        """The last good snapshot state, or ``None`` when missing or
        corrupt (checksum/format mismatch) — never an exception for
        bad bytes."""
        ...

    def append_wal(self, record: Dict[str, Any]) -> int:
        """Durably append one WAL record; returns its sequence number.
        The record is on disk (flushed + fsynced) when this returns."""
        ...

    def read_wal(self) -> List[Dict[str, Any]]:
        """Every intact WAL record in order, stopping at (and
        truncating) the first torn/corrupt line."""
        ...

    def reset_wal(self) -> None:
        """Truncate the WAL (called right after a snapshot covers it)."""
        ...

    def close(self) -> None:
        """Release file handles (idempotent)."""
        ...
