"""Engine-state snapshots and WAL effect records for one NOUS shard.

Two complementary serialisations of a :class:`~repro.core.pipeline.Nous`
engine, both JSON-safe and built on the frozen leaf codecs in
:mod:`repro.api.wire`:

- :func:`snapshot_nous` / :func:`restore_nous` — the *full* state: KB
  (ontology, aliases, entities, facts), sliding window, miner, BPR
  models, source trust, linker cache, mapper state and every monotonic
  counter feeding the composite version stamp.  Restore rebuilds the
  window and miner by replaying the windowed edges through the normal
  listener wiring, then forces the counters, so the restored engine is
  *stamp-exact*: ``dynamic.version`` and every query payload match the
  snapshotted engine byte for byte.

- :func:`record_ingest` / :func:`replay_record` — the *incremental*
  effects of one accepted ingest call, captured as a structured WAL
  record.  Replay skips the expensive stages (NLP extraction, entity
  linking, confidence scoring) and re-applies only their outcomes —
  which facts were accepted, which entities/aliases/predicates were
  minted, how trust moved — then forces the post-call counters, landing
  on the exact same composite stamp the original call produced.

Both sides preserve **dict insertion order** deliberately: under
``PYTHONHASHSEED=0`` the set/dict iteration orders that feed the LDA
topic fit and the BPR training derive from insertion history, so a
restored engine only answers byte-identically if that history is
reproduced.

The restore target must be a *freshly constructed* engine built from
the same curated KB (the NLP gazetteer and alias index are frozen from
it at construction and are not part of the snapshot).
"""

from __future__ import annotations

import contextlib
import json
from collections import Counter, deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.api.wire import (
    date_from_wire,
    date_to_wire,
    pattern_from_wire,
    pattern_to_wire,
    timed_edge_from_wire,
    timed_edge_to_wire,
    triple_from_wire,
    triple_to_wire,
)
from repro.confidence.bpr import BprLinkPredictor, PredicateModel
from repro.confidence.trust import _BetaCounts
from repro.core.pipeline import Nous
from repro.errors import StorageError
from repro.kb.ontology import PredicateSignature
from repro.kb.triples import TripleStore
from repro.linking.mapper import MappedTriple, MappingStats
from repro.nlp.pipeline import RawTriple


# ---------------------------------------------------------------------------
# raw-triple codec (the one engine leaf the wire module has no payload for)
# ---------------------------------------------------------------------------


def raw_triple_to_wire(raw: RawTriple) -> Dict[str, Any]:
    return {
        "subject": raw.subject,
        "relation": raw.relation,
        "object": raw.object,
        "date": date_to_wire(raw.date),
        "doc_id": raw.doc_id,
        "sentence_index": raw.sentence_index,
        "confidence": raw.confidence,
        "extractor": raw.extractor,
        "subject_label": raw.subject_label,
        "object_label": raw.object_label,
        "negated": raw.negated,
        "source": raw.source,
    }


def raw_triple_from_wire(data: Dict[str, Any]) -> RawTriple:
    return RawTriple(
        subject=str(data["subject"]),
        relation=str(data["relation"]),
        object=str(data["object"]),
        date=date_from_wire(data["date"]),
        doc_id=str(data["doc_id"]),
        sentence_index=int(data["sentence_index"]),
        confidence=float(data["confidence"]),
        extractor=str(data["extractor"]),
        subject_label=data["subject_label"],
        object_label=data["object_label"],
        negated=bool(data["negated"]),
        source=str(data["source"]),
    )


def _model_to_wire(model: PredicateModel) -> Dict[str, Any]:
    subjects = sorted(model.subject_index, key=model.subject_index.__getitem__)
    objects = sorted(model.object_index, key=model.object_index.__getitem__)
    return {
        "predicate": model.predicate,
        "subjects": subjects,
        "objects": objects,
        "U": model.U.tolist(),
        "V": model.V.tolist(),
        "object_bias": model.object_bias.tolist(),
        "trained_pairs": sorted(list(pair) for pair in model.trained_pairs),
    }


def _model_from_wire(data: Dict[str, Any]) -> PredicateModel:
    return PredicateModel(
        predicate=str(data["predicate"]),
        subject_index={s: i for i, s in enumerate(data["subjects"])},
        object_index={o: i for i, o in enumerate(data["objects"])},
        U=np.array(data["U"], dtype=np.float64),
        V=np.array(data["V"], dtype=np.float64),
        object_bias=np.array(data["object_bias"], dtype=np.float64),
        trained_pairs={(s, o) for s, o in data["trained_pairs"]},
    )


# ---------------------------------------------------------------------------
# full snapshot
# ---------------------------------------------------------------------------


def snapshot_nous(nous: Nous) -> Dict[str, Any]:
    """Serialise the complete engine state as a JSON-safe dict."""
    kb = nous.kb
    window = nous.dynamic.window
    miner = nous.dynamic.miner
    predictor = nous.estimator.link_predictor
    trust = nous.estimator.source_trust
    return {
        "ontology": {
            "types": [
                [name, parent] for name, parent in kb.ontology._parent.items()
            ],
            "predicates": [
                {
                    "name": sig.name,
                    "domain": sig.domain,
                    "range_": sig.range_,
                    "symmetric": sig.symmetric,
                    "description": sig.description,
                }
                for sig in kb.ontology._predicates.values()
            ],
            "version": kb.ontology.version,
        },
        "aliases": {
            "table": [
                [alias, [[entity, count] for entity, count in slots.items()]]
                for alias, slots in kb.aliases._alias_to_entities.items()
            ],
            "version": kb.aliases.version,
        },
        "kb": {
            "types": [[e, t] for e, t in kb._types.items()],
            "descriptions": [[e, d] for e, d in kb._descriptions.items()],
            "facts": [triple_to_wire(t) for t in kb.store],
            "version": kb._version,
        },
        "window": {
            "edges": [timed_edge_to_wire(e) for e in window.window_edges()],
            "last_timestamp": window._last_timestamp,
            "total_added": window.total_added,
            "total_evicted": window.total_evicted,
        },
        "dynamic": {"facts_streamed": nous.dynamic.facts_streamed},
        "miner": {
            "previous_frequent": sorted(
                (pattern_to_wire(p) for p in miner._previous_frequent),
                key=lambda w: json.dumps(w, sort_keys=True),
            ),
            "updates_processed": miner.updates_processed,
            "embeddings_touched": miner.embeddings_touched,
        },
        "estimator": {
            "models": [
                _model_to_wire(predictor.models[p])
                for p in sorted(predictor.models)
            ],
            "trust": [
                [source, counts.alpha, counts.beta]
                for source, counts in trust._counts.items()
            ],
        },
        "linker_cache": [
            [entity, [[word, count] for word, count in bag.items()]]
            for entity, bag in nous.mapper.linker._context_cache.items()
        ],
        "mapper": {
            "mention_index": [
                [m, e] for m, e in nous.mapper.mention_index.items()
            ],
            "stats": {
                "mapped": nous.mapper.stats.mapped,
                "rejected": [
                    [reason, count]
                    for reason, count in nous.mapper.stats.rejected.items()
                ],
                "created_entities": nous.mapper.stats.created_entities,
            },
        },
        "nous": {
            "documents_ingested": nous.documents_ingested,
            "accepted_since_retrain": nous._accepted_since_retrain,
            "last_timestamp": nous._last_timestamp,
            "raw_buffer": [raw_triple_to_wire(r) for r in nous._raw_buffer],
        },
    }


def restore_nous(nous: Nous, state: Dict[str, Any]) -> None:
    """Restore a snapshot onto a freshly constructed engine, in place.

    Mutates the engine's existing component objects (KB, ontology,
    aliases, window, miner, ...) rather than replacing them, so every
    cross-reference inside the engine stays valid.  The window and miner
    are rebuilt by replaying the snapshotted window edges through the
    normal add-listener wiring; the monotonic counters are then forced
    to their snapshotted values so the composite stamp is exact.

    Raises:
        StorageError: if the engine has already streamed facts (restore
            only targets a fresh engine built from the same curated KB).
    """
    if nous.dynamic.window.total_added or nous.dynamic.facts_streamed:
        raise StorageError(
            "restore_nous needs a freshly constructed engine "
            f"(window already holds {nous.dynamic.window.total_added} adds)"
        )
    kb = nous.kb
    ontology = kb.ontology

    ontology._parent = {
        name: parent for name, parent in state["ontology"]["types"]
    }
    ontology._predicates = {
        sig["name"]: PredicateSignature(
            name=sig["name"],
            domain=sig["domain"],
            range_=sig["range_"],
            symmetric=sig["symmetric"],
            description=sig["description"],
        )
        for sig in state["ontology"]["predicates"]
    }

    aliases = kb.aliases
    aliases._alias_to_entities = {
        alias: {entity: count for entity, count in slots}
        for alias, slots in state["aliases"]["table"]
    }
    aliases._entity_to_aliases = {}
    for alias, slots in aliases._alias_to_entities.items():
        for entity in slots:
            aliases._entity_to_aliases.setdefault(entity, set()).add(alias)

    kb._types = {}
    kb._by_exact_type = {}
    for entity, type_name in state["kb"]["types"]:
        kb._set_type(entity, type_name)
    kb._descriptions = {e: d for e, d in state["kb"]["descriptions"]}
    kb.store = TripleStore()
    for wire_fact in state["kb"]["facts"]:
        kb.store.add(triple_from_wire(wire_fact))
    kb._graph_view = None

    predictor = nous.estimator.link_predictor
    restored = BprLinkPredictor(
        n_factors=predictor.n_factors,
        n_epochs=predictor.n_epochs,
        learning_rate=predictor.learning_rate,
        regularization=predictor.regularization,
        seed=predictor.seed,
        default_score=predictor.default_score,
    )
    restored.models = {
        m["predicate"]: _model_from_wire(m)
        for m in state["estimator"]["models"]
    }
    nous.estimator.link_predictor = restored
    nous.estimator.source_trust._counts = {
        source: _BetaCounts(alpha, beta)
        for source, alpha, beta in state["estimator"]["trust"]
    }

    nous.mapper.linker._context_cache = {
        entity: Counter({word: count for word, count in bag})
        for entity, bag in state["linker_cache"]
    }
    nous.mapper.mention_index = {
        m: e for m, e in state["mapper"]["mention_index"]
    }
    stats = state["mapper"]["stats"]
    nous.mapper.stats = MappingStats(
        mapped=stats["mapped"],
        rejected=Counter({r: c for r, c in stats["rejected"]}),
        created_entities=stats["created_entities"],
    )

    # Window + miner: replay the windowed edges through the real add
    # path so the miner's incremental state (supports, embeddings,
    # incident index) rebuilds via the listener wiring — entity types
    # resolve exactly as at original add time because the KB above is
    # already final and types are never reassigned.
    window = nous.dynamic.window
    for wire_edge in state["window"]["edges"]:
        edge = timed_edge_from_wire(wire_edge)
        window.add_edge(
            edge.src,
            edge.dst,
            edge.label,
            edge.timestamp,
            **dict(edge.props),
        )
    miner = nous.dynamic.miner
    miner._previous_frequent = {
        pattern_from_wire(p) for p in state["miner"]["previous_frequent"]
    }

    nous._raw_buffer = deque(
        (raw_triple_from_wire(r) for r in state["nous"]["raw_buffer"]),
        maxlen=nous._raw_buffer.maxlen,
    )
    nous._topic_state = None
    nous._topic_graph = None
    nous._kb_version_at_topic_fit = -1

    _force_counters(
        nous,
        {
            "kb_version": state["kb"]["version"],
            "aliases_version": state["aliases"]["version"],
            "ontology_version": state["ontology"]["version"],
            "total_added": state["window"]["total_added"],
            "total_evicted": state["window"]["total_evicted"],
            "window_last_timestamp": state["window"]["last_timestamp"],
            "facts_streamed": state["dynamic"]["facts_streamed"],
            "updates_processed": state["miner"]["updates_processed"],
            "embeddings_touched": state["miner"]["embeddings_touched"],
            "documents_ingested": state["nous"]["documents_ingested"],
            "accepted_since_retrain": state["nous"]["accepted_since_retrain"],
            "last_timestamp": state["nous"]["last_timestamp"],
        },
    )


def _force_counters(nous: Nous, counters: Dict[str, Any]) -> None:
    """Pin every monotonic counter feeding the composite stamp."""
    nous.kb._version = counters["kb_version"]
    nous.kb.aliases.version = counters["aliases_version"]
    nous.kb.ontology.version = counters["ontology_version"]
    window = nous.dynamic.window
    window.total_added = counters["total_added"]
    window.total_evicted = counters["total_evicted"]
    window._last_timestamp = counters["window_last_timestamp"]
    nous.dynamic.facts_streamed = counters["facts_streamed"]
    nous.dynamic.miner.updates_processed = counters["updates_processed"]
    nous.dynamic.miner.embeddings_touched = counters["embeddings_touched"]
    nous.documents_ingested = counters["documents_ingested"]
    nous._accepted_since_retrain = counters["accepted_since_retrain"]
    nous._last_timestamp = counters["last_timestamp"]


# ---------------------------------------------------------------------------
# WAL effect records
# ---------------------------------------------------------------------------


class IngestRecorder:
    """Captures the effects of one accepted ingest call as a WAL record.

    Used through :func:`record_ingest`; while active it observes the
    engine's accept path (which facts reach the dynamic KG, and with
    what call structure — batch vs sequential matters because the batch
    path skips window-doomed facts) and diffs the grow-only engine
    tables around the call.  :attr:`record` is available after the
    context exits cleanly.
    """

    def __init__(self, nous: Nous) -> None:
        self.nous = nous
        self.record: Optional[Dict[str, Any]] = None
        # ("batch", [(mapped, conf, ts), ...]) or ("fact", (mapped, conf, ts))
        self._events: List[Tuple[str, Any]] = []
        self._raws_extracted = 0
        kb = nous.kb
        self._pre_entities = len(kb._types)
        self._pre_types = len(kb.ontology._parent)
        self._pre_predicates = len(kb.ontology._predicates)
        self._pre_mentions = len(nous.mapper.mention_index)
        self._pre_cache = set(nous.mapper.linker._context_cache)
        self._pre_aliases = {
            alias: dict(slots)
            for alias, slots in kb.aliases._alias_to_entities.items()
        }

    # -- observation hooks (installed by record_ingest) -----------------
    def _on_accept_batch(self, facts) -> None:
        self._events.append(("batch", list(facts)))

    def _on_accept_fact(self, mapped, confidence, timestamp) -> None:
        self._events.append(("fact", (mapped, confidence, timestamp)))

    def _on_extract(self, n_triples: int) -> None:
        self._raws_extracted += n_triples

    def _on_retrain(self) -> None:
        self._events.append(("retrain", None))

    # -- record construction --------------------------------------------
    def finish(self) -> Dict[str, Any]:
        nous = self.nous
        kb = nous.kb
        window = nous.dynamic.window
        miner = nous.dynamic.miner

        new_entities = [
            [e, kb._types[e], kb._descriptions.get(e, "")]
            for e in list(kb._types)[self._pre_entities:]
        ]
        alias_sets: List[List[Any]] = []
        for alias, slots in kb.aliases._alias_to_entities.items():
            before = self._pre_aliases.get(alias, {})
            for entity, count in slots.items():
                if before.get(entity) != count:
                    alias_sets.append([alias, entity, count])
        new_types = [
            [name, kb.ontology._parent[name]]
            for name in list(kb.ontology._parent)[self._pre_types:]
        ]
        new_predicates = [
            {
                "name": sig.name,
                "domain": sig.domain,
                "range_": sig.range_,
                "symmetric": sig.symmetric,
                "description": sig.description,
            }
            for sig in list(kb.ontology._predicates.values())[
                self._pre_predicates:
            ]
        ]
        # The linker cache is a lazily recomputed memo whose *staleness*
        # is part of byte-exact state.  Calls without a retrain only ever
        # add entries, so a key diff suffices; a mid-call retrain wipes
        # the cache, after which surviving entries were recomputed from
        # an intermediate KB — the record then carries the full
        # end-of-call cache so replay can reinstate it absolutely.
        retrained = any(kind == "retrain" for kind, _ in self._events)
        cache = nous.mapper.linker._context_cache
        cache_adds = [
            [entity, [[w, c] for w, c in cache[entity].items()]]
            for entity in cache
            if retrained or entity not in self._pre_cache
        ]
        new_mentions = [
            [m, nous.mapper.mention_index[m]]
            for m in list(nous.mapper.mention_index)[self._pre_mentions:]
        ]
        n_raws = min(self._raws_extracted, len(nous._raw_buffer))
        raws = (
            [
                raw_triple_to_wire(r)
                for r in list(nous._raw_buffer)[-n_raws:]
            ]
            if n_raws
            else []
        )

        self.record = {
            "events": [
                {"kind": kind}
                if kind == "retrain"
                else {
                    "kind": kind,
                    "facts": [
                        _fact_to_wire(m, c, t)
                        for m, c, t in (
                            payload if kind == "batch" else [payload]
                        )
                    ],
                }
                for kind, payload in self._events
            ],
            "entities": new_entities,
            "aliases": alias_sets,
            "types": new_types,
            "predicates": new_predicates,
            "cache": cache_adds,
            "mention_index": new_mentions,
            "stats": {
                "mapped": nous.mapper.stats.mapped,
                "rejected": [
                    [r, c] for r, c in nous.mapper.stats.rejected.items()
                ],
                "created_entities": nous.mapper.stats.created_entities,
            },
            "raws": raws,
            "trust": [
                [source, counts.alpha, counts.beta]
                for source, counts in (
                    nous.estimator.source_trust._counts.items()
                )
            ],
            "retrained": retrained,
            "counters": {
                "kb_version": kb._version,
                "aliases_version": kb.aliases.version,
                "ontology_version": kb.ontology.version,
                "total_added": window.total_added,
                "total_evicted": window.total_evicted,
                "window_last_timestamp": window._last_timestamp,
                "facts_streamed": nous.dynamic.facts_streamed,
                "updates_processed": miner.updates_processed,
                "embeddings_touched": miner.embeddings_touched,
                "documents_ingested": nous.documents_ingested,
                "accepted_since_retrain": nous._accepted_since_retrain,
                "last_timestamp": nous._last_timestamp,
            },
        }
        return self.record


@contextlib.contextmanager
def record_ingest(nous: Nous) -> Iterator[IngestRecorder]:
    """Capture one ingest call's effects as a replayable WAL record.

    Wrap exactly one engine-mutating ingest call (``ingest_batch`` plus
    its deferred ``retrain_if_due``, or ``ingest_facts``).  On clean
    exit the recorder's :attr:`IngestRecorder.record` holds the record;
    if the wrapped call raises, no record is produced.
    """
    recorder = IngestRecorder(nous)
    dynamic = nous.dynamic
    nlp = nous.nlp
    estimator = nous.estimator
    orig_batch = dynamic.accept_batch
    orig_fact = dynamic.accept_fact
    orig_process = nlp.process
    orig_extract_batch = nous._extract_batch
    orig_retrain = estimator.retrain

    def accept_batch(facts):
        recorder._on_accept_batch(facts)
        return orig_batch(facts)

    def accept_fact(mapped, confidence, timestamp):
        recorder._on_accept_fact(mapped, confidence, timestamp)
        return orig_fact(mapped, confidence, timestamp)

    def process(*args, **kwargs):
        # The streaming (one-document) path: count as it extracts.
        document = orig_process(*args, **kwargs)
        recorder._on_extract(len(document.triples))
        return document

    def extract_batch(articles):
        # The batch path goes through Nous._extract_batch — serially it
        # calls the patched nlp.process per document (counted above), so
        # only the pooled branch must be counted here.  Temporarily
        # restoring the original keeps the count single-sourced.
        nlp.process = orig_process  # type: ignore[method-assign]
        try:
            extracted = orig_extract_batch(articles)
        finally:
            nlp.process = process  # type: ignore[method-assign]
        for triples, _context in extracted:
            recorder._on_extract(len(triples))
        return extracted

    def retrain(triples):
        # Recorded as an ordered event: a mid-call retrain refits from
        # the KG *at that point*, so replay must re-run it at the same
        # point in the accept stream, not at the end of the record.
        recorder._on_retrain()
        return orig_retrain(triples)

    dynamic.accept_batch = accept_batch  # type: ignore[method-assign]
    dynamic.accept_fact = accept_fact  # type: ignore[method-assign]
    nlp.process = process  # type: ignore[method-assign]
    nous._extract_batch = extract_batch  # type: ignore[method-assign]
    estimator.retrain = retrain  # type: ignore[method-assign]
    try:
        yield recorder
        recorder.finish()
    finally:
        del dynamic.accept_batch
        del dynamic.accept_fact
        del nlp.process
        del nous._extract_batch
        del estimator.retrain


def _fact_to_wire(
    mapped: MappedTriple, confidence: float, timestamp: float
) -> Dict[str, Any]:
    return {
        "s": mapped.subject,
        "p": mapped.predicate,
        "o": mapped.object,
        "confidence": confidence,
        "source": mapped.source,
        "date": date_to_wire(mapped.date),
        "timestamp": timestamp,
    }


def _fact_from_wire(
    data: Dict[str, Any]
) -> Tuple[MappedTriple, float, float]:
    date = date_from_wire(data["date"])
    raw = RawTriple(
        subject=str(data["s"]),
        relation=str(data["p"]),
        object=str(data["o"]),
        date=date,
        source=str(data["source"]),
        confidence=float(data["confidence"]),
    )
    mapped = MappedTriple(
        subject=str(data["s"]),
        predicate=str(data["p"]),
        object=str(data["o"]),
        object_is_literal=False,
        extraction_confidence=float(data["confidence"]),
        link_confidence=1.0,
        mapping_confidence=1.0,
        date=date,
        doc_id="",
        source=str(data["source"]),
        raw=raw,
    )
    return mapped, float(data["confidence"]), float(data["timestamp"])


def replay_record(nous: Nous, record: Dict[str, Any]) -> None:
    """Re-apply one WAL record's effects, landing on its exact stamp.

    Replay order mirrors the original call's effect order: ontology
    growth first (types, predicates), then minted entities and absolute
    alias counts — so the accept path's endpoint auto-registration
    no-ops instead of corrupting alias priors — then mention-index
    growth, then the ordered event stream: accepted facts through the
    *same* accept path (batch vs sequential structure preserved, so
    window dooming replays identically) with retrains re-run at their
    original positions (a mid-call retrain fits the KG as it stood at
    that point).  Trust/stats land wholesale, the linker cache is
    reinstated last (absolute on retrained records), and the counters
    are forced.
    """
    kb = nous.kb
    for name, parent in record["types"]:
        kb.ontology.add_type(name, parent)
    for sig in record["predicates"]:
        kb.ontology.add_predicate(
            sig["name"],
            domain=sig["domain"],
            range_=sig["range_"],
            symmetric=sig["symmetric"],
            description=sig["description"],
        )
    for entity, type_name, description in record["entities"]:
        kb._set_type(entity, type_name)
        if description:
            kb._descriptions[entity] = description
    for alias, entity, count in record["aliases"]:
        kb.aliases._alias_to_entities.setdefault(alias, {})[entity] = count
        kb.aliases._entity_to_aliases.setdefault(entity, set()).add(alias)
    for mention, entity in record["mention_index"]:
        nous.mapper.mention_index[mention] = entity

    for event in record["events"]:
        if event["kind"] == "retrain":
            nous.estimator.retrain(kb.store)
            nous.mapper.linker.invalidate_cache()
            continue
        facts = [_fact_from_wire(f) for f in event["facts"]]
        if event["kind"] == "batch":
            nous.dynamic.accept_batch(facts)
        else:
            for mapped, confidence, timestamp in facts:
                nous.dynamic.accept_fact(mapped, confidence, timestamp)

    # Cache entries land *after* any retrain wipe: on retrained records
    # record["cache"] is the full end-of-call cache (absolute), otherwise
    # it is the set of entries this call added.  Nothing during replay
    # reads the cache, so applying it last is safe and exact.
    for entity, bag in record["cache"]:
        nous.mapper.linker._context_cache[entity] = Counter(
            {word: count for word, count in bag}
        )

    stats = record["stats"]
    nous.mapper.stats = MappingStats(
        mapped=stats["mapped"],
        rejected=Counter({r: c for r, c in stats["rejected"]}),
        created_entities=stats["created_entities"],
    )
    nous.estimator.source_trust._counts = {
        source: _BetaCounts(alpha, beta)
        for source, alpha, beta in record["trust"]
    }
    nous._raw_buffer.extend(
        raw_triple_from_wire(r) for r in record["raws"]
    )
    _force_counters(nous, record["counters"])
