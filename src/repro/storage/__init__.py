"""Durability layer: shard snapshots + write-ahead log (docs/PERSISTENCE.md).

A :class:`~repro.api.service.NousService` constructed with a
``data_dir`` owns one :class:`StorageBackend` (JSON-lines by default)
and uses it in two coordinated ways:

- **snapshots** — a periodic full serialisation of the engine state
  (:func:`snapshot_nous` / :func:`restore_nous`), written atomically and
  checksummed, so a cold start resumes from the last snapshot instead of
  re-running NLP extraction over the whole history;
- **WAL** — one structured effect record per accepted ingest micro-batch
  (:func:`record_ingest` / :func:`replay_record`), fsynced at the
  micro-batch boundary, replayed on recovery to roll the snapshot
  forward to the exact pre-crash composite version stamp.

The split keeps policy out of the backend: backends move bytes, the
snapshot module understands engine state, and the service decides *when*
to snapshot/append.
"""

from repro.storage.backend import SNAPSHOT_FORMAT, StorageBackend
from repro.storage.jsonl import JsonLinesBackend
from repro.storage.snapshot import (
    IngestRecorder,
    record_ingest,
    replay_record,
    restore_nous,
    snapshot_nous,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "StorageBackend",
    "JsonLinesBackend",
    "IngestRecorder",
    "record_ingest",
    "replay_record",
    "restore_nous",
    "snapshot_nous",
]
