"""NL-like query parsing: surface templates -> query objects.

The paper's Figure 5 shows "natural language like queries that are
transparently translated" to graph algorithms.  The parser is template
based (this is a query language, not open-domain NLU): each query class
has a small family of accepted phrasings.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import QueryParseError
from repro.linking.predicate_mapping import normalize_relation
from repro.query.model import (
    CentralityQuery,
    ComponentsQuery,
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PageRankQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)

_TRENDING_RE = re.compile(
    r"^(show\s+)?(what('s| is)\s+)?trending(\s+patterns?)?\??$"
    r"|^show\s+trending.*$|^what\s+is\s+trending\??$",
    re.IGNORECASE,
)

# Analytics templates run before the catch-all entity templates, or
# "what is pagerank" would parse as an entity summary of "pagerank".
_PAGERANK_RE = re.compile(
    r"^(show\s+|compute\s+|what\s+is\s+)?page\s?rank"
    r"(\s+top\s+(?P<n>\d+))?\??$",
    re.IGNORECASE,
)

_COMPONENTS_RE = re.compile(
    r"^(show\s+|find\s+|list\s+)?connected\s+components\??$", re.IGNORECASE
)

_CENTRALITY_RES = [
    re.compile(
        r"^(show\s+|compute\s+)?degree\s+centrality(\s+top\s+(?P<n>\d+))?\??$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^(show\s+)?most\s+connected\s+entities(\s+top\s+(?P<n>\d+))?\??$",
        re.IGNORECASE,
    ),
]

_ENTITY_RES = [
    re.compile(r"^tell\s+me\s+about\s+(?P<e>.+?)\??$", re.IGNORECASE),
    re.compile(r"^who\s+is\s+(?P<e>.+?)\??$", re.IGNORECASE),
    re.compile(r"^what\s+is\s+(?P<e>.+?)\??$", re.IGNORECASE),
    re.compile(r"^summar(y|ize)\s+(of\s+)?(?P<e>.+?)\??$", re.IGNORECASE),
]

_RELATED_RES = [
    re.compile(
        r"^how\s+(is|are)\s+(?P<s>.+?)\s+(related|connected)\s+to\s+(?P<t>.+?)"
        r"(\s+via\s+(?P<p>\w+))?\??$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^(find\s+)?paths?\s+from\s+(?P<s>.+?)\s+to\s+(?P<t>.+?)"
        r"(\s+via\s+(?P<p>\w+))?\??$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^connect\s+(?P<s>.+?)\s+(and|with|to)\s+(?P<t>.+?)\??$", re.IGNORECASE
    ),
]

_WHY_RES = [
    # "why does Windermere use drones"
    re.compile(
        r"^why\s+(does|do|did|would|may|might)\s+(?P<s>.+?)\s+"
        r"(?P<v>\w+)\s+(?P<t>.+?)\??$",
        re.IGNORECASE,
    ),
    # "why is DJI related to Accel Partners"
    re.compile(
        r"^why\s+(is|are|was|were)\s+(?P<s>.+?)\s+"
        r"(related|connected|linked)\s+to\s+(?P<t>.+?)\??$",
        re.IGNORECASE,
    ),
]

_PATTERN_RE = re.compile(r"^(match|find\s+pattern)\s+(?P<p>\(.+)$", re.IGNORECASE)

_ENTITY_TREND_RES = [
    re.compile(r"^what('s| is)\s+new\s+(about|with)\s+(?P<e>.+?)\??$", re.IGNORECASE),
    re.compile(r"^recent\s+news\s+(about|on)\s+(?P<e>.+?)\??$", re.IGNORECASE),
]

# Verb -> ontology predicate hints for explanatory queries.
_VERB_PREDICATES = {
    "use": "usesTechnology",
    "uses": "usesTechnology",
    "employ": "usesTechnology",
    "acquire": "acquired",
    "acquired": "acquired",
    "buy": "acquired",
    "fund": "fundedBy",
    "invest": "investsIn",
    "partner": "partnerOf",
    "regulate": "regulates",
    "manufacture": "manufactures",
    "make": "manufactures",
}


def _normalize_mention(mention: str) -> str:
    """Canonical form for captured entity mentions: lowercase, single
    spaces.  Alias lookup is already case/whitespace-insensitive
    (:func:`repro.kb.aliases.normalize_alias`), so linking is
    unaffected."""
    return " ".join(mention.split()).lower()


def parse_query(text: str) -> Query:
    """Parse one query string into a :class:`Query` object.

    The parse is **normalizing**: surface case and whitespace are
    canonicalised (queries lowercased, runs of whitespace collapsed, and
    captured mentions likewise), so textually-equivalent strings —
    ``"Tell me about DJI"`` and ``"tell  me about dji"`` — produce
    *equal* :class:`Query` objects and therefore share one query-result
    cache entry.  Pattern text and explicit ``via <predicate>`` names
    keep their case (predicates are camelCase ontology ids).

    Raises:
        QueryParseError: when no template matches.
    """
    stripped = " ".join(text.split())
    if not stripped:
        raise QueryParseError(text, "empty query")
    lowered = stripped.lower()

    if _TRENDING_RE.match(lowered):
        return TrendingQuery(text=lowered)

    match = _PAGERANK_RE.match(stripped)
    if match:
        top = int(match.group("n")) if match.group("n") else 10
        return PageRankQuery(text=lowered, top=top)

    if _COMPONENTS_RE.match(lowered):
        return ComponentsQuery(text=lowered)

    for regex in _CENTRALITY_RES:
        match = regex.match(stripped)
        if match:
            top = int(match.group("n")) if match.group("n") else 10
            return CentralityQuery(text=lowered, metric="degree", top=top)

    for regex in _ENTITY_TREND_RES:
        match = regex.match(stripped)
        if match:
            return EntityTrendQuery(
                text=lowered, entity=_normalize_mention(match.group("e"))
            )

    match = _PATTERN_RE.match(stripped)
    if match:
        pattern_text = match.group("p").strip()
        return PatternQuery(
            text=f"match {pattern_text}", pattern_text=pattern_text
        )

    for regex in _WHY_RES:
        match = regex.match(stripped)
        if match:
            groups = match.groupdict()
            verb = groups.get("v")
            relationship = _VERB_PREDICATES.get(
                normalize_relation(verb) if verb else "", None
            )
            return ExplanatoryQuery(
                text=lowered,
                source=_normalize_mention(groups["s"]),
                target=_normalize_mention(groups["t"]),
                relationship=relationship,
            )

    for regex in _RELATED_RES:
        match = regex.match(stripped)
        if match:
            groups = match.groupdict()
            return RelationshipQuery(
                text=lowered,
                source=_normalize_mention(groups["s"]),
                target=_normalize_mention(groups["t"]),
                # Case preserved: predicates are camelCase ontology ids.
                relationship=groups.get("p"),
            )

    for regex in _ENTITY_RES:
        match = regex.match(stripped)
        if match:
            return EntityQuery(
                text=lowered, entity=_normalize_mention(match.group("e"))
            )

    raise QueryParseError(text, "no query template matched")
