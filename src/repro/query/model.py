"""Query dataclasses: the five classes of Figure 5, plus analytics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Query:
    """Base class for parsed queries."""

    text: str


@dataclass(frozen=True)
class TrendingQuery(Query):
    """"Show trending patterns" — streaming-miner report."""


@dataclass(frozen=True)
class EntityQuery(Query):
    """"Tell me about DJI" — entity summary."""

    entity: str = ""


@dataclass(frozen=True)
class RelationshipQuery(Query):
    """"How is X related to Y [via P]" — top-K coherent paths."""

    source: str = ""
    target: str = ""
    relationship: Optional[str] = None


@dataclass(frozen=True)
class ExplanatoryQuery(Query):
    """"Why does X use drones" — constrained explanatory path search."""

    source: str = ""
    target: str = ""
    relationship: Optional[str] = None


@dataclass(frozen=True)
class PatternQuery(Query):
    """"match (?a:Company)-[acquired]->(?b:Company)" — subgraph match."""

    pattern_text: str = ""


@dataclass(frozen=True)
class EntityTrendQuery(Query):
    """"what's new about DJI" — recent extracted facts for one entity
    (the Trending tab of Figure 6's interface, scoped to an entity)."""

    entity: str = ""


@dataclass(frozen=True)
class PageRankQuery(Query):
    """"show pagerank [top N]" — whole-graph PageRank ranking."""

    top: int = 10


@dataclass(frozen=True)
class ComponentsQuery(Query):
    """"connected components" — component census of the merged graph."""


@dataclass(frozen=True)
class CentralityQuery(Query):
    """"degree centrality [top N]" — degree-based centrality ranking."""

    metric: str = "degree"
    top: int = 10
