"""Command-line interface (§4 demo feature 4: "Execute queries ... using
both web and command line interface" — this is the command line half).

Usage::

    nous demo                 # build the drone KG from a synthetic stream
    nous demo --articles 300  # bigger stream
    nous query "tell me about DJI"        (after demo, in one session: REPL)
    nous repl                 # interactive query loop
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.pipeline import Nous, NousConfig
from repro.data.corpus import CorpusConfig, generate_corpus
from repro.data.descriptions import generate_descriptions
from repro.errors import ReproError
from repro.kb.drone_kb import build_drone_kb
from repro.query.engine import QueryEngine


def build_demo_system(
    n_articles: int = 120, seed: int = 7, window_size: int = 400
) -> Nous:
    """Construct a Nous instance and ingest a synthetic news stream."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=n_articles, seed=seed)
    )
    generate_descriptions(kb, seed=seed)
    nous = Nous(kb=kb, config=NousConfig(window_size=window_size, seed=seed))
    nous.ingest_corpus(articles)
    return nous


def _run_queries(engine: QueryEngine, queries) -> int:
    status = 0
    for text in queries:
        try:
            result = engine.execute_text(text)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
            continue
        print(f"# {text}  [{result.kind}, {result.elapsed_ms:.1f} ms]")
        print(result.rendered)
        print()
    return status


def _repl(engine: QueryEngine) -> int:
    print("NOUS query REPL. Empty line or Ctrl-D to exit.")
    print('Try: "tell me about DJI", "show trending patterns",')
    print('     "why does Windermere use drones",')
    print('     "match (?a:Company)-[acquired]->(?b:Company)"')
    while True:
        try:
            line = input("nous> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            return 0
        _run_queries(engine, [line])


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="nous",
        description="NOUS: construction and querying of dynamic knowledge graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build the drone demo KG and show stats")
    demo.add_argument("--articles", type=int, default=120)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--query", action="append", default=[],
        help="query to run after building (repeatable)",
    )

    query = sub.add_parser("query", help="build demo KG then run queries")
    query.add_argument("text", nargs="+", help="query strings")
    query.add_argument("--articles", type=int, default=120)
    query.add_argument("--seed", type=int, default=7)

    repl = sub.add_parser("repl", help="interactive query loop on the demo KG")
    repl.add_argument("--articles", type=int, default=120)
    repl.add_argument("--seed", type=int, default=7)

    args = parser.parse_args(argv)

    print(
        f"building demo knowledge graph ({args.articles} articles)...",
        file=sys.stderr,
    )
    nous = build_demo_system(n_articles=args.articles, seed=args.seed)
    engine = QueryEngine(nous)

    if args.command == "demo":
        print(nous.statistics().render())
        if args.query:
            print()
            return _run_queries(engine, args.query)
        return 0
    if args.command == "query":
        return _run_queries(engine, args.text)
    return _repl(engine)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
