"""Command-line interface (§4 demo feature 4: "Execute queries ... using
both web and command line interface" — this is the command line half).

The CLI is a thin adapter over :class:`repro.api.NousService` — the same
versioned envelopes a web frontend would consume.  ``--json`` switches
the rendering from plain text to the wire-format envelope, one JSON
object per query, suitable for piping into other tools.

Usage::

    nous demo                 # build the drone KG from a synthetic stream
    nous demo --articles 300  # bigger stream
    nous query "tell me about DJI"        (after demo, in one session: REPL)
    nous query --json "tell me about DJI" # wire-format envelope
    nous repl                 # interactive query loop
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.api.service import NousService, ServiceConfig
from repro.core.pipeline import NousConfig
from repro.data.corpus import CorpusConfig, generate_corpus
from repro.data.descriptions import generate_descriptions
from repro.kb.drone_kb import build_drone_kb


def build_demo_service(
    n_articles: int = 120, seed: int = 7, window_size: int = 400
) -> NousService:
    """Construct a service and ingest a synthetic news stream through
    its micro-batching queue."""
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=n_articles, seed=seed)
    )
    generate_descriptions(kb, seed=seed)
    service = NousService(
        kb=kb,
        config=NousConfig(window_size=window_size, seed=seed),
        # Synchronous drains: the CLI builds, then queries; no
        # background thread needed for a one-shot process.
        service_config=ServiceConfig(auto_start=False),
    )
    service.submit_many(articles)
    service.flush()
    return service


def _run_queries(
    service: NousService, queries: Sequence[str], as_json: bool = False
) -> int:
    status = 0
    for text in queries:
        response = service.query(text)
        if as_json:
            print(json.dumps(response.to_dict(), sort_keys=True))
            if not response.ok:
                status = 1
            continue
        if not response.ok:
            assert response.error is not None
            print(
                f"error [{response.error.code}]: {response.error.message}",
                file=sys.stderr,
            )
            status = 1
            continue
        print(f"# {text}  [{response.kind}, {response.elapsed_ms:.1f} ms]")
        print(response.rendered)
        print()
    return status


def _repl(service: NousService) -> int:
    print("NOUS query REPL. Empty line or Ctrl-D to exit.")
    print('Try: "tell me about DJI", "show trending patterns",')
    print('     "why does Windermere use drones",')
    print('     "match (?a:Company)-[acquired]->(?b:Company)"')
    while True:
        try:
            line = input("nous> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            return 0
        _run_queries(service, [line])


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="nous",
        description="NOUS: construction and querying of dynamic knowledge graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build the drone demo KG and show stats")
    demo.add_argument("--articles", type=int, default=120)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--query", action="append", default=[],
        help="query to run after building (repeatable)",
    )
    demo.add_argument(
        "--json", action="store_true",
        help="emit wire-format JSON envelopes instead of plain text",
    )

    query = sub.add_parser("query", help="build demo KG then run queries")
    query.add_argument("text", nargs="+", help="query strings")
    query.add_argument("--articles", type=int, default=120)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument(
        "--json", action="store_true",
        help="emit wire-format JSON envelopes instead of plain text",
    )

    repl = sub.add_parser("repl", help="interactive query loop on the demo KG")
    repl.add_argument("--articles", type=int, default=120)
    repl.add_argument("--seed", type=int, default=7)

    args = parser.parse_args(argv)

    print(
        f"building demo knowledge graph ({args.articles} articles)...",
        file=sys.stderr,
    )
    service = build_demo_service(n_articles=args.articles, seed=args.seed)

    if args.command == "demo":
        stats = service.statistics()
        if args.json:
            print(json.dumps(stats.to_dict(), sort_keys=True))
        else:
            print(stats.rendered)
        if args.query:
            if not args.json:
                print()
            return _run_queries(service, args.query, as_json=args.json)
        return 0 if stats.ok else 1
    if args.command == "query":
        return _run_queries(service, args.text, as_json=args.json)
    return _repl(service)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
