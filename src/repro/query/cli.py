"""Command-line interface (§4 demo feature 4: "Execute queries ... using
both web and command line interface" — command line *and* the door to
the web half: ``nous serve`` starts the HTTP gateway).

The CLI is a thin adapter over :class:`repro.api.NousService` — the same
versioned envelopes a web frontend would consume.  ``--json`` switches
the rendering from plain text to the wire-format envelope, one JSON
object per query, suitable for piping into other tools.  ``--url``
points ``query`` / ``ingest`` at a remote gateway instead of building a
local demo KG.

Usage::

    nous demo                 # build the drone KG from a synthetic stream
    nous demo --articles 300  # bigger stream
    nous query "tell me about DJI"        (after demo, in one session: REPL)
    nous query --json "tell me about DJI" # wire-format envelope
    nous repl                 # interactive query loop
    nous serve --port 8420    # HTTP gateway over the demo KG
    nous query --url http://127.0.0.1:8420 "tell me about DJI"
    nous ingest --url http://127.0.0.1:8420 "DJI acquired SkyPixel."
"""

from __future__ import annotations

import argparse
import contextlib
import copy
import json
import os
import signal
import sys
import time
from dataclasses import replace
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.api.base import ServiceLike
from repro.api.cluster import ShardedNousService
from repro.api.envelopes import ApiResponse, IngestRequest
from repro.api.http import ClientSession, GatewayConfig, NousGateway
from repro.api.service import NousService, ServiceConfig
from repro.api.tenancy import (
    DEFAULT_SCATTER_BUDGET,
    TenantRegistry,
    TenantSpec,
)
from repro.core.pipeline import NousConfig
from repro.errors import ConfigError
from repro.data.corpus import CorpusConfig, generate_corpus
from repro.data.descriptions import generate_descriptions
from repro.kb.drone_kb import build_drone_kb
from repro.kb.knowledge_base import KnowledgeBase


def _demo_world(n_articles: int, seed: int) -> Tuple[KnowledgeBase, list]:
    """The demo's curated world: drone KB extended in place by the
    corpus generator's synthetic entities, plus seeded descriptions.

    Deterministic for fixed arguments, so a sharded demo calls it once
    per shard to obtain identical-but-independent curated bases.
    """
    kb = build_drone_kb()
    articles = generate_corpus(
        kb, CorpusConfig(n_articles=n_articles, seed=seed)
    )
    generate_descriptions(kb, seed=seed)
    return kb, articles


def build_demo_service(
    n_articles: int = 120,
    seed: int = 7,
    window_size: int = 400,
    auto_start: bool = False,
    shards: int = 1,
    shard_mode: str = "local",
    data_dir: Optional[str] = None,
    extract_workers: int = 1,
) -> ServiceLike:
    """Construct a service and ingest a synthetic news stream through
    its micro-batching queue.

    ``auto_start=False`` (the default) drains synchronously — right for
    one-shot build-then-query commands; ``nous serve`` passes ``True``
    so live HTTP ingests keep micro-batching in the background.
    ``shards > 1`` builds a :class:`ShardedNousService` instead of a
    monolith — same envelopes, hash-partitioned ingestion and
    scatter-gather querying (see docs/SHARDING.md).  With
    ``shard_mode="process"`` each shard is a supervised ``nous serve``
    worker subprocess (real multi-core parallelism); the workers
    rebuild the deterministic demo world from its spec instead of
    receiving a copy.

    With ``data_dir`` the service is durable (snapshot + WAL under the
    directory; see docs/PERSISTENCE.md) and *cold starts from disk*:
    when recovery restored any ingested state, the demo corpus is not
    re-ingested on top of it.
    """
    kb, articles = _demo_world(n_articles, seed)
    config = NousConfig(
        window_size=window_size, seed=seed, extract_workers=extract_workers
    )
    service_config = ServiceConfig(auto_start=auto_start)
    service: ServiceLike
    if shards > 1 and shard_mode == "process":
        # `kb` is exactly what the spec resolves to and stays pristine
        # (articles enter through the router below), so it serves as
        # the router reference instead of resolving the world a second
        # time in this process.
        service = ShardedNousService(
            num_shards=shards,
            config=config,
            service_config=service_config,
            shard_mode="process",
            kb_spec=f"world:{n_articles}:{seed}",
            router_kb=kb,
            data_dir=data_dir,
        )
    elif shards > 1:
        # One deep copy per shard (plus the router's reference) instead
        # of regenerating the deterministic world N+1 times; `kb` is
        # pristine until submit_many below, so every copy is identical.
        service = ShardedNousService(
            kb_factory=lambda: copy.deepcopy(kb),
            num_shards=shards,
            config=config,
            service_config=service_config,
            data_dir=data_dir,
        )
    else:
        service = NousService(
            kb=kb,
            config=config,
            service_config=service_config,
            data_dir=data_dir,
        )
    if service.documents_ingested == 0:
        # Fresh state only: a durable cold start already recovered the
        # corpus (and everything after it) from snapshot + WAL.
        service.submit_many(articles)
        service.flush()
    return service


def build_worker_service(
    kb_spec: str,
    config_json: Optional[str] = None,
    service_json: Optional[str] = None,
    data_dir: Optional[str] = None,
    extract_workers: Optional[int] = None,
) -> NousService:
    """Construct a bare shard-worker service: the named curated base,
    no pre-ingested corpus, background drainer on (a live server must
    drain without explicit flushes — parents flush over
    ``POST /v1/shard/flush``).  With ``data_dir`` the worker is durable
    and recovers snapshot + WAL before the gateway binds, so a
    respawned worker answers from its exact pre-crash state."""
    from repro.api.cluster.process import resolve_kb_spec

    config = (
        NousConfig(**json.loads(config_json))
        if config_json
        else NousConfig()
    )
    if extract_workers is not None:
        # The CLI flag wins over a --config-json value (a supervisor
        # that wants per-worker pools just bakes it into the JSON).
        config = replace(config, extract_workers=extract_workers)
    overrides = json.loads(service_json) if service_json else {}
    overrides["auto_start"] = True
    service_config = ServiceConfig(**overrides)
    return NousService(
        kb=resolve_kb_spec(kb_spec),
        config=config,
        service_config=service_config,
        data_dir=data_dir,
    )


class _QueryTarget(Protocol):
    """What ``_run_queries`` needs: in-process ``NousService`` and the
    remote ``ClientSession`` both provide it."""

    def query(self, request: str) -> ApiResponse: ...


def _run_queries(
    service: _QueryTarget, queries: Sequence[str], as_json: bool = False
) -> int:
    status = 0
    for text in queries:
        response = service.query(text)
        if as_json:
            print(json.dumps(response.to_dict(), sort_keys=True))
            if not response.ok:
                status = 1
            continue
        if not response.ok:
            assert response.error is not None
            print(
                f"error [{response.error.code}]: {response.error.message}",
                file=sys.stderr,
            )
            status = 1
            continue
        print(f"# {text}  [{response.kind}, {response.elapsed_ms:.1f} ms]")
        print(response.rendered)
        print()
    return status


def _repl(service: NousService) -> int:
    print("NOUS query REPL. Empty line or Ctrl-D to exit.")
    print('Try: "tell me about DJI", "show trending patterns",')
    print('     "why does Windermere use drones",')
    print('     "match (?a:Company)-[acquired]->(?b:Company)",')
    print('     "pagerank top 10", "connected components",')
    print('     "degree centrality"')
    while True:
        try:
            line = input("nous> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            return 0
        _run_queries(service, [line])


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="nous",
        description="NOUS: construction and querying of dynamic knowledge graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build the drone demo KG and show stats")
    demo.add_argument("--articles", type=int, default=120)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--query", action="append", default=[],
        help="query to run after building (repeatable)",
    )
    demo.add_argument(
        "--json", action="store_true",
        help="emit wire-format JSON envelopes instead of plain text",
    )

    query = sub.add_parser(
        "query", help="run queries (local demo KG, or --url for a gateway)"
    )
    query.add_argument("text", nargs="+", help="query strings")
    query.add_argument("--articles", type=int, default=120)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument(
        "--json", action="store_true",
        help="emit wire-format JSON envelopes instead of plain text",
    )
    query.add_argument(
        "--url", default=None,
        help="query a running gateway (http://host:port) instead of "
        "building a local demo KG",
    )
    query.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="with --url: address this tenant's namespace "
        "(/v1/t/<NAME>/...; see docs/TENANCY.md)",
    )

    repl = sub.add_parser("repl", help="interactive query loop on the demo KG")
    repl.add_argument("--articles", type=int, default=120)
    repl.add_argument("--seed", type=int, default=7)

    serve = sub.add_parser(
        "serve", help="serve the demo KG over HTTP (see docs/API.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8420)
    serve.add_argument("--articles", type=int, default=120)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--shards", type=int, default=1,
        help="serve a sharded cluster of N services instead of a "
        "monolith (hash-partitioned ingestion, scatter-gather queries; "
        "see docs/SHARDING.md)",
    )
    serve.add_argument(
        "--shard-mode", choices=("local", "process"), default="local",
        help="with --shards N: run shards in-process ('local') or as "
        "one supervised `nous serve` worker subprocess each "
        "('process'; see docs/SHARDING.md)",
    )
    serve.add_argument(
        "--kb", default="demo", metavar="SPEC",
        help="what to serve: 'demo' (default: demo world + synthetic "
        "corpus), or a bare curated base with no corpus — 'empty', "
        "'drone', 'world:<articles>:<seed>' (shard-worker mode)",
    )
    serve.add_argument(
        "--config-json", default=None, metavar="JSON",
        help="NousConfig overrides for --kb worker mode "
        '(e.g. \'{"window_size": 200, "seed": 7}\')',
    )
    serve.add_argument(
        "--service-json", default=None, metavar="JSON",
        help="ServiceConfig overrides for --kb worker mode "
        '(e.g. \'{"max_batch": 1}\'; auto_start is forced on)',
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable mode: snapshot + write-ahead log under DIR; a "
        "restart recovers the exact pre-shutdown state (with --shards "
        "N each shard persists under DIR/shard-<i>; see "
        "docs/PERSISTENCE.md)",
    )
    serve.add_argument(
        "--extract-workers", type=int, default=None, metavar="N",
        help="NLP extraction process-pool size per service (default 1: "
        "serial in-process extraction; output is byte-identical either "
        "way — see docs/PERFORMANCE.md). With --shards N --shard-mode "
        "process every worker gets its own pool (shards x extractors "
        "processes)",
    )
    serve.add_argument(
        "--shared-cache-dir", default=None, metavar="DIR",
        help="directory for the cross-process query-result cache keyed "
        "on the composite KG stamp; gateway replicas pointed at the "
        "same DIR share hits (see docs/PERFORMANCE.md)",
    )
    serve.add_argument(
        "--tenants", default=None, metavar="FILE",
        help="multi-tenant mode: JSON file of tenant specs "
        '(a list, or {"tenants": [...], "scatter_budget": N}); each '
        "tenant serves its own isolated KG under /v1/t/<name>/... while "
        "the demo service answers the default tenant (docs/TENANCY.md)",
    )
    serve.add_argument(
        "--announce", action="store_true",
        help="print one JSON line to stdout once the gateway is bound "
        "(machine-readable startup handshake for supervisors)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="do not log requests to stderr"
    )

    ingest = sub.add_parser(
        "ingest", help="send documents to a running gateway"
    )
    ingest.add_argument(
        "text", nargs="+",
        help="document texts (use - to read one document from stdin)",
    )
    ingest.add_argument("--url", required=True, help="gateway base URL")
    ingest.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="address this tenant's namespace (/v1/t/<NAME>/...; see "
        "docs/TENANCY.md)",
    )
    ingest.add_argument("--doc-id", default="", help="document id")
    ingest.add_argument("--date", default=None, help='e.g. "2015-06-10"')
    ingest.add_argument("--source", default="cli", help="provenance tag")
    ingest.add_argument(
        "--no-wait", action="store_true",
        help="return the 202 ticket instead of waiting for the drain",
    )
    ingest.add_argument(
        "--json", action="store_true",
        help="emit wire-format JSON envelopes instead of plain text",
    )

    args = parser.parse_args(argv)

    if args.command == "ingest":
        return _remote_ingest(args)
    if args.command == "query" and args.url is not None:
        with ClientSession(args.url, tenant=args.tenant) as session:
            return _run_queries(session, args.text, as_json=args.json)
    if args.command == "query" and args.tenant is not None:
        parser.error("--tenant requires --url (tenants live on a gateway)")

    if args.command == "serve" and args.kb != "demo":
        # Shard-worker mode: a bare service over a named curated base,
        # no demo corpus (supervisors ingest through the gateway).
        # Worker mode serves exactly one monolith, so cluster/demo
        # flags must not be silently swallowed.
        if args.shards != 1 or args.shard_mode != "local":
            parser.error(
                "--kb worker mode serves a single monolithic service; "
                "--shards/--shard-mode only apply to --kb demo"
            )
        return _serve(
            build_worker_service(
                args.kb,
                args.config_json,
                args.service_json,
                data_dir=args.data_dir,
                extract_workers=args.extract_workers,
            ),
            args,
        )

    shards = getattr(args, "shards", 1)
    shard_mode = getattr(args, "shard_mode", "local")
    print(
        f"building demo knowledge graph ({args.articles} articles"
        + (
            f", {shards} {shard_mode} shards" if shards > 1 else ""
        )
        + ")...",
        file=sys.stderr,
    )
    service = build_demo_service(
        n_articles=args.articles,
        seed=args.seed,
        auto_start=args.command == "serve",
        shards=shards,
        shard_mode=shard_mode,
        data_dir=getattr(args, "data_dir", None),
        extract_workers=getattr(args, "extract_workers", None) or 1,
    )

    if args.command == "demo":
        stats = service.statistics()
        if args.json:
            print(json.dumps(stats.to_dict(), sort_keys=True))
        else:
            print(stats.rendered)
        if args.query:
            if not args.json:
                print()
            return _run_queries(service, args.query, as_json=args.json)
        return 0 if stats.ok else 1
    if args.command == "query":
        return _run_queries(service, args.text, as_json=args.json)
    if args.command == "serve":
        return _serve(service, args)
    return _repl(service)


def _remote_ingest(args: argparse.Namespace) -> int:
    texts = [
        sys.stdin.read() if text == "-" else text for text in args.text
    ]
    status = 0
    with ClientSession(args.url, tenant=args.tenant) as session:
        for i, text in enumerate(texts):
            doc_id = args.doc_id
            if doc_id and len(texts) > 1:
                doc_id = f"{doc_id}-{i + 1}"
            request = IngestRequest(
                text=text, doc_id=doc_id, date=args.date, source=args.source
            )
            response = session.ingest(request, wait=not args.no_wait)
            if args.json:
                print(json.dumps(response.to_dict(), sort_keys=True))
            elif response.ok:
                print(response.rendered)
            else:
                assert response.error is not None
                print(
                    f"error [{response.error.code}]: "
                    f"{response.error.message}",
                    file=sys.stderr,
                )
            if not response.ok:
                status = 1
    return status


def _load_tenant_registry(
    path: str, default_service: ServiceLike, data_dir: Optional[str]
) -> TenantRegistry:
    """A registry from a ``--tenants`` spec file: a JSON list of tenant
    spec dicts, or ``{"tenants": [...], "scatter_budget": N}``.  The
    demo/worker service answers the ``default`` tenant; each listed
    tenant is built lazily on first request."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    budget = DEFAULT_SCATTER_BUDGET
    if isinstance(data, dict):
        entries = data.get("tenants", [])
        budget = int(data.get("scatter_budget", DEFAULT_SCATTER_BUDGET))
    elif isinstance(data, list):
        entries = data
    else:
        raise ConfigError(
            f"{path}: a tenants file is a JSON list of tenant specs or "
            '{"tenants": [...]}'
        )
    specs = tuple(TenantSpec.from_dict(entry) for entry in entries)
    return TenantRegistry(
        default_service=default_service,
        specs=specs,
        data_dir=data_dir,
        scatter_budget=budget,
    )


def _serve(service: ServiceLike, args: argparse.Namespace) -> int:
    # SIGTERM must unwind like Ctrl-C, not hard-kill: the context
    # managers below own real resources (a process-shard service owns
    # worker subprocesses), and the default SIGTERM action would orphan
    # them.  Supervisors (including ShardProcessManager itself) stop
    # servers with SIGTERM.
    signal.signal(signal.SIGTERM, lambda _signum, _frame: sys.exit(0))
    registry: Optional[TenantRegistry] = None
    tenants_file = getattr(args, "tenants", None)
    if tenants_file:
        registry = _load_tenant_registry(
            tenants_file, service, getattr(args, "data_dir", None)
        )
    gateway = NousGateway(
        registry if registry is not None else service,
        GatewayConfig(
            host=args.host,
            port=args.port,
            log_requests=not args.quiet,
            shared_cache_dir=getattr(args, "shared_cache_dir", None),
        ),
    )
    with contextlib.ExitStack() as stack:
        # Teardown order (reverse of entry): gateway stops serving
        # first, then the registry closes the tenants it built, then
        # the default service — which the registry only borrowed —
        # shuts down.
        stack.enter_context(service)
        if registry is not None:
            stack.enter_context(registry)
        stack.enter_context(gateway)
        if getattr(args, "announce", False):
            # One machine-readable line on stdout: the startup
            # handshake ShardProcessManager waits for (ephemeral ports
            # are only knowable after bind).
            print(
                json.dumps(
                    {
                        "event": "serving",
                        "url": gateway.url,
                        "port": gateway.port,
                        "pid": os.getpid(),
                    }
                ),
                flush=True,
            )
        print(f"serving on {gateway.url} (Ctrl-C to stop)", file=sys.stderr)
        try:
            while True:
                time.sleep(3600.0)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
