"""Subgraph pattern matching over the knowledge graph.

Executes Figure 5's pattern queries: a pattern like
``(?a:Company)-[acquired]->(?b:Company)`` is parsed into typed pattern
edges and matched against the KG property graph by backtracking, with
type checks resolved through the ontology's taxonomy (a ``Company``
variable matches entities of any subtype).

Candidate edges come from the graph's incremental label and
(vertex, label) adjacency indexes, and join ordering uses the O(1)
label-count index for selectivity — no step scans the full edge list.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import QueryParseError
from repro.graph.property_graph import PropertyGraph
from repro.kb.ontology import Ontology

_EDGE_RE = re.compile(
    r"\(\?(?P<src>\w+)(:(?P<src_type>\w+))?\)"
    r"\s*-\[(?P<pred>\w+)\]->\s*"
    r"\(\?(?P<dst>\w+)(:(?P<dst_type>\w+))?\)"
)


@dataclass(frozen=True)
class QueryPatternEdge:
    """One parsed pattern edge with optional variable types."""

    src: str
    dst: str
    predicate: str
    src_type: Optional[str] = None
    dst_type: Optional[str] = None


def parse_pattern(text: str) -> List[QueryPatternEdge]:
    """Parse a pattern expression into edges.

    Raises:
        QueryParseError: when nothing parses or leftovers remain.
    """
    edges = []
    consumed = 0
    for match in _EDGE_RE.finditer(text):
        edges.append(
            QueryPatternEdge(
                src=match.group("src"),
                dst=match.group("dst"),
                predicate=match.group("pred"),
                src_type=match.group("src_type"),
                dst_type=match.group("dst_type"),
            )
        )
        consumed += len(match.group(0))
    if not edges:
        raise QueryParseError(text, "no pattern edges found")
    stripped = _EDGE_RE.sub("", text).replace(",", "").strip()
    if stripped:
        raise QueryParseError(text, f"unparsed pattern remainder: {stripped!r}")
    return edges


class PatternMatcher:
    """Backtracking matcher for parsed patterns.

    Args:
        graph: KG property graph (vertices must carry ``type``).
        ontology: Taxonomy for subtype-aware type checks.
    """

    def __init__(self, graph: PropertyGraph, ontology: Optional[Ontology] = None) -> None:
        self.graph = graph
        self.ontology = ontology

    def match(
        self, pattern: Sequence[QueryPatternEdge], limit: int = 100
    ) -> List[Dict[str, Hashable]]:
        """All variable bindings satisfying the pattern (up to ``limit``)."""
        results: List[Dict[str, Hashable]] = []
        self._extend(list(pattern), {}, results, limit)
        return results

    # ------------------------------------------------------------------
    def _extend(
        self,
        remaining: List[QueryPatternEdge],
        bindings: Dict[str, Hashable],
        results: List[Dict[str, Hashable]],
        limit: int,
    ) -> None:
        if len(results) >= limit:
            return
        if not remaining:
            results.append(dict(bindings))
            return
        # Choose the most-bound edge next, breaking ties towards the most
        # selective predicate (O(1) via the label-count index).
        remaining = sorted(
            remaining,
            key=lambda e: (
                (e.src not in bindings) + (e.dst not in bindings),
                self.graph.label_count(e.predicate),
            ),
        )
        edge_pattern, rest = remaining[0], remaining[1:]
        for src, dst in self._candidate_pairs(edge_pattern, bindings):
            new_bindings = dict(bindings)
            if not self._bind(new_bindings, edge_pattern.src, src):
                continue
            if not self._bind(new_bindings, edge_pattern.dst, dst):
                continue
            self._extend(rest, new_bindings, results, limit)
            if len(results) >= limit:
                return

    def _candidate_pairs(
        self, edge: QueryPatternEdge, bindings: Dict[str, Hashable]
    ) -> List[Tuple[Hashable, Hashable]]:
        src_bound = bindings.get(edge.src)
        dst_bound = bindings.get(edge.dst)
        pairs: List[Tuple[Hashable, Hashable]] = []
        # All three cases are answered from incremental indexes: the
        # (vertex, label) adjacency indexes when an endpoint is bound,
        # the global label index otherwise — never an edge-list scan.
        if src_bound is not None:
            graph_edges = self.graph.out_edges(src_bound, label=edge.predicate)
        elif dst_bound is not None:
            graph_edges = self.graph.in_edges(dst_bound, label=edge.predicate)
        else:
            graph_edges = self.graph.edges_with_label(edge.predicate)
        for graph_edge in graph_edges:
            if dst_bound is not None and graph_edge.dst != dst_bound:
                continue
            if src_bound is not None and graph_edge.src != src_bound:
                continue
            if not self._type_ok(graph_edge.src, edge.src_type):
                continue
            if not self._type_ok(graph_edge.dst, edge.dst_type):
                continue
            pairs.append((graph_edge.src, graph_edge.dst))
        return pairs

    def _type_ok(self, vertex: Hashable, required: Optional[str]) -> bool:
        if required is None:
            return True
        vertex_type = self.graph.vertex_props(vertex).get("type")
        if vertex_type is None:
            return False
        if vertex_type == required:
            return True
        if self.ontology is not None and self.ontology.has_type(vertex_type):
            if not self.ontology.has_type(required):
                return False
            return self.ontology.is_a(vertex_type, required)
        return False

    def _bind(
        self, bindings: Dict[str, Hashable], variable: str, value: Hashable
    ) -> bool:
        existing = bindings.get(variable)
        if existing is None:
            # Injectivity: two variables must not share a vertex.
            if value in bindings.values():
                return False
            bindings[variable] = value
            return True
        return existing == value
