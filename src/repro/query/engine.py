"""Query execution: parsed query -> graph algorithm -> rendered result.

The engine carries a **query-result cache** keyed on
``(query, KG version)``: results are reused verbatim while the
:class:`~repro.core.dynamic_kg.DynamicKnowledgeGraph` version stamp is
unchanged, and invalidated the moment any fact is persisted or any
window edge is added/evicted (both bump the monotonic stamp).  Trending
queries are never cached because their payload contains *stateful
transition deltas* (newly-frequent / newly-infrequent since the last
report) — replaying an old delta would differ from re-running the
report.  Entity, entity-trend, relationship, explanatory and pattern
queries are pure functions of KG state and cache safely.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.pipeline import EntitySummary, Nous
from repro.core.statistics import GraphStatistics
from repro.errors import QueryError
from repro.mining.patterns import Pattern
from repro.mining.streaming import WindowReport
from repro.mining.support import closed_patterns
from repro.graph.algorithms import connected_components, pagerank
from repro.qa.pathsearch import RankedPath
from repro.query.model import (
    CentralityQuery,
    ComponentsQuery,
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PageRankQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)
from repro.query.parser import parse_query
from repro.query.pattern_match import PatternMatcher, parse_pattern


def _guard_payload(payload: Any) -> Any:
    """Copy a payload's top-level mutable containers.

    Cache entries and the results handed to callers must not alias each
    other's containers, or a caller's ``payload.clear()`` / ``.sort()``
    would silently poison the cache.  Lists are shallow-copied; dataclass
    payloads (e.g. ``EntitySummary``) get their list fields shallow-
    copied via ``replace``.  Element objects remain shared and are
    treated as read-only.
    """
    if isinstance(payload, list):
        return list(payload)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        updates = {
            f.name: list(value)
            for f in dataclasses.fields(payload)
            if isinstance(value := getattr(payload, f.name), list)
        }
        if updates:
            return dataclasses.replace(payload, **updates)
    return payload


@dataclass
class QueryResult:
    """Uniform result wrapper for all five query classes.

    Attributes:
        query: The parsed query object.
        kind: Query class name ("trending", "entity", ...).
        payload: Class-specific result object.
        rendered: Plain-text rendering for CLI display.
        elapsed_ms: Execution time (cache lookup time on a cache hit).
        result_count: Number of result items (facts, rows, paths,
            matches, or closed frequent patterns depending on ``kind``);
            populated for every query class.
        cached: True when this result was served from the result cache.
        kg_version: KG version stamp the result was computed against.
    """

    query: Query
    kind: str
    payload: Any
    rendered: str
    elapsed_ms: float = 0.0
    result_count: int = 0
    cached: bool = False
    kg_version: int = -1


class QueryEngine:
    """Execute NL-like queries against a :class:`~repro.core.pipeline.Nous`.

    Args:
        nous: The system to query.
        cache_size: Maximum cached results (LRU eviction); 0 disables
            the cache.
        enable_cache: Master switch for result caching.
    """

    def __init__(
        self, nous: Nous, cache_size: int = 256, enable_cache: bool = True
    ) -> None:
        self.nous = nous
        self.cache_size = cache_size
        self.enable_cache = enable_cache and cache_size > 0
        # query -> (kg_version, result); LRU via OrderedDict move_to_end
        self._cache: "OrderedDict[Query, Tuple[int, QueryResult]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def execute_text(self, text: str) -> QueryResult:
        """Parse and execute one query string."""
        return self.execute(parse_query(text))

    def execute(self, query: Query) -> QueryResult:
        """Execute a parsed query, consulting the result cache first."""
        start = time.perf_counter()
        cacheable = self.enable_cache and not isinstance(query, TrendingQuery)
        version = self.nous.dynamic.version
        if cacheable:
            entry = self._cache.get(query)
            if entry is not None and entry[0] == version:
                self._cache.move_to_end(query)
                self.cache_hits += 1
                return replace(
                    entry[1],
                    payload=_guard_payload(entry[1].payload),
                    cached=True,
                    elapsed_ms=(time.perf_counter() - start) * 1000.0,
                )
        result = self._dispatch(query)
        result.elapsed_ms = (time.perf_counter() - start) * 1000.0
        # Dispatch itself can move the KG version (linking may mint an
        # entity for an unknown mention); stamp and cache under the
        # post-dispatch version or the entry could never hit.
        version = self.nous.dynamic.version
        result.kg_version = version
        if cacheable:
            self.cache_misses += 1
            # Same container guard on the stored side: the caller of the
            # miss holds `result`, which must not alias the cache.
            stored = replace(result, payload=_guard_payload(result.payload))
            self._cache[query] = (version, stored)
            self._cache.move_to_end(query)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return result

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def _dispatch(self, query: Query) -> QueryResult:
        if isinstance(query, TrendingQuery):
            return self._trending(query)
        if isinstance(query, EntityTrendQuery):
            return self._entity_trend(query)
        if isinstance(query, EntityQuery):
            return self._entity(query)
        if isinstance(query, ExplanatoryQuery):
            return self._paths(query, query.relationship, kind="explanatory")
        if isinstance(query, RelationshipQuery):
            return self._paths(query, query.relationship, kind="relationship")
        if isinstance(query, PatternQuery):
            return self._pattern(query)
        if isinstance(query, PageRankQuery):
            return self._pagerank(query)
        if isinstance(query, ComponentsQuery):
            return self._components(query)
        if isinstance(query, CentralityQuery):
            return self._centrality(query)
        raise QueryError(  # pragma: no cover - future query classes
            f"unsupported query type: {type(query).__name__}"
        )

    # ------------------------------------------------------------------
    def _trending(self, query: TrendingQuery) -> QueryResult:
        report = self.nous.trending()
        return QueryResult(
            query=query,
            kind="trending",
            payload=report,
            rendered=render_window_report(report),
            result_count=len(report.closed_frequent),
        )

    def _entity_trend(self, query: EntityTrendQuery) -> QueryResult:
        rows = self.nous.entity_trend(query.entity)
        return QueryResult(
            query=query,
            kind="entity-trend",
            payload=rows,
            rendered=render_trend_rows(query.entity, rows),
            result_count=len(rows),
        )

    def _entity(self, query: EntityQuery) -> QueryResult:
        summary = self.nous.entity_summary(query.entity)
        return QueryResult(
            query=query,
            kind="entity",
            payload=summary,
            rendered=summary.render(),
            result_count=len(summary.facts),
        )

    def _paths(self, query, relationship: Optional[str], kind: str) -> QueryResult:
        paths = self.nous.explain(
            query.source, query.target, relationship=relationship, k=3
        )
        relaxed = False
        if not paths and relationship is not None:
            # The predicate constraint is a preference, not a hard gate:
            # fall back to unconstrained explanation rather than nothing.
            paths = self.nous.explain(query.source, query.target, k=3)
            relaxed = True
        note = (
            f"(no path via '{relationship}'; showing unconstrained paths)"
            if relaxed and paths
            else None
        )
        return QueryResult(
            query=query,
            kind=kind,
            payload=paths,
            rendered=render_ranked_paths(paths, note=note),
            result_count=len(paths),
        )

    def _analytics_graph(self) -> Any:
        """The merged KG as a property graph for whole-graph analytics
        (the same materialisation the distributed coordinator unions
        from shard partitions, so both sides rank identical graphs)."""
        return self.nous.kb.to_property_graph()

    def _pagerank(self, query: PageRankQuery) -> QueryResult:
        graph = self._analytics_graph()
        ranks = pagerank(graph)
        payload = pagerank_payload(
            {str(v): score for v, score in ranks.items()}, top=query.top
        )
        return QueryResult(
            query=query,
            kind="pagerank",
            payload=payload,
            rendered=render_pagerank(payload),
            result_count=len(payload["ranks"]),
        )

    def _components(self, query: ComponentsQuery) -> QueryResult:
        graph = self._analytics_graph()
        labels = connected_components(graph)
        payload = components_payload(
            {str(v): str(label) for v, label in labels.items()}
        )
        return QueryResult(
            query=query,
            kind="components",
            payload=payload,
            rendered=render_components(payload),
            result_count=payload["num_components"],
        )

    def _centrality(self, query: CentralityQuery) -> QueryResult:
        if query.metric != "degree":
            raise QueryError(f"unsupported centrality metric {query.metric!r}")
        graph = self._analytics_graph()
        degrees = {str(v): float(graph.degree(v)) for v in graph.vertices()}
        payload = centrality_payload(degrees, metric=query.metric, top=query.top)
        return QueryResult(
            query=query,
            kind="centrality",
            payload=payload,
            rendered=render_centrality(payload),
            result_count=len(payload["ranks"]),
        )

    def _pattern(self, query: PatternQuery) -> QueryResult:
        pattern = parse_pattern(query.pattern_text)
        # Shared incremental graph view: no per-query KB materialisation.
        graph = self.nous.dynamic.graph_view()
        matcher = PatternMatcher(graph, ontology=self.nous.kb.ontology)
        matches = matcher.match(pattern, limit=50)
        return QueryResult(
            query=query,
            kind="pattern",
            payload=matches,
            rendered=render_pattern_matches(matches),
            result_count=len(matches),
        )


# ---------------------------------------------------------------------------
# shared renderers
# ---------------------------------------------------------------------------
# The monolithic engine and the sharded scatter-gather router must render
# payloads identically — a cluster of one shard answering byte-for-byte
# like a single service is the base case the equivalence suite pins — so
# the plain-text rendering lives here, outside both.


def render_window_report(report: WindowReport) -> str:
    """Plain-text rendering of a trending report."""
    lines = [f"window edges: {report.window_edges}", "closed frequent patterns:"]
    for pattern, support in report.closed_frequent[:15]:
        lines.append(f"  support={support:3d}  {pattern.describe()}")
    if report.newly_frequent:
        lines.append("newly frequent:")
        for pattern in report.newly_frequent[:10]:
            lines.append(f"  + {pattern.describe()}")
    if report.newly_infrequent:
        lines.append("no longer frequent (with surviving sub-patterns):")
        for pattern, survivors in report.newly_infrequent[:10]:
            lines.append(f"  - {pattern.describe()}  -> {len(survivors)} survivors")
    return "\n".join(lines)


def render_trend_rows(entity: str, rows: Sequence[Tuple]) -> str:
    """Plain-text rendering of "what's new about X" rows."""
    if not rows:
        return f"nothing new about {entity} in the current window"
    lines = [f"recent facts about {entity}:"]
    for _ts, s, p, o, conf in rows:
        lines.append(f"  ({s}, {p}, {o})  conf={conf:.2f}")
    return "\n".join(lines)


def render_ranked_paths(
    paths: Sequence[RankedPath], note: Optional[str] = None
) -> str:
    """Plain-text rendering of coherence-ranked path answers."""
    if not paths:
        return "no connecting path found"
    lines = [
        f"{i + 1}. coherence={p.coherence:.3f}  {p.describe()}"
        for i, p in enumerate(paths)
    ]
    if note:
        lines.insert(0, note)
    return "\n".join(lines)


def render_pattern_matches(matches: Sequence[Dict[str, Any]]) -> str:
    """Plain-text rendering of pattern-match binding rows."""
    lines = [f"{len(matches)} match(es):"]
    for bindings in matches[:20]:
        rendered = ", ".join(f"?{k}={v}" for k, v in sorted(bindings.items()))
        lines.append(f"  {rendered}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# analytics payloads
# ---------------------------------------------------------------------------
# Both the monolith engine and the distributed compute coordinator build
# analytics answers from a plain ``entity -> value`` map; the payload
# builders canonicalise them (scores rounded so float summation order
# cannot leak into equality, deterministic ordering) so the two sides
# produce *equal* payloads over the same merged graph.

#: Rounding applied to analytics scores before they enter a payload;
#: 9 decimals is far above pagerank's 1e-6 convergence tolerance and far
#: below the ~1e-15 noise of summing shard contributions in a different
#: order than the monolith's edge loop.
ANALYTICS_SCORE_DECIMALS = 9


def pagerank_payload(
    ranks: Mapping[str, float], top: int = 10
) -> Dict[str, Any]:
    """Canonical pagerank payload: top-N ``[entity, score]`` rows."""
    rows = sorted(
        ((e, round(s, ANALYTICS_SCORE_DECIMALS)) for e, s in ranks.items()),
        key=lambda row: (-row[1], row[0]),
    )
    return {
        "ranks": [[e, s] for e, s in rows[: max(top, 0)]],
        "num_vertices": len(ranks),
    }


def components_payload(labels: Mapping[str, str]) -> Dict[str, Any]:
    """Canonical component census: member lists sorted inside, largest
    (then lexicographically first) component first."""
    groups: Dict[str, List[str]] = {}
    for vertex, label in labels.items():
        groups.setdefault(label, []).append(vertex)
    components = sorted(
        (sorted(members) for members in groups.values()),
        key=lambda members: (-len(members), members[0]),
    )
    return {"components": components, "num_components": len(components)}


def centrality_payload(
    scores: Mapping[str, float], metric: str = "degree", top: int = 10
) -> Dict[str, Any]:
    """Canonical centrality payload: top-N ``[entity, score]`` rows."""
    rows = sorted(
        ((e, round(s, ANALYTICS_SCORE_DECIMALS)) for e, s in scores.items()),
        key=lambda row: (-row[1], row[0]),
    )
    return {"metric": metric, "ranks": [[e, s] for e, s in rows[: max(top, 0)]]}


def render_pagerank(payload: Mapping[str, Any]) -> str:
    """Plain-text rendering of a pagerank ranking."""
    if not payload["ranks"]:
        return "graph is empty; no pagerank to compute"
    lines = [f"pagerank over {payload['num_vertices']} vertices:"]
    for i, (entity, score) in enumerate(payload["ranks"]):
        lines.append(f"{i + 1:3d}. {score:.6f}  {entity}")
    return "\n".join(lines)


def render_components(payload: Mapping[str, Any]) -> str:
    """Plain-text rendering of a component census."""
    components = payload["components"]
    if not components:
        return "graph is empty; no components"
    lines = [f"{payload['num_components']} connected component(s):"]
    for i, members in enumerate(components[:10]):
        preview = ", ".join(members[:6])
        more = f", ... (+{len(members) - 6})" if len(members) > 6 else ""
        lines.append(f"{i + 1:3d}. size={len(members):4d}  {preview}{more}")
    return "\n".join(lines)


def render_centrality(payload: Mapping[str, Any]) -> str:
    """Plain-text rendering of a centrality ranking."""
    if not payload["ranks"]:
        return "graph is empty; no centrality to compute"
    lines = [f"{payload['metric']} centrality:"]
    for i, (entity, score) in enumerate(payload["ranks"]):
        lines.append(f"{i + 1:3d}. {score:g}  {entity}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# scatter-gather merges
# ---------------------------------------------------------------------------
# Per-query-class result assembly for a sharded deployment: each shard
# answers over its own slice of the KG (curated base replicated, extracted
# facts partitioned) and the router combines the partial answers.  These
# are pure functions of the partial results so they can be property-tested
# without a cluster.  The merge semantics per class:
#
# - entity / entity-trend / pattern: union + dedupe (a fact/row either is
#   in the merged answer or is not; identical rows from several shards
#   collapse, confidence ties keep the highest-confidence copy);
# - relationship / explanatory: top-k re-rank — paths found by any shard,
#   deduplicated by node sequence, re-ranked by coherence;
# - trending: per-shard window merge — the *full* support tables are
#   summed per pattern, then frequency and closedness are recomputed on
#   the merged counts (a pattern below threshold on every shard can be
#   frequent in the union);
# - statistics: summation, with the replicated curated base counted once.


def merge_entity_summaries(summaries: Sequence[EntitySummary]) -> EntitySummary:
    """Union + dedupe entity summaries from several shards.

    Facts are keyed by ``(subject, predicate, object, curated)``; the
    highest-confidence copy wins (shards that saw the fact extracted
    more recently re-score it).  The final ordering matches the
    monolith's: stable sort by ``(-confidence, predicate)``.
    """
    if not summaries:
        raise QueryError("cannot merge zero entity summaries")
    first = summaries[0]
    best: "OrderedDict[Tuple[str, str, str, bool], Tuple[str, str, str, float, bool]]"
    best = OrderedDict()
    dates: List[str] = []
    neighbors: Set[str] = set()
    description = ""
    entity_type = ""
    for summary in summaries:
        for fact in summary.facts:
            s, p, o, conf, curated = fact
            key = (s, p, o, curated)
            kept = best.get(key)
            if kept is None or conf > kept[3]:
                best[key] = fact
        dates.extend(summary.recent_dates)
        neighbors.update(summary.neighbors)
        if not description and summary.description:
            description = summary.description
        if entity_type in ("", "Thing") and summary.entity_type:
            entity_type = summary.entity_type
    facts = sorted(best.values(), key=lambda f: (-f[3], f[1]))
    return EntitySummary(
        entity=first.entity,
        entity_type=entity_type or "Thing",
        description=description,
        facts=facts,
        recent_dates=sorted(set(dates), reverse=True),
        neighbors=sorted(neighbors),
    )


def merge_ranked_paths(
    path_lists: Sequence[Sequence[RankedPath]], k: int = 3
) -> List[RankedPath]:
    """Top-k re-rank of per-shard path answers.

    Paths are deduplicated by node sequence (the best — lowest-
    divergence — copy wins; coherence may differ slightly where shards
    fitted topics over different minted-entity sets) and the survivors
    re-ranked by the search's own key: ascending ``(coherence,
    length)`` — coherence is a divergence, lower is better.  The sort
    is stable, so a single-shard cluster preserves its shard's ordering
    exactly.
    """
    # Identity is the full route — nodes AND edge labels/directions
    # (``describe()`` renders exactly that): distinct predicates over
    # the same node sequence are distinct answers, as in the monolith.
    seen: "OrderedDict[str, RankedPath]" = OrderedDict()
    for paths in path_lists:
        for path in paths:
            key = path.describe()
            kept = seen.get(key)
            if kept is None or path.coherence < kept.coherence:
                seen[key] = path
    ranked = sorted(seen.values(), key=lambda p: (p.coherence, p.length))
    return ranked[:k]


def merge_trend_rows(
    row_lists: Sequence[Sequence[Tuple]], limit: int = 20
) -> List[Tuple]:
    """Union + dedupe entity-trend rows, newest first."""
    merged: "OrderedDict[Tuple, Tuple]" = OrderedDict()
    for rows in row_lists:
        for row in rows:
            merged.setdefault(tuple(row), row)
    ordered = sorted(merged.values(), key=lambda r: -r[0])
    return ordered[:limit]


def merge_pattern_matches(
    match_lists: Sequence[Sequence[Dict[str, Any]]], limit: int = 50
) -> List[Dict[str, Any]]:
    """Union + dedupe pattern-match binding rows.

    Shard order is preserved (first occurrence wins), which keeps a
    single-shard cluster identical to its shard and makes multi-shard
    output deterministic given deterministic shards.
    """
    merged: "OrderedDict[Tuple[Tuple[str, str], ...], Dict[str, Any]]" = OrderedDict()
    for matches in match_lists:
        for bindings in matches:
            key = tuple(sorted((str(k), str(v)) for k, v in bindings.items()))
            merged.setdefault(key, bindings)
    return list(merged.values())[:limit]


def merge_window_reports(
    supports_per_shard: Sequence[Mapping[Pattern, int]],
    min_support: int,
    previous_frequent: Set[Pattern],
    window_edges: int,
    timestamp: float,
) -> Tuple[WindowReport, Set[Pattern]]:
    """Assemble a merged trending report from per-shard support tables.

    Supports are summed per pattern across shards, then frequency and
    closedness are recomputed on the merged table — which is why the
    shards expose their *full* support tables, not just the closed
    frequent slice.

    Summed MNI support is exact when every embedding (and node binding)
    of a pattern lives on one shard, and a lower bound otherwise
    (embeddings spanning shards are invisible to it) — which is why the
    sharded cluster's trending path feeds
    :func:`assemble_window_report` with the exact union supports from
    :class:`repro.compute.mining.DistributedMiner` instead of calling
    this merge; see docs/SHARDING.md.

    Returns:
        ``(report, frequent_now)`` — callers store ``frequent_now`` as
        the next call's ``previous_frequent``.
    """
    merged: Dict[Pattern, int] = {}
    for supports in supports_per_shard:
        for pattern, support in supports.items():
            merged[pattern] = merged.get(pattern, 0) + support
    return assemble_window_report(
        merged,
        min_support=min_support,
        previous_frequent=previous_frequent,
        window_edges=window_edges,
        timestamp=timestamp,
    )


def assemble_window_report(
    merged: Mapping[Pattern, int],
    min_support: int,
    previous_frequent: Set[Pattern],
    window_edges: int,
    timestamp: float,
) -> Tuple[WindowReport, Set[Pattern]]:
    """Build a trending report from an already-merged support table.

    Frequency and closedness are recomputed on the merged table;
    transition events (newly frequent / newly infrequent with surviving
    sub-patterns) are computed against ``previous_frequent``, the
    caller's own last-report state — shard miners' transition state is
    never consumed.

    Returns:
        ``(report, frequent_now)`` — callers store ``frequent_now`` as
        the next call's ``previous_frequent``.
    """
    from repro.mining.patterns import sub_patterns

    frequent_now = {p for p, s in merged.items() if s >= min_support}
    newly_frequent = sorted(
        frequent_now - previous_frequent, key=lambda p: p.edges
    )
    newly_infrequent: List[Tuple[Pattern, List[Pattern]]] = []
    for lost in sorted(previous_frequent - frequent_now, key=lambda p: p.edges):
        survivors = [sub for sub in sub_patterns(lost) if sub in frequent_now]
        newly_infrequent.append((lost, survivors))
    report = WindowReport(
        timestamp=timestamp,
        closed_frequent=closed_patterns(merged, min_support),
        newly_frequent=newly_frequent,
        newly_infrequent=newly_infrequent,
        window_edges=window_edges,
    )
    return report, frequent_now


def merge_statistics(
    shard_stats: Sequence[GraphStatistics],
    curated: GraphStatistics,
    top_central: int = 8,
) -> GraphStatistics:
    """Summation merge of per-shard quality statistics.

    Every shard's KB contains the replicated curated base plus its own
    extracted slice, so sums over shards count the curated part once per
    shard; subtracting ``curated`` (the statistics of the pristine
    reference KB) ``N - 1`` times restores single-counting.  Entity
    counts merge the same way — entities minted by several shards for
    the same mention are double-counted, a documented approximation.
    PageRank centralities cannot be summed; the merge keeps the maximum
    rank a shard assigned to each entity and re-ranks.
    """
    n = len(shard_stats)
    if n == 0:
        raise QueryError("cannot merge zero statistics payloads")

    def _over(value_of: Any) -> int:
        return sum(int(value_of(s)) for s in shard_stats) - (n - 1) * int(
            value_of(curated)
        )

    merged = GraphStatistics(
        num_entities=_over(lambda s: s.num_entities),
        num_facts=_over(lambda s: s.num_facts),
        curated_facts=curated.curated_facts,
        extracted_facts=sum(s.extracted_facts for s in shard_stats),
    )
    merged.confidence_histogram = [
        sum(s.confidence_histogram[i] for s in shard_stats)
        - (n - 1) * curated.confidence_histogram[i]
        for i in range(len(curated.confidence_histogram))
    ]
    for table in ("facts_per_source", "facts_per_predicate", "entities_per_type"):
        counts: Dict[str, int] = {}
        for stats in shard_stats:
            for key, count in getattr(stats, table).items():
                counts[key] = counts.get(key, 0) + count
        for key, count in getattr(curated, table).items():
            counts[key] = counts.get(key, 0) - (n - 1) * count
        setattr(merged, table, {k: c for k, c in counts.items() if c > 0})
    total_extracted = merged.extracted_facts
    if total_extracted:
        merged.mean_extracted_confidence = (
            sum(
                s.mean_extracted_confidence * s.extracted_facts
                for s in shard_stats
            )
            / total_extracted
        )
    central: Dict[str, float] = {}
    for stats in shard_stats:
        for entity, rank in stats.central_entities:
            central[entity] = max(central.get(entity, 0.0), rank)
    merged.central_entities = sorted(
        central.items(), key=lambda kv: (-kv[1], kv[0])
    )[:top_central]
    return merged
