"""Query execution: parsed query -> graph algorithm -> rendered result."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.pipeline import Nous
from repro.errors import QueryError
from repro.query.model import (
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)
from repro.query.parser import parse_query
from repro.query.pattern_match import PatternMatcher, parse_pattern


@dataclass
class QueryResult:
    """Uniform result wrapper for all five query classes.

    Attributes:
        query: The parsed query object.
        kind: Query class name ("trending", "entity", ...).
        payload: Class-specific result object.
        rendered: Plain-text rendering for CLI display.
        elapsed_ms: Execution time.
    """

    query: Query
    kind: str
    payload: Any
    rendered: str
    elapsed_ms: float = 0.0
    result_count: int = 0


class QueryEngine:
    """Execute NL-like queries against a :class:`~repro.core.pipeline.Nous`."""

    def __init__(self, nous: Nous) -> None:
        self.nous = nous

    def execute_text(self, text: str) -> QueryResult:
        """Parse and execute one query string."""
        return self.execute(parse_query(text))

    def execute(self, query: Query) -> QueryResult:
        """Execute a parsed query."""
        start = time.perf_counter()
        if isinstance(query, TrendingQuery):
            result = self._trending(query)
        elif isinstance(query, EntityTrendQuery):
            result = self._entity_trend(query)
        elif isinstance(query, EntityQuery):
            result = self._entity(query)
        elif isinstance(query, ExplanatoryQuery):
            result = self._paths(query, query.relationship, kind="explanatory")
        elif isinstance(query, RelationshipQuery):
            result = self._paths(query, query.relationship, kind="relationship")
        elif isinstance(query, PatternQuery):
            result = self._pattern(query)
        else:  # pragma: no cover - future query classes
            raise QueryError(f"unsupported query type: {type(query).__name__}")
        result.elapsed_ms = (time.perf_counter() - start) * 1000.0
        return result

    # ------------------------------------------------------------------
    def _trending(self, query: TrendingQuery) -> QueryResult:
        report = self.nous.trending()
        lines = [f"window edges: {report.window_edges}", "closed frequent patterns:"]
        for pattern, support in report.closed_frequent[:15]:
            lines.append(f"  support={support:3d}  {pattern.describe()}")
        if report.newly_frequent:
            lines.append("newly frequent:")
            for pattern in report.newly_frequent[:10]:
                lines.append(f"  + {pattern.describe()}")
        if report.newly_infrequent:
            lines.append("no longer frequent (with surviving sub-patterns):")
            for pattern, survivors in report.newly_infrequent[:10]:
                lines.append(f"  - {pattern.describe()}  -> {len(survivors)} survivors")
        return QueryResult(
            query=query,
            kind="trending",
            payload=report,
            rendered="\n".join(lines),
            result_count=len(report.closed_frequent),
        )

    def _entity_trend(self, query: EntityTrendQuery) -> QueryResult:
        rows = self.nous.entity_trend(query.entity)
        if rows:
            lines = [f"recent facts about {query.entity}:"]
            for _ts, s, p, o, conf in rows:
                lines.append(f"  ({s}, {p}, {o})  conf={conf:.2f}")
        else:
            lines = [f"nothing new about {query.entity} in the current window"]
        return QueryResult(
            query=query,
            kind="entity-trend",
            payload=rows,
            rendered="\n".join(lines),
            result_count=len(rows),
        )

    def _entity(self, query: EntityQuery) -> QueryResult:
        summary = self.nous.entity_summary(query.entity)
        return QueryResult(
            query=query,
            kind="entity",
            payload=summary,
            rendered=summary.render(),
            result_count=len(summary.facts),
        )

    def _paths(self, query, relationship: Optional[str], kind: str) -> QueryResult:
        paths = self.nous.explain(
            query.source, query.target, relationship=relationship, k=3
        )
        relaxed = False
        if not paths and relationship is not None:
            # The predicate constraint is a preference, not a hard gate:
            # fall back to unconstrained explanation rather than nothing.
            paths = self.nous.explain(query.source, query.target, k=3)
            relaxed = True
        if paths:
            lines = [
                f"{i + 1}. coherence={p.coherence:.3f}  {p.describe()}"
                for i, p in enumerate(paths)
            ]
            if relaxed:
                lines.insert(
                    0, f"(no path via '{relationship}'; showing unconstrained paths)"
                )
        else:
            lines = ["no connecting path found"]
        return QueryResult(
            query=query,
            kind=kind,
            payload=paths,
            rendered="\n".join(lines),
            result_count=len(paths),
        )

    def _pattern(self, query: PatternQuery) -> QueryResult:
        pattern = parse_pattern(query.pattern_text)
        graph = self.nous.dynamic.graph_view()
        matcher = PatternMatcher(graph, ontology=self.nous.kb.ontology)
        matches = matcher.match(pattern, limit=50)
        lines = [f"{len(matches)} match(es):"]
        for bindings in matches[:20]:
            rendered = ", ".join(f"?{k}={v}" for k, v in sorted(bindings.items()))
            lines.append(f"  {rendered}")
        return QueryResult(
            query=query,
            kind="pattern",
            payload=matches,
            rendered="\n".join(lines),
            result_count=len(matches),
        )
