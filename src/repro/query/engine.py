"""Query execution: parsed query -> graph algorithm -> rendered result.

The engine carries a **query-result cache** keyed on
``(query, KG version)``: results are reused verbatim while the
:class:`~repro.core.dynamic_kg.DynamicKnowledgeGraph` version stamp is
unchanged, and invalidated the moment any fact is persisted or any
window edge is added/evicted (both bump the monotonic stamp).  Trending
queries are never cached because their payload contains *stateful
transition deltas* (newly-frequent / newly-infrequent since the last
report) — replaying an old delta would differ from re-running the
report.  Entity, entity-trend, relationship, explanatory and pattern
queries are pure functions of KG state and cache safely.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pipeline import Nous
from repro.errors import QueryError
from repro.query.model import (
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)
from repro.query.parser import parse_query
from repro.query.pattern_match import PatternMatcher, parse_pattern


def _guard_payload(payload: Any) -> Any:
    """Copy a payload's top-level mutable containers.

    Cache entries and the results handed to callers must not alias each
    other's containers, or a caller's ``payload.clear()`` / ``.sort()``
    would silently poison the cache.  Lists are shallow-copied; dataclass
    payloads (e.g. ``EntitySummary``) get their list fields shallow-
    copied via ``replace``.  Element objects remain shared and are
    treated as read-only.
    """
    if isinstance(payload, list):
        return list(payload)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        updates = {
            f.name: list(value)
            for f in dataclasses.fields(payload)
            if isinstance(value := getattr(payload, f.name), list)
        }
        if updates:
            return dataclasses.replace(payload, **updates)
    return payload


@dataclass
class QueryResult:
    """Uniform result wrapper for all five query classes.

    Attributes:
        query: The parsed query object.
        kind: Query class name ("trending", "entity", ...).
        payload: Class-specific result object.
        rendered: Plain-text rendering for CLI display.
        elapsed_ms: Execution time (cache lookup time on a cache hit).
        result_count: Number of result items (facts, rows, paths,
            matches, or closed frequent patterns depending on ``kind``);
            populated for every query class.
        cached: True when this result was served from the result cache.
        kg_version: KG version stamp the result was computed against.
    """

    query: Query
    kind: str
    payload: Any
    rendered: str
    elapsed_ms: float = 0.0
    result_count: int = 0
    cached: bool = False
    kg_version: int = -1


class QueryEngine:
    """Execute NL-like queries against a :class:`~repro.core.pipeline.Nous`.

    Args:
        nous: The system to query.
        cache_size: Maximum cached results (LRU eviction); 0 disables
            the cache.
        enable_cache: Master switch for result caching.
    """

    def __init__(
        self, nous: Nous, cache_size: int = 256, enable_cache: bool = True
    ) -> None:
        self.nous = nous
        self.cache_size = cache_size
        self.enable_cache = enable_cache and cache_size > 0
        # query -> (kg_version, result); LRU via OrderedDict move_to_end
        self._cache: "OrderedDict[Query, Tuple[int, QueryResult]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def execute_text(self, text: str) -> QueryResult:
        """Parse and execute one query string."""
        return self.execute(parse_query(text))

    def execute(self, query: Query) -> QueryResult:
        """Execute a parsed query, consulting the result cache first."""
        start = time.perf_counter()
        cacheable = self.enable_cache and not isinstance(query, TrendingQuery)
        version = self.nous.dynamic.version
        if cacheable:
            entry = self._cache.get(query)
            if entry is not None and entry[0] == version:
                self._cache.move_to_end(query)
                self.cache_hits += 1
                return replace(
                    entry[1],
                    payload=_guard_payload(entry[1].payload),
                    cached=True,
                    elapsed_ms=(time.perf_counter() - start) * 1000.0,
                )
        result = self._dispatch(query)
        result.elapsed_ms = (time.perf_counter() - start) * 1000.0
        # Dispatch itself can move the KG version (linking may mint an
        # entity for an unknown mention); stamp and cache under the
        # post-dispatch version or the entry could never hit.
        version = self.nous.dynamic.version
        result.kg_version = version
        if cacheable:
            self.cache_misses += 1
            # Same container guard on the stored side: the caller of the
            # miss holds `result`, which must not alias the cache.
            stored = replace(result, payload=_guard_payload(result.payload))
            self._cache[query] = (version, stored)
            self._cache.move_to_end(query)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return result

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def _dispatch(self, query: Query) -> QueryResult:
        if isinstance(query, TrendingQuery):
            return self._trending(query)
        if isinstance(query, EntityTrendQuery):
            return self._entity_trend(query)
        if isinstance(query, EntityQuery):
            return self._entity(query)
        if isinstance(query, ExplanatoryQuery):
            return self._paths(query, query.relationship, kind="explanatory")
        if isinstance(query, RelationshipQuery):
            return self._paths(query, query.relationship, kind="relationship")
        if isinstance(query, PatternQuery):
            return self._pattern(query)
        raise QueryError(  # pragma: no cover - future query classes
            f"unsupported query type: {type(query).__name__}"
        )

    # ------------------------------------------------------------------
    def _trending(self, query: TrendingQuery) -> QueryResult:
        report = self.nous.trending()
        lines = [f"window edges: {report.window_edges}", "closed frequent patterns:"]
        for pattern, support in report.closed_frequent[:15]:
            lines.append(f"  support={support:3d}  {pattern.describe()}")
        if report.newly_frequent:
            lines.append("newly frequent:")
            for pattern in report.newly_frequent[:10]:
                lines.append(f"  + {pattern.describe()}")
        if report.newly_infrequent:
            lines.append("no longer frequent (with surviving sub-patterns):")
            for pattern, survivors in report.newly_infrequent[:10]:
                lines.append(f"  - {pattern.describe()}  -> {len(survivors)} survivors")
        return QueryResult(
            query=query,
            kind="trending",
            payload=report,
            rendered="\n".join(lines),
            result_count=len(report.closed_frequent),
        )

    def _entity_trend(self, query: EntityTrendQuery) -> QueryResult:
        rows = self.nous.entity_trend(query.entity)
        if rows:
            lines = [f"recent facts about {query.entity}:"]
            for _ts, s, p, o, conf in rows:
                lines.append(f"  ({s}, {p}, {o})  conf={conf:.2f}")
        else:
            lines = [f"nothing new about {query.entity} in the current window"]
        return QueryResult(
            query=query,
            kind="entity-trend",
            payload=rows,
            rendered="\n".join(lines),
            result_count=len(rows),
        )

    def _entity(self, query: EntityQuery) -> QueryResult:
        summary = self.nous.entity_summary(query.entity)
        return QueryResult(
            query=query,
            kind="entity",
            payload=summary,
            rendered=summary.render(),
            result_count=len(summary.facts),
        )

    def _paths(self, query, relationship: Optional[str], kind: str) -> QueryResult:
        paths = self.nous.explain(
            query.source, query.target, relationship=relationship, k=3
        )
        relaxed = False
        if not paths and relationship is not None:
            # The predicate constraint is a preference, not a hard gate:
            # fall back to unconstrained explanation rather than nothing.
            paths = self.nous.explain(query.source, query.target, k=3)
            relaxed = True
        if paths:
            lines = [
                f"{i + 1}. coherence={p.coherence:.3f}  {p.describe()}"
                for i, p in enumerate(paths)
            ]
            if relaxed:
                lines.insert(
                    0, f"(no path via '{relationship}'; showing unconstrained paths)"
                )
        else:
            lines = ["no connecting path found"]
        return QueryResult(
            query=query,
            kind=kind,
            payload=paths,
            rendered="\n".join(lines),
            result_count=len(paths),
        )

    def _pattern(self, query: PatternQuery) -> QueryResult:
        pattern = parse_pattern(query.pattern_text)
        # Shared incremental graph view: no per-query KB materialisation.
        graph = self.nous.dynamic.graph_view()
        matcher = PatternMatcher(graph, ontology=self.nous.kb.ontology)
        matches = matcher.match(pattern, limit=50)
        lines = [f"{len(matches)} match(es):"]
        for bindings in matches[:20]:
            rendered = ", ".join(f"?{k}={v}" for k, v in sorted(bindings.items()))
            lines.append(f"  {rendered}")
        return QueryResult(
            query=query,
            kind="pattern",
            payload=matches,
            rendered="\n".join(lines),
            result_count=len(matches),
        )
