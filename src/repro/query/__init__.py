"""Query classes and interfaces (Figure 5 / Figure 6 of the paper).

Five classes of natural-language-like queries are transparently
translated to graph algorithms:

1. **Trending** — "show trending patterns" → streaming miner report.
2. **Entity** — "tell me about DJI" → entity summary.
3. **Relationship** — "how is X related to Y" → top-K path search.
4. **Explanatory** — "why does X use drones" → constrained path search.
5. **Pattern** — "match (?a:Company)-[acquired]->(?b:Company)" →
   subgraph pattern matching.

Plus the whole-graph analytics classes (distributed superstep jobs on a
sharded deployment):

6. **PageRank** — "pagerank top 10" → power-iteration importance.
7. **Components** — "connected components" → weak-component census.
8. **Centrality** — "degree centrality" → degree ranking.
"""

from repro.query.model import (
    CentralityQuery,
    ComponentsQuery,
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PageRankQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)
from repro.query.parser import parse_query
from repro.query.pattern_match import PatternMatcher, parse_pattern
from repro.query.engine import QueryEngine, QueryResult

__all__ = [
    "Query",
    "TrendingQuery",
    "EntityQuery",
    "EntityTrendQuery",
    "RelationshipQuery",
    "ExplanatoryQuery",
    "PatternQuery",
    "PageRankQuery",
    "ComponentsQuery",
    "CentralityQuery",
    "parse_query",
    "parse_pattern",
    "PatternMatcher",
    "QueryEngine",
    "QueryResult",
]
