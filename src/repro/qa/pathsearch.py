"""Coherence-guided top-K path search (paper §3.6).

Beam search from the source entity: at every hop the frontier expands
over incident edges, candidate nodes are scored by topic divergence to
the *target* with a one-hop look-ahead (the best divergence among the
candidate's own neighbours), and completed source→target paths are
ranked by their coherence score — the mean Jensen-Shannon divergence
between consecutive nodes' topic distributions (lower = more coherent
explanation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import QAError, VertexNotFoundError
from repro.graph.property_graph import Edge, PropertyGraph
from repro.qa.topics import js_divergence, vertex_topics


@dataclass
class RankedPath:
    """One answer path.

    Attributes:
        nodes: Vertex sequence from source to target.
        edges: Edge sequence (``len(nodes) - 1``).
        coherence: Mean consecutive-node JS divergence (lower better).
        target_divergence: Mean divergence of interior nodes to target.
    """

    nodes: List[Hashable]
    edges: List[Edge]
    coherence: float
    target_divergence: float

    @property
    def length(self) -> int:
        return len(self.edges)

    def describe(self) -> str:
        """Readable rendering: a -[p]-> b <-[q]- c ..."""
        parts = [str(self.nodes[0])]
        for node, edge in zip(self.nodes[1:], self.edges):
            if edge.src == node:
                parts.append(f"<-[{edge.label}]- {node}")
            else:
                parts.append(f"-[{edge.label}]-> {node}")
        return " ".join(parts)


@dataclass
class SearchStats:
    """Cost accounting for benchmarking the guided search."""

    nodes_expanded: int = 0
    edges_considered: int = 0
    paths_completed: int = 0


class CoherentPathSearch:
    """Top-K coherent path search over a topic-annotated property graph.

    Args:
        graph: Graph whose vertices carry ``topics`` vectors (see
            :func:`repro.qa.topics.assign_topic_vectors`).
        max_hops: Path length cap.
        beam_width: Frontier size kept per hop.
        look_ahead: Use the one-hop look-ahead term when scoring.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        max_hops: int = 4,
        beam_width: int = 8,
        look_ahead: bool = True,
    ) -> None:
        if max_hops < 1:
            raise QAError("max_hops must be >= 1")
        if beam_width < 1:
            raise QAError("beam_width must be >= 1")
        self.graph = graph
        self.max_hops = max_hops
        self.beam_width = beam_width
        self.look_ahead = look_ahead
        self.stats = SearchStats()
        # Per-search memos: the graph is fixed for the duration of one
        # top_k_paths call, and the beam revisits the same vertices many
        # times, so guidance scores and topic vectors are cached per call.
        self._topic_memo: Dict[Hashable, Optional[np.ndarray]] = {}
        self._score_memo: Dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    def top_k_paths(
        self,
        source: Hashable,
        target: Hashable,
        k: int = 3,
        relationship: Optional[str] = None,
    ) -> List[RankedPath]:
        """Find up to ``k`` coherent paths from source to target.

        Args:
            relationship: Optional predicate constraint — answers must
                traverse at least one edge with this label.
        """
        for vertex in (source, target):
            if not self.graph.has_vertex(vertex):
                raise VertexNotFoundError(vertex)
        if source == target:
            raise QAError("source and target must differ")

        self.stats = SearchStats()
        self._topic_memo = {}
        self._score_memo = {}
        target_vec = self._topics(target)
        completed: List[RankedPath] = []
        # beam entries: (nodes, edges, visited set)
        beam: List[Tuple[List[Hashable], List[Edge], Set[Hashable]]] = [
            ([source], [], {source})
        ]
        for _hop in range(self.max_hops):
            candidates: List[Tuple[float, List[Hashable], List[Edge], Set[Hashable]]] = []
            for nodes, edges, visited in beam:
                current = nodes[-1]
                self.stats.nodes_expanded += 1
                for edge in self.graph.incident_edges(current):
                    self.stats.edges_considered += 1
                    nxt = edge.other(current)
                    if nxt in visited:
                        continue
                    new_nodes = nodes + [nxt]
                    new_edges = edges + [edge]
                    if nxt == target:
                        path = self._finish(new_nodes, new_edges, target_vec)
                        if relationship is None or any(
                            e.label == relationship for e in new_edges
                        ):
                            completed.append(path)
                            self.stats.paths_completed += 1
                        continue
                    score = self._guidance_score(nxt, target_vec)
                    candidates.append(
                        (score, new_nodes, new_edges, visited | {nxt})
                    )
            if not candidates:
                break
            candidates.sort(key=lambda item: (item[0], len(item[1])))
            beam = [
                (nodes, edges, visited)
                for _, nodes, edges, visited in candidates[: self.beam_width]
            ]
        completed.sort(key=lambda p: (p.coherence, p.length))
        return completed[:k]

    # ------------------------------------------------------------------
    def _topics(self, node: Hashable) -> Optional[np.ndarray]:
        """Memoised vertex topic vector for the current search."""
        if node not in self._topic_memo:
            self._topic_memo[node] = vertex_topics(self.graph, node)
        return self._topic_memo[node]

    def _guidance_score(
        self, node: Hashable, target_vec: Optional[np.ndarray]
    ) -> float:
        """Divergence-to-target with optional one-hop look-ahead.

        Memoised per search: the beam reaches the same vertex along many
        partial paths, and the graph (hence the score) is fixed while one
        ``top_k_paths`` call runs.  Neighbour enumeration hits the graph's
        refcounted adjacency index rather than materialising edge lists.
        """
        if target_vec is None:
            return 0.0
        cached = self._score_memo.get(node)
        if cached is not None:
            return cached
        own = self._topics(node)
        own_div = js_divergence(own, target_vec) if own is not None else 1.0
        if not self.look_ahead:
            self._score_memo[node] = own_div
            return own_div
        best_neighbor = own_div
        for nbr in self.graph.neighbors(node):
            vec = self._topics(nbr)
            if vec is None:
                continue
            div = js_divergence(vec, target_vec)
            if div < best_neighbor:
                best_neighbor = div
        score = 0.6 * own_div + 0.4 * best_neighbor
        self._score_memo[node] = score
        return score

    def _finish(
        self,
        nodes: Sequence[Hashable],
        edges: Sequence[Edge],
        target_vec: Optional[np.ndarray],
    ) -> RankedPath:
        vectors = [self._topics(n) for n in nodes]
        steps = [
            js_divergence(a, b)
            for a, b in zip(vectors, vectors[1:])
            if a is not None and b is not None
        ]
        coherence = float(np.mean(steps)) if steps else 1.0
        interior = [
            js_divergence(v, target_vec)
            for v in vectors[1:-1]
            if v is not None and target_vec is not None
        ]
        target_div = float(np.mean(interior)) if interior else 0.0
        return RankedPath(
            nodes=list(nodes),
            edges=list(edges),
            coherence=coherence,
            target_divergence=target_div,
        )
