"""Question answering (paper §3.6).

Explanatory ("why"-like) questions are answered by a top-K path search
between a source and target entity.  Every entity carries a topic
distribution obtained by running LDA over its text document; the search
performs a look-ahead at each hop, preferring nodes whose topics diverge
least from the target, and ranks complete paths by a coherence score
(mean topic divergence along the path — lower is more coherent).
"""

from repro.qa.lda import LdaModel, LdaTopics
from repro.qa.topics import assign_topic_vectors, js_divergence
from repro.qa.pathsearch import CoherentPathSearch, RankedPath
from repro.qa.baselines import bfs_path_ranker, unguided_top_k

__all__ = [
    "LdaModel",
    "LdaTopics",
    "assign_topic_vectors",
    "js_divergence",
    "CoherentPathSearch",
    "RankedPath",
    "bfs_path_ranker",
    "unguided_top_k",
]
