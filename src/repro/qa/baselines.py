"""Path-ranking baselines for the §3.6 ablation.

- :func:`bfs_path_ranker` — plain shortest paths, no topic guidance
  (what "state of the art path-ranking" without the coherence metric
  degenerates to on an unweighted KG).
- :func:`unguided_top_k` — exhaustive bounded DFS path enumeration
  ranked by length; shows the search-cost gap the guided beam avoids.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional, Set, Tuple

from repro.errors import QAError, VertexNotFoundError
from repro.graph.property_graph import Edge, PropertyGraph
from repro.qa.pathsearch import RankedPath, SearchStats
from repro.qa.topics import js_divergence, vertex_topics

import numpy as np


def _score_path(
    graph: PropertyGraph, nodes: List[Hashable], edges: List[Edge]
) -> RankedPath:
    vectors = [vertex_topics(graph, n) for n in nodes]
    steps = [
        js_divergence(a, b)
        for a, b in zip(vectors, vectors[1:])
        if a is not None and b is not None
    ]
    coherence = float(np.mean(steps)) if steps else 1.0
    return RankedPath(
        nodes=nodes, edges=edges, coherence=coherence, target_divergence=0.0
    )


def bfs_path_ranker(
    graph: PropertyGraph,
    source: Hashable,
    target: Hashable,
    k: int = 3,
    max_hops: int = 4,
) -> Tuple[List[RankedPath], SearchStats]:
    """Up to ``k`` shortest paths by BFS (no topic guidance).

    Returns the paths (scored with the same coherence metric for
    comparability) and the search-cost stats.
    """
    for vertex in (source, target):
        if not graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
    stats = SearchStats()
    results: List[RankedPath] = []
    queue = deque([([source], [], {source})])
    while queue and len(results) < k:
        nodes, edges, visited = queue.popleft()
        if len(edges) >= max_hops:
            continue
        current = nodes[-1]
        stats.nodes_expanded += 1
        for edge in graph.incident_edges(current):
            stats.edges_considered += 1
            nxt = edge.other(current)
            if nxt in visited:
                continue
            if nxt == target:
                results.append(
                    _score_path(graph, nodes + [nxt], edges + [edge])
                )
                stats.paths_completed += 1
                if len(results) >= k:
                    break
                continue
            queue.append((nodes + [nxt], edges + [edge], visited | {nxt}))
    return results, stats


def unguided_top_k(
    graph: PropertyGraph,
    source: Hashable,
    target: Hashable,
    k: int = 3,
    max_hops: int = 4,
) -> Tuple[List[RankedPath], SearchStats]:
    """All simple paths up to ``max_hops`` by DFS, ranked by coherence.

    Exhaustive (exponential) enumeration — the cost baseline the guided
    beam search is compared against.
    """
    for vertex in (source, target):
        if not graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
    if source == target:
        raise QAError("source and target must differ")
    stats = SearchStats()
    results: List[RankedPath] = []

    def dfs(nodes: List[Hashable], edges: List[Edge], visited: Set[Hashable]) -> None:
        current = nodes[-1]
        if len(edges) >= max_hops:
            return
        stats.nodes_expanded += 1
        for edge in graph.incident_edges(current):
            stats.edges_considered += 1
            nxt = edge.other(current)
            if nxt in visited:
                continue
            if nxt == target:
                results.append(_score_path(graph, nodes + [nxt], edges + [edge]))
                stats.paths_completed += 1
                continue
            dfs(nodes + [nxt], edges + [edge], visited | {nxt})

    dfs([source], [], {source})
    results.sort(key=lambda p: (p.coherence, p.length))
    return results[:k], stats
