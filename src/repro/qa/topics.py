"""Topic vectors on graph vertices and divergence measures."""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.qa.lda import LdaTopics

TOPIC_PROP = "topics"


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence (base-2 logs, in [0, 1])."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)

    def kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


def assign_topic_vectors(
    graph: PropertyGraph,
    topics: LdaTopics,
    default_uniform: bool = True,
) -> int:
    """Attach each vertex's LDA topic distribution as a vertex property.

    Vertices without a fitted document get a uniform distribution when
    ``default_uniform`` (otherwise no property).

    Returns:
        Number of vertices that received a *fitted* (non-uniform) vector.
    """
    theta = topics.theta()
    index_of: Dict[str, int] = {d: i for i, d in enumerate(topics.doc_ids)}
    n_topics = theta.shape[1]
    uniform = np.full(n_topics, 1.0 / n_topics)
    fitted = 0
    for vertex in graph.vertices():
        row = index_of.get(vertex if isinstance(vertex, str) else str(vertex))
        if row is not None:
            graph.set_vertex_prop(vertex, TOPIC_PROP, theta[row])
            fitted += 1
        elif default_uniform:
            graph.set_vertex_prop(vertex, TOPIC_PROP, uniform.copy())
    return fitted


def vertex_topics(graph: PropertyGraph, vertex: Hashable) -> Optional[np.ndarray]:
    """The topic vector stored on a vertex, if any."""
    return graph.vertex_props(vertex).get(TOPIC_PROP)
