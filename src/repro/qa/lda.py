"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

Small, dependency-free (numpy only) LDA suited to the per-entity
description documents: a few hundred documents with a vocabulary of a
few hundred terms.  Deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass
class LdaTopics:
    """Fitted topic state.

    Attributes:
        vocabulary: term -> column index.
        topic_word: (n_topics x vocab) count matrix.
        doc_topic: (n_docs x n_topics) count matrix.
        doc_ids: Row order of ``doc_topic``.
    """

    vocabulary: Dict[str, int]
    topic_word: np.ndarray
    doc_topic: np.ndarray
    doc_ids: List[str]
    alpha: float
    beta: float

    def theta(self) -> np.ndarray:
        """Posterior-mean document-topic distributions (rows sum to 1)."""
        smoothed = self.doc_topic + self.alpha
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def phi(self) -> np.ndarray:
        """Posterior-mean topic-word distributions (rows sum to 1)."""
        smoothed = self.topic_word + self.beta
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def doc_distribution(self, doc_id: str) -> np.ndarray:
        """Topic distribution of one document."""
        index = self.doc_ids.index(doc_id)
        return self.theta()[index]

    def top_words(self, topic: int, n: int = 8) -> List[str]:
        """Most probable words of a topic."""
        phi = self.phi()[topic]
        reverse = {i: w for w, i in self.vocabulary.items()}
        order = np.argsort(-phi)[:n]
        return [reverse[int(i)] for i in order]


class LdaModel:
    """Collapsed-Gibbs LDA trainer.

    Args:
        n_topics: Number of topics K.
        alpha: Document-topic Dirichlet prior.
        beta: Topic-word Dirichlet prior.
        n_iterations: Gibbs sweeps.
        seed: RNG seed (training is deterministic given it).
        min_word_length: Tokens shorter than this are dropped.
    """

    def __init__(
        self,
        n_topics: int = 6,
        alpha: float = 0.5,
        beta: float = 0.05,
        n_iterations: int = 150,
        seed: int = 23,
        min_word_length: int = 3,
    ) -> None:
        if n_topics < 2:
            raise ConfigError("n_topics must be >= 2")
        if n_iterations < 1:
            raise ConfigError("n_iterations must be >= 1")
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta
        self.n_iterations = n_iterations
        self.seed = seed
        self.min_word_length = min_word_length

    # ------------------------------------------------------------------
    def fit(self, documents: Dict[str, str]) -> LdaTopics:
        """Fit on ``doc_id -> text`` and return the topic state.

        Raises:
            ConfigError: when no usable tokens survive preprocessing.
        """
        doc_ids = sorted(documents)
        tokenized = [self._tokenize(documents[d]) for d in doc_ids]
        vocabulary: Dict[str, int] = {}
        for tokens in tokenized:
            for token in tokens:
                vocabulary.setdefault(token, len(vocabulary))
        if not vocabulary:
            raise ConfigError("no tokens to fit LDA on")

        rng = np.random.default_rng(self.seed)
        K, V, D = self.n_topics, len(vocabulary), len(doc_ids)
        topic_word = np.zeros((K, V), dtype=np.int64)
        doc_topic = np.zeros((D, K), dtype=np.int64)
        topic_totals = np.zeros(K, dtype=np.int64)

        # token assignment state
        doc_tokens: List[np.ndarray] = []
        assignments: List[np.ndarray] = []
        for d, tokens in enumerate(tokenized):
            ids = np.array([vocabulary[t] for t in tokens], dtype=np.int64)
            z = rng.integers(0, K, size=len(ids))
            doc_tokens.append(ids)
            assignments.append(z)
            for w, topic in zip(ids, z):
                topic_word[topic, w] += 1
                doc_topic[d, topic] += 1
                topic_totals[topic] += 1

        alpha, beta = self.alpha, self.beta
        v_beta = V * beta
        for _sweep in range(self.n_iterations):
            for d in range(D):
                ids = doc_tokens[d]
                z = assignments[d]
                for n in range(len(ids)):
                    w, old = ids[n], z[n]
                    topic_word[old, w] -= 1
                    doc_topic[d, old] -= 1
                    topic_totals[old] -= 1
                    weights = (
                        (topic_word[:, w] + beta)
                        / (topic_totals + v_beta)
                        * (doc_topic[d] + alpha)
                    )
                    weights = weights / weights.sum()
                    new = int(rng.choice(K, p=weights))
                    z[n] = new
                    topic_word[new, w] += 1
                    doc_topic[d, new] += 1
                    topic_totals[new] += 1

        return LdaTopics(
            vocabulary=vocabulary,
            topic_word=topic_word,
            doc_topic=doc_topic,
            doc_ids=doc_ids,
            alpha=alpha,
            beta=beta,
        )

    # ------------------------------------------------------------------
    def _tokenize(self, text: str) -> List[str]:
        out = []
        for raw in text.lower().split():
            token = raw.strip(".,()\"'!?;:")
            if len(token) >= self.min_word_length and token.isalpha():
                out.append(token)
        return out
