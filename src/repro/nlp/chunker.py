"""Shallow chunking: noun phrases and verb groups from POS tags.

The OpenIE extractor consumes these chunks: noun phrases become candidate
arguments, verb groups anchor ReVerb-style relation phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.nlp.pos import NOUN_TAGS, VERB_TAGS
from repro.nlp.tokenizer import Token


@dataclass
class Chunk:
    """A contiguous span of tokens with a phrase label.

    Attributes:
        label: ``"NP"`` or ``"VG"`` (verb group).
        start: Index of the first token (inclusive).
        end: Index one past the last token.
        tokens: The covered tokens.
        tags: POS tags of the covered tokens.
    """

    label: str
    start: int
    end: int
    tokens: List[Token]
    tags: List[str]

    @property
    def text(self) -> str:
        return " ".join(t.text for t in self.tokens)

    @property
    def head(self) -> Token:
        """Head token: last noun for NPs, main verb for verb groups."""
        if self.label == "NP":
            for token, tag in zip(reversed(self.tokens), reversed(self.tags)):
                if tag in NOUN_TAGS or tag == "CD" or tag == "SYM":
                    return token
            return self.tokens[-1]
        for token, tag in zip(reversed(self.tokens), reversed(self.tags)):
            if tag in VERB_TAGS:
                return token
        return self.tokens[-1]

    def __len__(self) -> int:
        return len(self.tokens)


# Tags allowed inside a noun phrase, besides nouns.
_NP_MODIFIERS = {"DT", "JJ", "JJR", "JJS", "CD", "PRP$", "POS", "SYM"}
_NP_CORE = NOUN_TAGS | {"PRP", "CD", "SYM"}
# Tags allowed inside a verb group.
_VG_TAGS = VERB_TAGS | {"MD", "RB", "TO"}


def chunk_sentence(tokens: Sequence[Token], tags: Sequence[str]) -> List[Chunk]:
    """Extract non-overlapping NP and VG chunks left-to-right.

    NPs follow ``(DT|JJ|CD|PRP$|POS|SYM)* (NN|NNS|NNP|NNPS|PRP|CD|SYM)+``
    (with internal possessives allowed: "DJI 's drones").  Verb groups
    follow ``(MD|RB)* V+ (RP)?`` where trailing ``TO`` is kept only when
    followed by another verb ("plans to launch" forms one group).
    """
    chunks: List[Chunk] = []
    i = 0
    n = len(tokens)
    while i < n:
        tag = tags[i]
        if tag in _NP_CORE or (tag in _NP_MODIFIERS and _starts_np(tags, i)):
            j = _scan_np(tags, i)
            if j > i and any(tags[k] in _NP_CORE for k in range(i, j)):
                chunks.append(_make_chunk("NP", i, j, tokens, tags))
                i = j
                continue
        if tag in _VG_TAGS and tag != "RB" and tag != "TO":
            j = _scan_vg(tags, tokens, i)
            if j > i and any(tags[k] in VERB_TAGS for k in range(i, j)):
                chunks.append(_make_chunk("VG", i, j, tokens, tags))
                i = j
                continue
        i += 1
    return chunks


def _starts_np(tags: Sequence[str], i: int) -> bool:
    """A modifier starts an NP only if a noun core follows before a verb."""
    for k in range(i + 1, min(i + 6, len(tags))):
        if tags[k] in _NP_CORE:
            return True
        if tags[k] not in _NP_MODIFIERS:
            return False
    return False


def _scan_np(tags: Sequence[str], i: int) -> int:
    j = i
    n = len(tags)
    seen_core = False
    while j < n:
        tag = tags[j]
        if tag in _NP_CORE:
            seen_core = True
            j += 1
        elif tag in _NP_MODIFIERS:
            # POS ('s) continues an NP only between nouns: "DJI 's drones".
            if tag == "POS" and not seen_core:
                break
            j += 1
        else:
            break
    # Trim trailing modifiers that aren't part of the noun core.
    while j > i and tags[j - 1] in {"DT", "POS"}:
        j -= 1
    return j


def _scan_vg(tags: Sequence[str], tokens: Sequence[Token], i: int) -> int:
    j = i
    n = len(tags)
    while j < n:
        tag = tags[j]
        if tag in VERB_TAGS or tag == "MD":
            j += 1
        elif tag == "RB" and j + 1 < n and tags[j + 1] in (VERB_TAGS | {"MD", "TO"}):
            j += 1  # adverb inside the group: "officially announced"
        elif tag == "TO" and j + 1 < n and tags[j + 1] in VERB_TAGS:
            j += 1  # "plans to launch"
        else:
            break
    return j


def _make_chunk(
    label: str, start: int, end: int, tokens: Sequence[Token], tags: Sequence[str]
) -> Chunk:
    return Chunk(
        label=label,
        start=start,
        end=end,
        tokens=list(tokens[start:end]),
        tags=list(tags[start:end]),
    )
