"""ReVerb-style Open Information Extraction.

Extracts ``(argument1, relation phrase, argument2)`` tuples anchored on
verb groups, plus n-ary prepositional extensions — the same behaviour
(including the characteristic noise: over-specific relation phrases)
that the paper's §3.3 predicate-mapping stage is designed to clean up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.nlp.chunker import Chunk, chunk_sentence
from repro.nlp.lexicon import verb_lemma
from repro.nlp.ner import EntityMention
from repro.nlp.pos import VERB_TAGS
from repro.nlp.tokenizer import Token

_BE_FORMS = {"is", "are", "was", "were", "be", "been", "being", "am"}
_NEGATIONS = {"not", "never", "n't", "no"}
_SUBORDINATORS = {"because", "although", "though", "while", "if", "that", "which", "whereas"}


@dataclass
class Extraction:
    """One OpenIE tuple.

    Attributes:
        arg1: Subject argument text.
        relation: Relation phrase (normalised, lowercase).
        arg2: Object argument text.
        verb: Lemma of the main verb.
        extra_args: Additional ``(preposition, argument text)`` pairs.
        negated: True when the verb group is negated.
        confidence: Heuristic extraction confidence in (0, 1).
        arg1_span: ``(start, end)`` token span of arg1.
        arg2_span: ``(start, end)`` token span of arg2.
    """

    arg1: str
    relation: str
    arg2: str
    verb: str
    extra_args: List[Tuple[str, str]] = field(default_factory=list)
    negated: bool = False
    confidence: float = 0.5
    arg1_span: Tuple[int, int] = (0, 0)
    arg2_span: Tuple[int, int] = (0, 0)

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.arg1, self.relation, self.arg2)


class OpenIEExtractor:
    """Chunk-pattern OpenIE extractor.

    For each verb group the extractor takes the nearest preceding noun
    phrase as ``arg1``, the nearest following noun phrase as ``arg2``,
    and then walks further prepositional attachments into n-ary extras:
    "DJI raised $75 million from Accel in May 2015" yields
    ``(DJI, raised, $75 million)`` with extras ``[(from, Accel),
    (in, May 2015)]`` — and one flattened binary triple per extra.
    """

    def __init__(self, emit_nary_binaries: bool = True, min_confidence: float = 0.0) -> None:
        self.emit_nary_binaries = emit_nary_binaries
        self.min_confidence = min_confidence

    def extract(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        mentions: Sequence[EntityMention] = (),
        chunks: Optional[Sequence[Chunk]] = None,
    ) -> List[Extraction]:
        """Run extraction over one tagged sentence."""
        if chunks is None:
            chunks = chunk_sentence(tokens, tags)
        nps = [c for c in chunks if c.label == "NP"]
        vgs = [c for c in chunks if c.label == "VG"]
        entity_spans = [(m.start, m.end) for m in mentions]

        extractions: List[Extraction] = []
        for vg in vgs:
            arg1 = self._nearest_np_before(nps, vg.start)
            if arg1 is None:
                continue
            main_verb, negated = self._analyse_verb_group(vg)
            if main_verb is None:
                continue
            arg2, relation_suffix, after = self._find_object(tokens, tags, nps, vg)
            if arg2 is None:
                continue
            relation = self._relation_text(vg, relation_suffix)
            extras = self._collect_extras(tokens, tags, nps, after)
            confidence = self._score(
                tokens, tags, vg, arg1, arg2, relation, entity_spans, negated
            )
            if confidence < self.min_confidence:
                continue
            extraction = Extraction(
                arg1=arg1.text,
                relation=relation,
                arg2=arg2.text,
                verb=verb_lemma(main_verb.text),
                extra_args=extras,
                negated=negated,
                confidence=confidence,
                arg1_span=(arg1.start, arg1.end),
                arg2_span=(arg2.start, arg2.end),
            )
            extractions.append(extraction)
            if self.emit_nary_binaries:
                verb = verb_lemma(main_verb.text)
                for prep, (arg_text, span) in self._extras_with_spans(
                    tokens, tags, nps, after
                ):
                    flat_conf = max(0.05, confidence - 0.1)
                    extractions.append(
                        Extraction(
                            arg1=arg1.text,
                            relation=f"{verb} {prep}",
                            arg2=arg_text,
                            verb=verb,
                            negated=negated,
                            confidence=flat_conf,
                            arg1_span=(arg1.start, arg1.end),
                            arg2_span=span,
                        )
                    )
        return extractions

    # ------------------------------------------------------------------
    def _nearest_np_before(self, nps: Sequence[Chunk], position: int) -> Optional[Chunk]:
        best = None
        for np in nps:
            if np.end <= position:
                best = np
            else:
                break
        return best

    def _analyse_verb_group(self, vg: Chunk) -> Tuple[Optional[Token], bool]:
        negated = any(t.lower in _NEGATIONS for t in vg.tokens)
        main = None
        for token, tag in zip(vg.tokens, vg.tags):
            if tag in VERB_TAGS and token.lower not in _BE_FORMS:
                main = token  # last non-auxiliary verb wins
        if main is None:
            for token, tag in zip(vg.tokens, vg.tags):
                if tag in VERB_TAGS:
                    main = token
        return main, negated

    def _find_object(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        nps: Sequence[Chunk],
        vg: Chunk,
    ) -> Tuple[Optional[Chunk], str, int]:
        """Find arg2 right after the verb group.

        Returns:
            ``(arg2 chunk, relation suffix text, scan position after arg2)``.
            The suffix is a preposition folded into the relation when the
            verb is immediately followed by one ("invest in", "partner with").
        """
        i = vg.end
        n = len(tokens)
        suffix = ""
        # Optional adverb then optional preposition directly after verb.
        while i < n and tags[i] == "RB":
            i += 1
        if i < n and tags[i] in {"IN", "TO"} and tokens[i].lower != "that":
            suffix = tokens[i].lower
            i += 1
        np = self._np_starting_at(nps, i)
        if np is None:
            return None, "", i
        return np, suffix, np.end

    def _np_starting_at(self, nps: Sequence[Chunk], position: int) -> Optional[Chunk]:
        for np in nps:
            if np.start == position:
                return np
            if np.start > position:
                return None
        return None

    def _relation_text(self, vg: Chunk, suffix: str) -> str:
        words = [
            t.lower
            for t, tag in zip(vg.tokens, vg.tags)
            if t.lower not in _NEGATIONS
        ]
        relation = " ".join(words)
        if suffix:
            relation = f"{relation} {suffix}"
        return relation

    def _collect_extras(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        nps: Sequence[Chunk],
        start: int,
    ) -> List[Tuple[str, str]]:
        return [
            (prep, text)
            for prep, (text, _span) in self._extras_with_spans(tokens, tags, nps, start)
        ]

    def _extras_with_spans(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        nps: Sequence[Chunk],
        start: int,
    ):
        """Yield ``(prep, (text, span))`` for trailing PP attachments."""
        i = start
        n = len(tokens)
        while i < n:
            if tags[i] == "PUNCT" and tokens[i].text in {",", ";"}:
                i += 1
                continue
            if tags[i] not in {"IN", "TO"}:
                break
            prep = tokens[i].lower
            np = self._np_starting_at(nps, i + 1)
            if np is None:
                break
            yield (prep, (np.text, (np.start, np.end)))
            i = np.end

    def _score(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        vg: Chunk,
        arg1: Chunk,
        arg2: Chunk,
        relation: str,
        entity_spans: Sequence[Tuple[int, int]],
        negated: bool,
    ) -> float:
        confidence = 0.5
        if self._covered_by_entity(arg1, entity_spans):
            confidence += 0.12
        if self._covered_by_entity(arg2, entity_spans):
            confidence += 0.12
        if len(relation.split()) <= 2:
            confidence += 0.1
        if any(t.lower in _SUBORDINATORS for t in tokens[: vg.start]):
            confidence -= 0.15
        if any(tag in {"PRP", "PRP$"} for tag in arg1.tags):
            confidence -= 0.1
        if negated:
            confidence -= 0.05
        # Distance between arg1 and the verb: long gaps are risky.
        if vg.start - arg1.end > 3:
            confidence -= 0.1
        return max(0.05, min(0.95, confidence))

    def _covered_by_entity(
        self, np: Chunk, entity_spans: Sequence[Tuple[int, int]]
    ) -> bool:
        head_index = np.head.index
        return any(start <= head_index < end for start, end in entity_spans)
