"""Temporal expression extraction and a minimal date type.

Figure 3 of the paper shows triples stamped with publication dates; NOUS
also pulls dates out of sentence text ("in May 2015").  ``SimpleDate``
supports partial dates (year only, year+month) and total ordering, which
the dynamic graph uses as stream time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import List, Optional, Sequence, Tuple

from repro.nlp.tokenizer import Token

_MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "jun": 6, "jul": 7, "aug": 8,
    "sep": 9, "sept": 9, "oct": 10, "nov": 11, "dec": 12,
    "jan.": 1, "feb.": 2, "mar.": 3, "apr.": 4, "jun.": 6, "jul.": 7,
    "aug.": 8, "sep.": 9, "sept.": 9, "oct.": 10, "nov.": 11, "dec.": 12,
}

_ISO_RE = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")
_ISO_YM_RE = re.compile(r"^(\d{4})-(\d{1,2})$")
_SLASH_RE = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{4})$")
_YEAR_RE = re.compile(r"^(19|20)\d{2}$")


@total_ordering
@dataclass(frozen=True)
class SimpleDate:
    """A possibly-partial calendar date.

    Missing components default for ordering purposes to month 1 / day 1,
    so ``SimpleDate(2015)`` sorts before ``SimpleDate(2015, 3)``... only
    via the ordinal; equality still distinguishes them.
    """

    year: int
    month: Optional[int] = None
    day: Optional[int] = None

    def ordinal(self) -> int:
        """Days-since-epoch-ish integer usable as stream time."""
        return (self.year * 372) + ((self.month or 1) - 1) * 31 + ((self.day or 1) - 1)

    def __lt__(self, other: "SimpleDate") -> bool:
        return self.ordinal() < other.ordinal()

    def __str__(self) -> str:
        if self.month is None:
            return f"{self.year}"
        if self.day is None:
            return f"{self.year}-{self.month:02d}"
        return f"{self.year}-{self.month:02d}-{self.day:02d}"


def parse_date(text: str) -> Optional[SimpleDate]:
    """Parse a single date string (ISO, slash, 'May 2015', '2015')."""
    text = text.strip()
    match = _ISO_RE.match(text)
    if match:
        y, m, d = (int(g) for g in match.groups())
        return _checked(y, m, d)
    match = _ISO_YM_RE.match(text)
    if match:
        # Partial year-month form; ``str(SimpleDate)`` emits this, so
        # wire envelopes round-trip partial dates.
        y, m = (int(g) for g in match.groups())
        if 1 <= m <= 12 and 1800 <= y <= 2200:
            return SimpleDate(year=y, month=m)
        return None
    match = _SLASH_RE.match(text)
    if match:
        m, d, y = (int(g) for g in match.groups())
        return _checked(y, m, d)
    if _YEAR_RE.match(text):
        return SimpleDate(year=int(text))
    parts = text.replace(",", " ").split()
    if not parts:
        return None
    month = _MONTHS.get(parts[0].lower())
    if month is not None:
        if len(parts) == 2 and parts[1].isdigit():
            value = int(parts[1])
            if value > 31:
                return SimpleDate(year=value, month=month)
            return None
        if len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
            return _checked(int(parts[2]), month, int(parts[1]))
    return None


def _checked(year: int, month: int, day: int) -> Optional[SimpleDate]:
    if not (1 <= month <= 12 and 1 <= day <= 31 and 1800 <= year <= 2200):
        return None
    return SimpleDate(year=year, month=month, day=day)


def extract_dates(
    tokens: Sequence[Token],
) -> List[Tuple[SimpleDate, int, int]]:
    """Find date mentions in a token sequence.

    Returns:
        List of ``(date, start_index, end_index)`` spans (end exclusive).
        Handles "June 7, 2016", "May 2015", "in 2015", ISO tokens.
    """
    out: List[Tuple[SimpleDate, int, int]] = []
    n = len(tokens)
    i = 0
    while i < n:
        text = tokens[i].text
        lower = text.lower()
        # ISO / slash dates arrive as single tokens.
        single = None
        if _ISO_RE.match(text) or _SLASH_RE.match(text):
            single = parse_date(text)
        if single is not None:
            out.append((single, i, i + 1))
            i += 1
            continue
        if lower in _MONTHS:
            month = _MONTHS[lower]
            # Month DD , YYYY
            if (
                i + 3 < n
                and tokens[i + 1].text.isdigit()
                and tokens[i + 2].text == ","
                and _YEAR_RE.match(tokens[i + 3].text)
            ):
                date = _checked(int(tokens[i + 3].text), month, int(tokens[i + 1].text))
                if date:
                    out.append((date, i, i + 4))
                    i += 4
                    continue
            # Month DD YYYY
            if (
                i + 2 < n
                and tokens[i + 1].text.isdigit()
                and _YEAR_RE.match(tokens[i + 2].text)
            ):
                date = _checked(int(tokens[i + 2].text), month, int(tokens[i + 1].text))
                if date:
                    out.append((date, i, i + 3))
                    i += 3
                    continue
            # Month YYYY
            if i + 1 < n and _YEAR_RE.match(tokens[i + 1].text):
                out.append(
                    (SimpleDate(year=int(tokens[i + 1].text), month=month), i, i + 2)
                )
                i += 2
                continue
        # Bare year preceded by a preposition ("in 2015", "since 2012").
        if (
            _YEAR_RE.match(text)
            and i > 0
            and tokens[i - 1].lower in {"in", "since", "by", "during", "until", "of"}
        ):
            out.append((SimpleDate(year=int(text)), i, i + 1))
        i += 1
    return out
