"""Sentence splitting and word tokenisation.

Regex-based, tuned for news-style English: it keeps abbreviations
(``Inc.``, ``Mr.``, ``U.S.``) intact, treats money amounts (``$50
million``) as token sequences the NER can re-assemble, and records
character offsets so downstream annotations can refer back to the source
text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

# Abbreviations that end with '.' but do not terminate a sentence.
_ABBREVIATIONS = {
    "inc.", "corp.", "ltd.", "llc.", "co.", "mr.", "mrs.", "ms.", "dr.",
    "prof.", "sen.", "rep.", "gov.", "gen.", "st.", "jr.", "sr.", "vs.",
    "etc.", "e.g.", "i.e.", "u.s.", "u.k.", "u.n.", "a.m.", "p.m.",
    "jan.", "feb.", "mar.", "apr.", "jun.", "jul.", "aug.", "sep.",
    "sept.", "oct.", "nov.", "dec.", "no.", "vol.", "fig.", "approx.",
}

_TOKEN_RE = re.compile(
    r"""
      \$[\d][\d,]*(?:\.\d+)?      # currency amounts: $50, $1,200.50
    | \d{4}-\d{1,2}-\d{1,2}       # ISO dates: 2016-06-07
    | \d+/\d+/\d+                 # slash dates: 06/07/2016
    | \d+[A-Za-z][A-Za-z0-9]*     # alphanumerics starting with a digit: 3D, 747s
    | \d+(?:[.,]\d+)*%?           # numbers, possibly with separators / percent
    | [A-Za-z]+(?:\.[A-Za-z]+)+\.?  # dotted acronyms: U.S., U.S.A.
    | n't                         # negation clitic
    | '(?:s|S|re|ve|ll|d|m)\b     # possessive / contraction clitics
    | [A-Za-z][A-Za-z\-]*\.?      # words, hyphenated words, trailing period
    | [\$&%€£]                    # stray symbols
    | --+ | \.\.\.                # dashes / ellipsis
    | [^\sA-Za-z0-9]              # single punctuation
    """,
    re.VERBOSE,
)

_SENT_BOUNDARY_RE = re.compile(r"[.!?]")


@dataclass
class Token:
    """A single token with its source-character span.

    Attributes:
        text: Surface form.
        start: Character offset of the first character in the sentence.
        end: Offset one past the last character.
        index: Position of the token within its sentence.
    """

    text: str
    start: int
    end: int
    index: int = 0

    @property
    def lower(self) -> str:
        return self.text.lower()

    def is_capitalized(self) -> bool:
        """True for tokens that start with an uppercase letter."""
        return bool(self.text) and self.text[0].isupper()

    def is_numeric(self) -> bool:
        """True for plain numbers (commas/periods allowed)."""
        return bool(re.fullmatch(r"\d+(?:[.,]\d+)*%?", self.text))

    def is_currency(self) -> bool:
        """True for ``$``-prefixed amounts."""
        return self.text.startswith("$") and len(self.text) > 1

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.text


@dataclass
class Sentence:
    """A tokenised sentence."""

    text: str
    tokens: List[Token] = field(default_factory=list)
    index: int = 0

    def words(self) -> List[str]:
        """Surface forms of all tokens."""
        return [t.text for t in self.tokens]

    def __len__(self) -> int:
        return len(self.tokens)


def tokenize(text: str) -> List[Token]:
    """Tokenise one sentence, keeping character offsets.

    Trailing sentence periods are split off words, but abbreviation
    periods are kept attached (``Inc.`` stays one token).
    """
    tokens: List[Token] = []
    for match in _TOKEN_RE.finditer(text):
        surface = match.group(0)
        start = match.start()
        if (
            surface.endswith(".")
            and len(surface) > 1
            and surface.lower() not in _ABBREVIATIONS
            and "." not in surface[:-1]  # keep dotted acronyms whole
        ):
            tokens.append(Token(text=surface[:-1], start=start, end=start + len(surface) - 1))
            tokens.append(
                Token(text=".", start=start + len(surface) - 1, end=start + len(surface))
            )
        else:
            tokens.append(Token(text=surface, start=start, end=match.end()))
    for i, token in enumerate(tokens):
        token.index = i
    return tokens


def sentence_split(text: str) -> List[Sentence]:
    """Split raw text into :class:`Sentence` objects.

    A period ends a sentence unless it belongs to a known abbreviation,
    a dotted acronym, or a number; ``!`` and ``?`` always end one.
    """
    sentences: List[Sentence] = []
    start = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in "!?":
            _flush_sentence(text, start, i + 1, sentences)
            start = i + 1
        elif ch == ".":
            if _is_sentence_period(text, i):
                _flush_sentence(text, start, i + 1, sentences)
                start = i + 1
        elif ch == "\n" and i + 1 < n and text[i + 1] == "\n":
            _flush_sentence(text, start, i, sentences)
            start = i + 1
        i += 1
    _flush_sentence(text, start, n, sentences)
    for index, sentence in enumerate(sentences):
        sentence.index = index
    return sentences


def _flush_sentence(text: str, start: int, end: int, out: List[Sentence]) -> None:
    chunk = text[start:end].strip()
    if chunk:
        out.append(Sentence(text=chunk, tokens=tokenize(chunk)))


def _is_sentence_period(text: str, i: int) -> bool:
    """Decide whether the period at index ``i`` terminates a sentence."""
    # Walk back to the start of the word containing this period.
    j = i - 1
    while j >= 0 and not text[j].isspace():
        j -= 1
    word = text[j + 1 : i + 1].lower()
    if word in _ABBREVIATIONS:
        return False
    # Dotted acronym (u.s.) or decimal number (3.14)?
    if re.fullmatch(r"[a-z](?:\.[a-z])+\.", word):
        return False
    if re.fullmatch(r"\d+(?:[.,]\d+)*\.", word):
        # A number followed by period: sentence end only if next char is
        # whitespace + capital.
        rest = text[i + 1 :].lstrip()
        return bool(rest) and rest[0].isupper()
    # Next non-space char lowercase -> probably not a boundary.
    rest = text[i + 1 :].lstrip()
    if rest and rest[0].islower():
        return False
    return True
